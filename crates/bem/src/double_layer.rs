//! The collocation double-layer potential operator.
//!
//! For a density `μ` piecewise linear over the mesh, the double-layer
//! potential at an off-surface point `x` is
//!
//! ```text
//! (Kμ)(x) = ∫_Γ μ(y) ∂/∂n_y (1/|x−y|) dΓ(y)
//!         = ∫_Γ μ(y) n_y·(x−y)/|x−y|³ dΓ(y)
//! ```
//!
//! (since `∇_y 1/|x−y| = (x−y)/|x−y|³`). Classical identities make
//! the operator easy to validate: applied to `μ ≡ 1` on a closed surface
//! with outward normals it gives `−4π` inside, `−2π` on the surface (as a
//! principal value), and `0` outside.
//!
//! Two backends:
//!
//! * [`DenseDoubleLayer`] — exact assembly,
//! * [`TreecodeDoubleLayer`] — each quadrature dipole is realised as a
//!   finite-difference pair of point charges `±w/h` displaced `±h/2·n_y`,
//!   inserted into the treecode; the substitution error is `O(h²)` and
//!   `h` defaults to `10⁻⁴` of the mesh scale, far below quadrature error.

use mbt_geometry::{Particle, Vec3};
use mbt_solvers::{DenseMatrix, LinearOperator};
use mbt_tree::{Octree, OctreeParams};
use mbt_treecode::{Treecode, TreecodeParams};
use rayon::prelude::*;

use crate::single_layer::SingleLayerGeometry;

/// Per-Gauss-point outward normals for a geometry.
fn gauss_normals(geometry: &SingleLayerGeometry) -> Vec<Vec3> {
    let per_elem = geometry.rule.len();
    (0..geometry.num_gauss())
        .map(|g| geometry.mesh.normal(g / per_elem))
        .collect()
}

/// Exact dense double-layer operator (collocation at vertices).
pub struct DenseDoubleLayer {
    geometry: SingleLayerGeometry,
    matrix: DenseMatrix,
}

impl DenseDoubleLayer {
    /// Assembles the dense matrix (`O(n_vertices · n_gauss)`).
    ///
    /// The diagonal (self-element) contributions are kept as plain
    /// quadrature of the singular kernel — the same discretisation choice
    /// the single-layer operator makes, and adequate for the validation
    /// identities which are evaluated off-surface.
    #[must_use]
    pub fn assemble(geometry: SingleLayerGeometry) -> Self {
        let normals = gauss_normals(&geometry);
        let n = geometry.dim();
        let verts = &geometry.mesh.vertices;
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let xi = verts[i];
                let mut row = vec![0.0f64; n];
                for (g, &ng) in normals.iter().enumerate() {
                    let d = xi - geometry.gauss_points[g]; // x − y
                    let r2 = d.norm_sq();
                    // lint: allow(float_cmp, exact-zero guard before dividing)
                    if r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    let k = geometry.gauss_wa[g] * ng.dot(d) / (r2 * r);
                    let [v0, v1, v2] = geometry.gauss_vertices[g];
                    let [b0, b1, b2] = geometry.gauss_bary[g];
                    row[v0 as usize] += k * b0;
                    row[v1 as usize] += k * b1;
                    row[v2 as usize] += k * b2;
                }
                row
            })
            .collect();
        let mut matrix = DenseMatrix::zeros(n, n);
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                matrix[(i, j)] = v;
            }
        }
        DenseDoubleLayer { geometry, matrix }
    }

    /// The discretisation geometry.
    #[must_use]
    pub fn geometry(&self) -> &SingleLayerGeometry {
        &self.geometry
    }

    /// Evaluates the double-layer potential of density `mu` at arbitrary
    /// off-surface points (exact summation over quadrature dipoles).
    #[must_use]
    pub fn potential_at(&self, mu: &[f64], points: &[Vec3]) -> Vec<f64> {
        let normals = gauss_normals(&self.geometry);
        let charges = self.geometry.charges(mu); // wa·μ(y_g)
        points
            .par_iter()
            .map(|&x| {
                let mut phi = 0.0;
                for g in 0..self.geometry.num_gauss() {
                    let d = x - self.geometry.gauss_points[g];
                    let r2 = d.norm_sq();
                    if r2 > 0.0 {
                        phi += charges[g] * normals[g].dot(d) / (r2 * r2.sqrt());
                    }
                }
                phi
            })
            .collect()
    }
}

impl LinearOperator for DenseDoubleLayer {
    fn dim(&self) -> usize {
        self.geometry.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matrix.matvec(x, y);
    }
}

/// Treecode-accelerated double layer via finite-difference dipoles.
pub struct TreecodeDoubleLayer {
    geometry: SingleLayerGeometry,
    base: Treecode,
    /// Dipole half-offsets, one per Gauss point (`±h/2·n`).
    offsets: Vec<Vec3>,
    /// Inverse finite-difference length.
    inv_h: f64,
}

impl TreecodeDoubleLayer {
    /// Builds the operator; `h` is the dipole finite-difference length
    /// (pass `None` for `10⁻⁴ ×` the mesh bounding-box edge).
    #[must_use]
    pub fn new(geometry: SingleLayerGeometry, params: TreecodeParams, h: Option<f64>) -> Self {
        let scale = geometry.mesh.bounds().edge().max(1e-12);
        let h = h.unwrap_or(1e-4 * scale);
        let normals = gauss_normals(&geometry);
        let offsets: Vec<Vec3> = normals.iter().map(|&n| n * (0.5 * h)).collect();
        // two particles per Gauss point: +q at y + h/2 n, −q at y − h/2 n
        let particles: Vec<Particle> = geometry
            .gauss_points
            .iter()
            .zip(&offsets)
            .zip(&geometry.gauss_wa)
            .flat_map(|((&y, &o), &wa)| [Particle::new(y + o, wa), Particle::new(y - o, -wa)])
            .collect();
        let tree = Octree::build(
            &particles,
            OctreeParams {
                leaf_capacity: params.leaf_capacity,
            },
        )
        // lint: allow(panic, dipole offsets of a validated TriMesh are finite and nonempty)
        .expect("gauss dipoles are finite and nonempty");
        let base = Treecode::from_tree(tree, params);
        TreecodeDoubleLayer {
            geometry,
            base,
            offsets,
            inv_h: 1.0 / h,
        }
    }

    /// The discretisation geometry.
    #[must_use]
    pub fn geometry(&self) -> &SingleLayerGeometry {
        &self.geometry
    }

    /// Evaluates the double-layer potential at arbitrary points.
    #[must_use]
    pub fn potential_at(&self, mu: &[f64], points: &[Vec3]) -> Vec<f64> {
        let charges = self.dipole_charges(mu);
        let tc = self.base.with_charges(&charges);
        tc.potentials_at(points).values
    }

    /// Dipole charge vector for a density: `±wa·μ(y_g)/h` per pair.
    fn dipole_charges(&self, mu: &[f64]) -> Vec<f64> {
        let point_charges = self.geometry.charges(mu);
        let mut out = Vec::with_capacity(point_charges.len() * 2);
        for q in point_charges {
            out.push(q * self.inv_h);
            out.push(-q * self.inv_h);
        }
        out
    }
}

impl LinearOperator for TreecodeDoubleLayer {
    fn dim(&self) -> usize {
        self.geometry.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let charges = self.dipole_charges(x);
        let tc = self.base.with_charges(&charges);
        let r = tc.potentials_at(&self.geometry.mesh.vertices);
        y.copy_from_slice(&r.values);
    }
}

/// Suppress the unused-field lint: offsets are retained for diagnostics
/// and future re-meshing support.
impl TreecodeDoubleLayer {
    /// The dipole half-offset applied to each Gauss point.
    #[must_use]
    pub fn dipole_offsets(&self) -> &[Vec3] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::QuadRule;
    use crate::shapes::icosphere;

    const FOUR_PI: f64 = 4.0 * std::f64::consts::PI;

    fn sphere_geometry(subdiv: u32) -> SingleLayerGeometry {
        SingleLayerGeometry::new(icosphere(subdiv, 1.0), QuadRule::SixPoint)
    }

    #[test]
    fn gauss_identity_inside_outside() {
        // ∫ ∂/∂n_y (1/|x−y|) dS = −4π inside, 0 outside
        let g = sphere_geometry(2);
        let dense = DenseDoubleLayer::assemble(g.clone());
        let mu = vec![1.0; g.dim()];
        let vals = dense.potential_at(
            &mu,
            &[
                Vec3::ZERO,
                Vec3::new(0.3, -0.2, 0.1),
                Vec3::new(3.0, 0.0, 0.0),
                Vec3::new(0.0, -5.0, 2.0),
            ],
        );
        assert!((vals[0] - -FOUR_PI).abs() < 0.05, "center: {}", vals[0]);
        assert!((vals[1] - -FOUR_PI).abs() < 0.1, "inside: {}", vals[1]);
        assert!(vals[2].abs() < 0.05, "outside: {}", vals[2]);
        assert!(vals[3].abs() < 0.05, "outside far: {}", vals[3]);
    }

    #[test]
    fn on_surface_principal_value() {
        // collocation rows applied to μ ≡ 1 approximate −2π (the surface
        // principal value); quadrature of the singular kernel is crude, so
        // accept a broad band around it
        let g = sphere_geometry(2);
        let dense = DenseDoubleLayer::assemble(g.clone());
        let v = dense.apply_vec(&vec![1.0; g.dim()]);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (mean - -2.0 * std::f64::consts::PI).abs() < 1.2,
            "surface mean {mean} not near −2π"
        );
    }

    #[test]
    fn treecode_matches_dense_off_surface() {
        let g = sphere_geometry(2);
        let dense = DenseDoubleLayer::assemble(g.clone());
        let tcode = TreecodeDoubleLayer::new(g.clone(), TreecodeParams::fixed(10, 0.3), None);
        let mu: Vec<f64> = (0..g.dim())
            .map(|i| 1.0 + 0.5 * (i as f64 * 0.05).sin())
            .collect();
        let pts = [Vec3::new(0.2, 0.1, -0.3), Vec3::new(2.5, -1.0, 0.5)];
        let a = dense.potential_at(&mu, &pts);
        let b = tcode.potential_at(&mu, &pts);
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x - y).abs() < 2e-3 * (1.0 + x.abs()),
                "dense {x} vs treecode {y}"
            );
        }
        assert_eq!(tcode.dipole_offsets().len(), g.num_gauss());
    }

    #[test]
    fn treecode_matvec_matches_dense() {
        let g = sphere_geometry(1);
        let dense = DenseDoubleLayer::assemble(g.clone());
        let tcode = TreecodeDoubleLayer::new(g.clone(), TreecodeParams::fixed(12, 0.25), None);
        let mu: Vec<f64> = (0..g.dim()).map(|i| (i as f64 * 0.11).cos()).collect();
        let a = dense.apply_vec(&mu);
        let b = tcode.apply_vec(&mu);
        let num: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = a.iter().map(|x| x * x).sum();
        let rel = (num / den).sqrt();
        assert!(rel < 5e-3, "matvec mismatch {rel}");
    }

    #[test]
    fn operator_scales_linearly() {
        let g = sphere_geometry(1);
        let dense = DenseDoubleLayer::assemble(g.clone());
        let mu = vec![1.0; g.dim()];
        let a = dense.apply_vec(&mu);
        let mu3: Vec<f64> = mu.iter().map(|v| 3.0 * v).collect();
        let b = dense.apply_vec(&mu3);
        for (x, y) in a.iter().zip(&b) {
            assert!((3.0 * x - y).abs() < 1e-12 * (1.0 + y.abs()));
        }
    }
}
