//! The engine-served single-layer operator.
//!
//! [`TreecodeSingleLayer`](crate::single_layer::TreecodeSingleLayer) owns
//! a private treecode; this operator instead routes every application
//! through a shared [`Engine`] as `query_batch` traffic — the paper's
//! highest-reuse workload (a BEM matvec inside restarted GMRES) exercising
//! the serving stack end-to-end. Each matvec:
//!
//! 1. converts the density into Gauss-point charges
//!    `q_g = w·area·σ(y_g)` and registers them as a fresh dataset
//!    **version** (engine datasets are immutable, so a charge update *is*
//!    a new registration — plan builds show up as cache misses, exactly
//!    what a charge-churning tenant costs the engine);
//! 2. asks for the potential at every collocation vertex through
//!    [`Engine::query_batch`]. The default is one all-targets request —
//!    the shape the router sends to the compiled FMM once the quadrature
//!    is fine enough (`n_gauss ≥ FMM_MIN_SOURCES`) — while
//!    [`with_requests`](EngineSingleLayer::with_requests) splits the
//!    vertex set to exercise the coalescer instead.
//!
//! Per-target independence of every backend makes the split bit-exact
//! against the single-request form at equal accuracy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mbt_engine::{Accuracy, Backend, Engine, QueryRequest};
use mbt_geometry::Particle;
use mbt_solvers::LinearOperator;

use crate::single_layer::SingleLayerGeometry;

/// Instance counter so independent operators on one engine never collide
/// on dataset names.
static NEXT_OPERATOR: AtomicU64 = AtomicU64::new(0);

/// The single-layer collocation operator applied through an [`Engine`].
pub struct EngineSingleLayer {
    geometry: SingleLayerGeometry,
    engine: Arc<Engine>,
    accuracy: Accuracy,
    label: String,
    /// Dataset versions registered so far (= operator applications).
    versions: AtomicU64,
    /// How many `query_batch` requests the vertex set splits into.
    requests_per_apply: usize,
    last_backend: Mutex<Option<Backend>>,
}

impl EngineSingleLayer {
    /// Couples a quadrature geometry with an engine; every application
    /// runs at `accuracy`.
    #[must_use]
    pub fn new(geometry: SingleLayerGeometry, engine: Arc<Engine>, accuracy: Accuracy) -> Self {
        // ordering: only uniqueness of the id matters; nothing is published
        let op = NEXT_OPERATOR.fetch_add(1, Ordering::Relaxed);
        EngineSingleLayer {
            geometry,
            engine,
            accuracy,
            label: format!("single-layer-{op}"),
            versions: AtomicU64::new(0),
            requests_per_apply: 1,
            last_backend: Mutex::new(None),
        }
    }

    /// Splits each application's vertex set into `requests` contiguous
    /// `query_batch` entries (clamped to at least 1). More requests per
    /// apply exercises the engine's grouping and coalescing; the answers
    /// are bit-identical to the single-request form.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests_per_apply = requests.max(1);
        self
    }

    /// The discretisation geometry.
    #[must_use]
    pub fn geometry(&self) -> &SingleLayerGeometry {
        &self.geometry
    }

    /// Operator applications so far (= dataset versions registered).
    #[must_use]
    pub fn applications(&self) -> u64 {
        // ordering: monotonic counter read for reporting only
        self.versions.load(Ordering::Relaxed)
    }

    /// The backend the router chose for the most recent application.
    #[must_use]
    pub fn last_backend(&self) -> Option<Backend> {
        *self
            .last_backend
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl LinearOperator for EngineSingleLayer {
    fn dim(&self) -> usize {
        self.geometry.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let charges = self.geometry.charges(x);
        let particles: Vec<Particle> = self
            .geometry
            .gauss_points
            .iter()
            .zip(&charges)
            .map(|(&p, &q)| Particle::new(p, q))
            .collect();
        // ordering: only uniqueness of the version matters; the dataset
        // itself is published by the engine's registry lock
        let version = self.versions.fetch_add(1, Ordering::Relaxed);
        let id = self
            .engine
            .register(&format!("{}/v{version}", self.label), particles)
            // lint: allow(panic, quadrature points of a validated TriMesh are finite and the version counter keeps names unique)
            .expect("gauss charges are finite and the dataset name is fresh");

        let verts = &self.geometry.mesh.vertices;
        let k = self.requests_per_apply.min(verts.len()).max(1);
        let chunk = verts.len().div_ceil(k);
        let requests: Vec<QueryRequest> = verts
            .chunks(chunk)
            .map(|c| QueryRequest::potentials(id, self.accuracy, c.to_vec()))
            .collect();
        let mut offset = 0;
        for result in self.engine.query_batch(&requests) {
            // lint: allow(panic, the requests are well-formed against a dataset registered above)
            let response = result.expect("engine rejected a well-formed matvec request");
            let values = response
                .output
                .potentials()
                // lint: allow(panic, a Potential query always answers with potentials)
                .expect("potential query answers with potentials");
            y[offset..offset + values.len()].copy_from_slice(values);
            offset += values.len();
            *self
                .last_backend
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(response.backend);
        }
        debug_assert_eq!(offset, y.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CapacitanceProblem;
    use crate::quadrature::QuadRule;
    use crate::shapes::icosphere;
    use crate::single_layer::{DenseSingleLayer, TreecodeSingleLayer};
    use mbt_engine::{routing_pinned, EngineConfig};
    use mbt_solvers::{GmresOptions, GmresOutcome};
    use mbt_treecode::TreecodeParams;

    fn sphere_geometry(subdiv: u32) -> SingleLayerGeometry {
        SingleLayerGeometry::new(icosphere(subdiv, 1.0), QuadRule::SixPoint)
    }

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig::default()).unwrap())
    }

    #[test]
    fn engine_operator_matches_dense() {
        let g = sphere_geometry(2);
        let dense = DenseSingleLayer::assemble(g.clone());
        let op = EngineSingleLayer::new(g, engine(), Accuracy::Fixed(8));
        let x: Vec<f64> = (0..dense.dim())
            .map(|i| 1.0 + 0.5 * (i as f64 * 0.01).sin())
            .collect();
        let yd = dense.apply_vec(&x);
        let ye = op.apply_vec(&x);
        let num: f64 = yd.iter().zip(&ye).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = yd.iter().map(|a| a * a).sum();
        let rel = (num / den).sqrt();
        assert!(rel < 1e-4, "engine operator differs from dense: {rel}");
        assert_eq!(op.applications(), 1);
        assert!(op.last_backend().is_some());
    }

    #[test]
    fn request_split_is_bit_identical_to_single_request() {
        let g = sphere_geometry(2);
        let single = EngineSingleLayer::new(g.clone(), engine(), Accuracy::Fixed(6));
        let split = EngineSingleLayer::new(g, engine(), Accuracy::Fixed(6)).with_requests(4);
        let x: Vec<f64> = (0..single.dim()).map(|i| (i as f64 * 0.2).cos()).collect();
        let y1 = single.apply_vec(&x);
        let y4 = split.apply_vec(&x);
        assert_eq!(y1, y4);
    }

    #[test]
    fn fine_quadrature_routes_the_matvec_to_the_fmm() {
        // subdiv 3: 7680 Gauss sources ≥ FMM_MIN_SOURCES, 642 vertex
        // targets — the all-targets/matvec shape
        let g = sphere_geometry(3);
        let e = engine();
        let op = EngineSingleLayer::new(g.clone(), Arc::clone(&e), Accuracy::Fixed(6));
        let x = vec![1.0; op.dim()];
        let phi = op.apply_vec(&x);
        if routing_pinned() {
            assert_eq!(op.last_backend(), Some(Backend::Treecode));
        } else {
            assert_eq!(op.last_backend(), Some(Backend::Fmm));
            assert!(e.stats().routed_fmm > 0);
        }
        // the answer must agree with the owned treecode operator
        let tc = TreecodeSingleLayer::new(g, TreecodeParams::fixed(8, 0.4));
        let yt = tc.apply_vec(&x);
        let num: f64 = yt.iter().zip(&phi).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = yt.iter().map(|a| a * a).sum();
        let rel = (num / den).sqrt();
        assert!(rel < 1e-3, "fmm-routed matvec differs from treecode: {rel}");
    }

    #[test]
    fn capacitance_through_the_engine_converges() {
        let g = sphere_geometry(2);
        let e = engine();
        let op = EngineSingleLayer::new(g.clone(), Arc::clone(&e), Accuracy::Fixed(8));
        let sol = CapacitanceProblem::new(&op, &g).solve(&GmresOptions {
            restart: 10,
            tol: 1e-8,
            ..Default::default()
        });
        assert_eq!(sol.gmres.outcome, GmresOutcome::Converged);
        assert!(
            (sol.capacitance - 1.0).abs() < 0.03,
            "capacitance {} should be ≈ 1",
            sol.capacitance
        );
        // every matvec became engine traffic: one dataset version each
        assert!(op.applications() as usize >= sol.gmres.iterations);
        let stats = e.stats();
        assert_eq!(
            stats.datasets as u64,
            op.applications(),
            "one dataset version per application"
        );
        assert!(stats.batched_requests >= op.applications());
    }
}
