//! Boundary-element substrate for the paper's integral-equation
//! experiments.
//!
//! The paper solves dense linear systems from boundary-element
//! discretisations of first-kind integral equations of potential theory:
//! "the surface of the domain is discretized into triangular elements.
//! Gaussian quadrature is used for integration over the surface. Typically,
//! a fixed number of Gauss points are located inside each element and
//! inserted into the hierarchical domain representation. Using this
//! hierarchical domain, the potential is computed at the vertices of the
//! elements and matched to the boundary values."
//!
//! This crate builds everything that pipeline needs:
//!
//! * [`TriMesh`] — triangle surface meshes with validation and measures,
//! * [`shapes`] — procedural geometry: icospheres, plates, boxes, plus the
//!   synthetic **propeller** and **gripper** stand-ins for the paper's
//!   industrial meshes (see `DESIGN.md` for the substitution rationale),
//! * [`quadrature`] — symmetric triangle Gauss rules (1–7 points),
//! * [`SingleLayerOperator`] — the collocation single-layer potential
//!   operator with piecewise-linear densities, applied either densely
//!   (exact reference) or through the treecode,
//! * [`double_layer`] — the double-layer operator (dense + treecode via
//!   finite-difference dipoles), validated against the Gauss identities,
//! * [`EngineSingleLayer`] — the same operator applied through a shared
//!   `mbt-engine` instance as routed `query_batch` traffic (all-targets
//!   matvec shapes reach the compiled FMM backend),
//! * [`problem`] — the Dirichlet capacitance problem solved with GMRES.

#![forbid(unsafe_code)]

pub mod double_layer;
pub mod engine_op;
pub mod mesh;
pub mod problem;
pub mod quadrature;
pub mod shapes;
pub mod single_layer;

pub use double_layer::{DenseDoubleLayer, TreecodeDoubleLayer};
pub use engine_op::EngineSingleLayer;
pub use mesh::TriMesh;
pub use problem::CapacitanceProblem;
pub use quadrature::QuadRule;
pub use single_layer::{DenseSingleLayer, SingleLayerGeometry, TreecodeSingleLayer};
