//! Triangle surface meshes.

use mbt_geometry::{Aabb, Vec3};

/// An indexed triangle mesh.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    /// Vertex positions (the collocation nodes of the BEM).
    pub vertices: Vec<Vec3>,
    /// Triangles as vertex-index triples.
    pub triangles: Vec<[u32; 3]>,
}

/// Mesh validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A triangle references a vertex index out of range.
    IndexOutOfRange {
        /// Offending triangle.
        triangle: usize,
    },
    /// A triangle has (numerically) zero area.
    DegenerateTriangle {
        /// Offending triangle.
        triangle: usize,
    },
    /// The mesh has no triangles.
    Empty,
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::IndexOutOfRange { triangle } => {
                write!(f, "triangle {triangle} references a vertex out of range")
            }
            MeshError::DegenerateTriangle { triangle } => {
                write!(f, "triangle {triangle} is degenerate (zero area)")
            }
            MeshError::Empty => write!(f, "mesh has no triangles"),
        }
    }
}

impl std::error::Error for MeshError {}

impl TriMesh {
    /// Number of vertices (BEM unknowns).
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles (BEM elements).
    #[inline]
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.triangles.len()
    }

    /// The corner positions of a triangle.
    #[inline]
    #[must_use]
    pub fn corners(&self, t: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[t];
        [
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        ]
    }

    /// Triangle area.
    #[must_use]
    pub fn area(&self, t: usize) -> f64 {
        let [a, b, c] = self.corners(t);
        0.5 * (b - a).cross(c - a).norm()
    }

    /// Triangle unit normal (right-hand rule over the index order).
    #[must_use]
    pub fn normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.corners(t);
        (b - a).cross(c - a).normalized()
    }

    /// Triangle centroid.
    #[must_use]
    pub fn centroid(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.corners(t);
        (a + b + c) / 3.0
    }

    /// Total surface area.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        (0..self.num_elements()).map(|t| self.area(t)).sum()
    }

    /// Axis-aligned bounds of the vertex set.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        Aabb::of_points(&self.vertices)
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), MeshError> {
        if self.triangles.is_empty() {
            return Err(MeshError::Empty);
        }
        let n = self.vertices.len() as u32;
        for (t, tri) in self.triangles.iter().enumerate() {
            if tri.iter().any(|&v| v >= n) {
                return Err(MeshError::IndexOutOfRange { triangle: t });
            }
            if self.area(t) <= 1e-14 {
                return Err(MeshError::DegenerateTriangle { triangle: t });
            }
        }
        Ok(())
    }

    /// Appends another mesh (indices offset), consuming neither.
    #[must_use]
    pub fn merged(&self, other: &TriMesh) -> TriMesh {
        let offset = self.vertices.len() as u32;
        let mut out = self.clone();
        out.vertices.extend_from_slice(&other.vertices);
        out.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + offset, t[1] + offset, t[2] + offset]),
        );
        out
    }

    /// Returns the mesh with every vertex mapped through `f`.
    #[must_use]
    pub fn transformed(&self, f: impl Fn(Vec3) -> Vec3) -> TriMesh {
        TriMesh {
            vertices: self.vertices.iter().map(|&v| f(v)).collect(),
            triangles: self.triangles.clone(),
        }
    }

    /// Translates the mesh.
    #[must_use]
    pub fn translated(&self, d: Vec3) -> TriMesh {
        self.transformed(|v| v + d)
    }

    /// Uniformly scales the mesh about the origin.
    #[must_use]
    pub fn scaled(&self, s: f64) -> TriMesh {
        self.transformed(|v| v * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_triangle() -> TriMesh {
        TriMesh {
            vertices: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            triangles: vec![[0, 1, 2]],
        }
    }

    #[test]
    fn measures_of_unit_triangle() {
        let m = unit_triangle();
        assert!((m.area(0) - 0.5).abs() < 1e-15);
        assert_eq!(m.normal(0), Vec3::Z);
        assert!(m.centroid(0).distance(Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0)) < 1e-15);
        assert!((m.total_area() - 0.5).abs() < 1e-15);
        m.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_meshes() {
        assert_eq!(TriMesh::default().validate(), Err(MeshError::Empty));
        let mut m = unit_triangle();
        m.triangles.push([0, 1, 9]);
        assert_eq!(
            m.validate(),
            Err(MeshError::IndexOutOfRange { triangle: 1 })
        );
        let m = TriMesh {
            vertices: vec![Vec3::ZERO, Vec3::X, Vec3::X * 2.0],
            triangles: vec![[0, 1, 2]],
        };
        assert_eq!(
            m.validate(),
            Err(MeshError::DegenerateTriangle { triangle: 0 })
        );
    }

    #[test]
    fn merge_offsets_indices() {
        let m = unit_triangle().merged(&unit_triangle().translated(Vec3::Z));
        assert_eq!(m.num_vertices(), 6);
        assert_eq!(m.num_elements(), 2);
        assert_eq!(m.triangles[1], [3, 4, 5]);
        m.validate().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn transforms() {
        let m = unit_triangle().scaled(2.0);
        assert!((m.area(0) - 2.0).abs() < 1e-14);
        let m2 = m.translated(Vec3::new(0.0, 0.0, 5.0));
        assert_eq!(m2.vertices[0].z, 5.0);
        assert!((m2.area(0) - 2.0).abs() < 1e-14);
    }
}
