//! The Dirichlet capacitance problem — the canonical first-kind integral
//! equation of potential theory the paper's BEM experiments exercise.
//!
//! Given a conductor surface Γ held at unit potential, solve
//! `∫_Γ σ(y)/|x−y| dΓ(y) = 1` for the charge density `σ`; the capacitance
//! is the total induced charge `C = ∫_Γ σ dΓ` (Gaussian units, so a sphere
//! of radius `R` has `C = R` exactly — a free analytic check).

use mbt_solvers::{gmres, GmresOptions, GmresResult, LinearOperator};

use crate::single_layer::SingleLayerGeometry;

/// A capacitance solve on a given operator backend.
pub struct CapacitanceProblem<'a, Op: LinearOperator> {
    operator: &'a Op,
    geometry: &'a SingleLayerGeometry,
}

/// Result of a capacitance solve.
#[derive(Debug, Clone)]
pub struct CapacitanceSolution {
    /// The density at the vertices.
    pub sigma: Vec<f64>,
    /// Total induced charge `∫ σ dΓ` — the capacitance.
    pub capacitance: f64,
    /// The GMRES run record.
    pub gmres: GmresResult,
}

impl<'a, Op: LinearOperator> CapacitanceProblem<'a, Op> {
    /// Couples an operator with its geometry.
    pub fn new(operator: &'a Op, geometry: &'a SingleLayerGeometry) -> Self {
        assert_eq!(operator.dim(), geometry.dim());
        CapacitanceProblem { operator, geometry }
    }

    /// Solves `Sσ = 1` with restarted GMRES and integrates the density.
    #[must_use]
    pub fn solve(&self, opts: &GmresOptions) -> CapacitanceSolution {
        let b = vec![1.0; self.operator.dim()];
        let gmres_result = gmres(self.operator, &b, opts);
        let capacitance = self.geometry.integrate_density(&gmres_result.x);
        CapacitanceSolution {
            sigma: gmres_result.x.clone(),
            capacitance,
            gmres: gmres_result,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::QuadRule;
    use crate::shapes::icosphere;
    use crate::single_layer::{DenseSingleLayer, TreecodeSingleLayer};
    use mbt_solvers::GmresOutcome;
    use mbt_treecode::TreecodeParams;

    #[test]
    fn sphere_capacitance_dense() {
        // unit sphere: C = R = 1 in Gaussian units
        let g = SingleLayerGeometry::new(icosphere(2, 1.0), QuadRule::SixPoint);
        let dense = DenseSingleLayer::assemble(g.clone());
        let problem = CapacitanceProblem::new(&dense, &g);
        let sol = problem.solve(&GmresOptions {
            restart: 10,
            tol: 1e-10,
            ..Default::default()
        });
        assert_eq!(sol.gmres.outcome, GmresOutcome::Converged);
        assert!(
            (sol.capacitance - 1.0).abs() < 0.03,
            "capacitance {} should be ≈ 1",
            sol.capacitance
        );
        // density is positive and nearly uniform on a sphere
        let mean = sol.sigma.iter().sum::<f64>() / sol.sigma.len() as f64;
        for &s in &sol.sigma {
            assert!(s > 0.0);
            assert!((s - mean).abs() < 0.15 * mean, "sigma {s} vs mean {mean}");
        }
    }

    #[test]
    fn sphere_capacitance_treecode_matches_dense() {
        let g = SingleLayerGeometry::new(icosphere(2, 1.0), QuadRule::SixPoint);
        let dense = DenseSingleLayer::assemble(g.clone());
        let tcode = TreecodeSingleLayer::new(g.clone(), TreecodeParams::fixed(8, 0.4));
        let opts = GmresOptions {
            restart: 10,
            tol: 1e-8,
            ..Default::default()
        };
        let c_dense = CapacitanceProblem::new(&dense, &g).solve(&opts).capacitance;
        let c_tree = CapacitanceProblem::new(&tcode, &g).solve(&opts).capacitance;
        assert!(
            (c_dense - c_tree).abs() < 1e-3 * c_dense.abs(),
            "dense {c_dense} vs treecode {c_tree}"
        );
    }

    #[test]
    fn larger_sphere_has_larger_capacitance() {
        let opts = GmresOptions {
            restart: 10,
            tol: 1e-8,
            ..Default::default()
        };
        let mut caps = Vec::new();
        for r in [1.0, 2.0] {
            let g = SingleLayerGeometry::new(icosphere(1, r), QuadRule::SixPoint);
            let dense = DenseSingleLayer::assemble(g.clone());
            caps.push(CapacitanceProblem::new(&dense, &g).solve(&opts).capacitance);
        }
        // C scales linearly with R
        assert!(
            (caps[1] / caps[0] - 2.0).abs() < 0.02,
            "C(2R)/C(R) = {}",
            caps[1] / caps[0]
        );
    }
}
