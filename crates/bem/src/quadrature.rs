//! Symmetric Gauss quadrature rules on triangles.
//!
//! Points are given in barycentric coordinates with weights normalised to
//! sum to one, so an integral over a physical triangle is
//! `area · Σ w_g f(y_g)`. The paper's experiments use 6 Gauss points per
//! element ([`QuadRule::SixPoint`], exact through degree 4).

use mbt_geometry::Vec3;

use crate::mesh::TriMesh;

/// Available rules (named by point count; degree = highest polynomial
/// degree integrated exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuadRule {
    /// 1 point, degree 1.
    Centroid,
    /// 3 points, degree 2.
    ThreePoint,
    /// 4 points, degree 3 (has one negative weight).
    FourPoint,
    /// 6 points, degree 4 — the paper's choice.
    #[default]
    SixPoint,
    /// 7 points, degree 5.
    SevenPoint,
}

impl QuadRule {
    /// Barycentric points and weights (weights sum to 1).
    #[must_use]
    pub fn points(self) -> &'static [([f64; 3], f64)] {
        match self {
            QuadRule::Centroid => {
                const P: [([f64; 3], f64); 1] = [([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 1.0)];
                &P
            }
            QuadRule::ThreePoint => {
                const A: f64 = 2.0 / 3.0;
                const B: f64 = 1.0 / 6.0;
                const W: f64 = 1.0 / 3.0;
                const P: [([f64; 3], f64); 3] = [([A, B, B], W), ([B, A, B], W), ([B, B, A], W)];
                &P
            }
            QuadRule::FourPoint => {
                const W0: f64 = -27.0 / 48.0;
                const W1: f64 = 25.0 / 48.0;
                const A: f64 = 0.6;
                const B: f64 = 0.2;
                const P: [([f64; 3], f64); 4] = [
                    ([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], W0),
                    ([A, B, B], W1),
                    ([B, A, B], W1),
                    ([B, B, A], W1),
                ];
                &P
            }
            QuadRule::SixPoint => {
                const A1: f64 = 0.445_948_490_915_965;
                const B1: f64 = 0.108_103_018_168_070;
                const W1: f64 = 0.223_381_589_678_011;
                const A2: f64 = 0.091_576_213_509_771;
                const B2: f64 = 0.816_847_572_980_459;
                const W2: f64 = 0.109_951_743_655_322;
                const P: [([f64; 3], f64); 6] = [
                    ([B1, A1, A1], W1),
                    ([A1, B1, A1], W1),
                    ([A1, A1, B1], W1),
                    ([B2, A2, A2], W2),
                    ([A2, B2, A2], W2),
                    ([A2, A2, B2], W2),
                ];
                &P
            }
            QuadRule::SevenPoint => {
                const W0: f64 = 0.225;
                const A1: f64 = 0.470_142_064_105_115;
                const B1: f64 = 0.059_715_871_789_770;
                const W1: f64 = 0.132_394_152_788_506;
                const A2: f64 = 0.101_286_507_323_456;
                const B2: f64 = 0.797_426_985_353_087;
                const W2: f64 = 0.125_939_180_544_827;
                const P: [([f64; 3], f64); 7] = [
                    ([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], W0),
                    ([B1, A1, A1], W1),
                    ([A1, B1, A1], W1),
                    ([A1, A1, B1], W1),
                    ([B2, A2, A2], W2),
                    ([A2, B2, A2], W2),
                    ([A2, A2, B2], W2),
                ];
                &P
            }
        }
    }

    /// Number of points.
    #[must_use]
    pub fn len(self) -> usize {
        self.points().len()
    }

    /// Always false (every rule has points); included for clippy symmetry.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Highest exactly-integrated polynomial degree.
    #[must_use]
    pub fn degree(self) -> usize {
        match self {
            QuadRule::Centroid => 1,
            QuadRule::ThreePoint => 2,
            QuadRule::FourPoint => 3,
            QuadRule::SixPoint => 4,
            QuadRule::SevenPoint => 5,
        }
    }
}

/// Integrates `f` over triangle `t` of `mesh` with the given rule.
pub fn integrate_on_triangle(
    mesh: &TriMesh,
    t: usize,
    rule: QuadRule,
    f: impl Fn(Vec3) -> f64,
) -> f64 {
    let [a, b, c] = mesh.corners(t);
    let area = mesh.area(t);
    rule.points()
        .iter()
        .map(|&([ba, bb, bc], w)| w * f(a * ba + b * bb + c * bc))
        .sum::<f64>()
        * area
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [QuadRule; 5] = [
        QuadRule::Centroid,
        QuadRule::ThreePoint,
        QuadRule::FourPoint,
        QuadRule::SixPoint,
        QuadRule::SevenPoint,
    ];

    #[test]
    fn weights_sum_to_one_and_points_valid() {
        for rule in ALL {
            let sum: f64 = rule.points().iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12, "{rule:?}");
            for &(b, _) in rule.points() {
                assert!((b[0] + b[1] + b[2] - 1.0).abs() < 1e-12, "{rule:?}");
            }
            assert_eq!(rule.len(), rule.points().len());
            assert!(!rule.is_empty());
        }
    }

    /// ∫ x^a y^b over the unit right triangle = a!·b!/(a+b+2)!.
    fn monomial_integral(a: u32, b: u32) -> f64 {
        let fact = |k: u32| (1..=k).map(f64::from).product::<f64>().max(1.0);
        fact(a) * fact(b) / fact(a + b + 2)
    }

    fn unit_right_triangle() -> TriMesh {
        TriMesh {
            vertices: vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
            triangles: vec![[0, 1, 2]],
        }
    }

    #[test]
    fn rules_are_exact_to_their_degree() {
        let mesh = unit_right_triangle();
        for rule in ALL {
            for a in 0..=rule.degree() as u32 {
                for b in 0..=(rule.degree() as u32 - a) {
                    let approx = integrate_on_triangle(&mesh, 0, rule, |p| {
                        p.x.powi(a as i32) * p.y.powi(b as i32)
                    });
                    let exact = monomial_integral(a, b);
                    assert!(
                        (approx - exact).abs() < 1e-12,
                        "{rule:?} fails on x^{a} y^{b}: {approx} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn six_point_not_exact_beyond_degree() {
        let mesh = unit_right_triangle();
        // degree-6 monomial must show a quadrature error
        let approx = integrate_on_triangle(&mesh, 0, QuadRule::SixPoint, |p| p.x.powi(6));
        let exact = monomial_integral(6, 0);
        assert!((approx - exact).abs() > 1e-8);
    }

    #[test]
    fn integrates_constant_to_area() {
        let mesh = unit_right_triangle();
        for rule in ALL {
            let v = integrate_on_triangle(&mesh, 0, rule, |_| 3.0);
            assert!((v - 1.5).abs() < 1e-13);
        }
    }
}
