//! Procedural surface geometry.
//!
//! Besides the standard test shapes (icosphere, plate, box), this module
//! generates the two **synthetic stand-ins for the paper's industrial
//! meshes** — highly unstructured surface discretisations where "a bulk of
//! the volume is empty and the nodes are concentrated on the surface":
//!
//! * [`propeller`] — a hub sphere with `b` twisted, tapered blades swept
//!   from parametric ruled surfaces (the paper: an airplane propeller,
//!   140,800 elements / 70,439 nodes),
//! * [`gripper`] — a box-assembly industrial gripper: base block, two
//!   parallel jaw arms and finger pads (the paper: surface discretisations
//!   of an industrial gripper, up to 185,856 elements / 92,918 nodes).
//!
//! All generators take resolution parameters so the harnesses can scale the
//! meshes to the machine.

use mbt_geometry::Vec3;

use crate::mesh::TriMesh;

/// An icosphere: subdivided icosahedron projected to radius `radius`.
#[must_use]
pub fn icosphere(subdivisions: u32, radius: f64) -> TriMesh {
    // icosahedron
    let phi = f64::midpoint(1.0, 5.0f64.sqrt());
    let verts = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    let faces: [[u32; 3]; 20] = [
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    let mut mesh = TriMesh {
        vertices: verts
            .iter()
            .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
            .collect(),
        triangles: faces.to_vec(),
    };
    for _ in 0..subdivisions {
        mesh = subdivide_on_sphere(&mesh);
    }
    mesh.transformed(|v| v.normalized() * radius)
}

/// One 4-to-1 subdivision with midpoints re-projected to the unit sphere.
fn subdivide_on_sphere(mesh: &TriMesh) -> TriMesh {
    use std::collections::HashMap;
    let mut vertices = mesh.vertices.clone();
    let mut midpoint = HashMap::new();
    let mut triangles = Vec::with_capacity(mesh.triangles.len() * 4);
    let mut mid = |a: u32, b: u32, vertices: &mut Vec<Vec3>| -> u32 {
        let key = (a.min(b), a.max(b));
        *midpoint.entry(key).or_insert_with(|| {
            let m = (vertices[a as usize] + vertices[b as usize]).normalized();
            vertices.push(m);
            (vertices.len() - 1) as u32
        })
    };
    for &[a, b, c] in &mesh.triangles {
        let ab = mid(a, b, &mut vertices);
        let bc = mid(b, c, &mut vertices);
        let ca = mid(c, a, &mut vertices);
        triangles.push([a, ab, ca]);
        triangles.push([b, bc, ab]);
        triangles.push([c, ca, bc]);
        triangles.push([ab, bc, ca]);
    }
    TriMesh {
        vertices,
        triangles,
    }
}

/// A flat rectangular plate in the xy-plane, `nx × ny` quads split into
/// triangles, spanning `[0, lx] × [0, ly]`.
#[must_use]
pub fn plate(nx: usize, ny: usize, lx: f64, ly: f64) -> TriMesh {
    assert!(nx >= 1 && ny >= 1);
    let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1));
    for j in 0..=ny {
        for i in 0..=nx {
            vertices.push(Vec3::new(
                lx * i as f64 / nx as f64,
                ly * j as f64 / ny as f64,
                0.0,
            ));
        }
    }
    let idx = |i: usize, j: usize| (j * (nx + 1) + i) as u32;
    let mut triangles = Vec::with_capacity(nx * ny * 2);
    for j in 0..ny {
        for i in 0..nx {
            let (a, b, c, d) = (idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), idx(i, j + 1));
            triangles.push([a, b, c]);
            triangles.push([a, c, d]);
        }
    }
    TriMesh {
        vertices,
        triangles,
    }
}

/// A closed axis-aligned box surface `[0,lx]×[0,ly]×[0,lz]` with roughly
/// `res` elements along the longest edge.
#[must_use]
pub fn box_surface(lx: f64, ly: f64, lz: f64, res: usize) -> TriMesh {
    let res = res.max(1);
    let longest = lx.max(ly).max(lz);
    let divs = |l: f64| ((l / longest * res as f64).ceil() as usize).max(1);
    let (nx, ny, nz) = (divs(lx), divs(ly), divs(lz));

    // Six plates mapped so every face normal points outward. A plate's
    // natural normal is +z over its (u, v) grid, so faces needing the
    // opposite orientation swap their parameter axes.
    let mut mesh = TriMesh::default();
    let top = plate(nx, ny, lx, ly).transformed(|v| Vec3::new(v.x, v.y, lz));
    let bottom = plate(ny, nx, ly, lx).transformed(|v| Vec3::new(v.y, v.x, 0.0));
    let front = plate(nx, nz, lx, lz).transformed(|v| Vec3::new(v.x, 0.0, v.y));
    let back = plate(nz, nx, lz, lx).transformed(|v| Vec3::new(v.y, ly, v.x));
    let left = plate(nz, ny, lz, ly).transformed(|v| Vec3::new(0.0, v.y, v.x));
    let right = plate(ny, nz, ly, lz).transformed(|v| Vec3::new(lx, v.x, v.y));
    for part in [bottom, top, front, back, left, right] {
        mesh = mesh.merged(&part);
    }
    mesh
}

/// The synthetic **propeller**: a central hub (icosphere, squashed along
/// the axis) plus `blades` twisted, tapered blade surfaces. `blade_res`
/// controls the per-blade grid (elements ≈ `blades · 2·blade_res·(blade_res/3)`
/// plus the hub).
#[must_use]
pub fn propeller(blades: usize, blade_res: usize, hub_subdiv: u32) -> TriMesh {
    assert!(blades >= 2, "a propeller needs at least two blades");
    let blade_res = blade_res.max(3);
    let hub = icosphere(hub_subdiv, 0.35).transformed(|v| Vec3::new(v.x, v.y, v.z * 0.6));
    let mut mesh = hub;
    for b in 0..blades {
        let phase = std::f64::consts::TAU * b as f64 / blades as f64;
        let blade = blade_surface(blade_res, blade_res / 3 + 1);
        // rotate the blade into place about z
        let (s, c) = phase.sin_cos();
        let placed = blade.transformed(|v| Vec3::new(c * v.x - s * v.y, s * v.x + c * v.y, v.z));
        mesh = mesh.merged(&placed);
    }
    mesh
}

/// One blade: a ruled surface running radially from the hub, tapered and
/// twisted along its length (two-sided sheet so the mesh bounds a thin
/// volume-less screen — matching a surface discretisation where volume is
/// empty).
fn blade_surface(n_rad: usize, n_chord: usize) -> TriMesh {
    let root = 0.3;
    let tip = 1.6;
    let chord_root = 0.28;
    let chord_tip = 0.08;
    let twist_total = 1.1; // radians of twist root→tip
    let mut sheet = plate(n_rad, n_chord, 1.0, 1.0);
    sheet = sheet.transformed(|v| {
        let t = v.x; // 0 at root, 1 at tip
        let r = root + t * (tip - root);
        let chord = chord_root + t * (chord_tip - chord_root);
        let cpos = (v.y - 0.5) * chord;
        let twist = twist_total * t;
        let (s, c) = twist.sin_cos();
        // chord line twisted in the (y, z) plane, swept along +x
        Vec3::new(r, cpos * c, cpos * s)
    });
    sheet
}

/// The synthetic **gripper**: a base block, two parallel jaw arms extending
/// forward, and inward finger pads — an industrial-robot end effector as a
/// union of box surfaces. `res` scales every box's tessellation.
#[must_use]
pub fn gripper(res: usize) -> TriMesh {
    let res = res.max(2);
    let base = box_surface(1.2, 0.8, 0.5, res);
    let arm_l = box_surface(0.25, 0.9, 0.25, res).translated(Vec3::new(0.1, 0.7, 0.12));
    let arm_r = box_surface(0.25, 0.9, 0.25, res).translated(Vec3::new(0.85, 0.7, 0.12));
    let pad_l = box_surface(0.18, 0.3, 0.35, res).translated(Vec3::new(0.33, 1.35, 0.07));
    let pad_r = box_surface(0.18, 0.3, 0.35, res).translated(Vec3::new(0.69, 1.35, 0.07));
    let mut m = base;
    for part in [arm_l, arm_r, pad_l, pad_r] {
        m = m.merged(&part);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icosphere_measures() {
        let m = icosphere(3, 2.0);
        m.validate().unwrap();
        // every vertex on the sphere
        for v in &m.vertices {
            assert!((v.norm() - 2.0).abs() < 1e-12);
        }
        // area approaches 4πr² from below
        let exact = 4.0 * std::f64::consts::PI * 4.0;
        let area = m.total_area();
        assert!(
            area < exact && area > 0.98 * exact,
            "area {area} vs {exact}"
        );
        // outward orientation: normal · centroid > 0
        for t in 0..m.num_elements() {
            assert!(
                m.normal(t).dot(m.centroid(t)) > 0.0,
                "inward-facing triangle {t}"
            );
        }
    }

    #[test]
    fn icosphere_subdivision_counts() {
        let m0 = icosphere(0, 1.0);
        assert_eq!(m0.num_elements(), 20);
        assert_eq!(m0.num_vertices(), 12);
        let m2 = icosphere(2, 1.0);
        assert_eq!(m2.num_elements(), 320);
        // Euler: V = E - F + 2 = (3F/2) - F + 2
        assert_eq!(
            m2.num_vertices(),
            m2.num_elements() * 3 / 2 - m2.num_elements() + 2
        );
    }

    #[test]
    fn plate_measures() {
        let m = plate(4, 3, 2.0, 1.5);
        m.validate().unwrap();
        assert_eq!(m.num_elements(), 4 * 3 * 2);
        assert!((m.total_area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn box_surface_is_closed_and_has_right_area() {
        let (lx, ly, lz) = (1.0, 2.0, 0.5);
        let m = box_surface(lx, ly, lz, 4);
        m.validate().unwrap();
        let exact = 2.0 * (lx * ly + ly * lz + lz * lx);
        assert!(
            (m.total_area() - exact).abs() < 1e-9,
            "area {} vs {exact}",
            m.total_area()
        );
        // all vertices on the box boundary
        for v in &m.vertices {
            let on_x = v.x.abs() < 1e-12 || (v.x - lx).abs() < 1e-12;
            let on_y = v.y.abs() < 1e-12 || (v.y - ly).abs() < 1e-12;
            let on_z = v.z.abs() < 1e-12 || (v.z - lz).abs() < 1e-12;
            assert!(on_x || on_y || on_z, "vertex {v:?} not on the surface");
        }
    }

    #[test]
    fn propeller_is_valid_and_unstructured() {
        let m = propeller(3, 12, 2);
        m.validate().unwrap();
        assert!(m.num_elements() > 600);
        // blades reach out to ~1.6, hub at ~0.35: very nonuniform vertex
        // density ⇒ bounding box much larger than the hub
        let b = m.bounds();
        assert!(b.extent().max_component() > 2.5);
    }

    #[test]
    fn gripper_is_valid() {
        let m = gripper(6);
        m.validate().unwrap();
        assert!(m.num_elements() > 500);
        assert!(m.bounds().extent().y > 1.5); // arms extend forward
    }

    #[test]
    fn shape_scaling_controls_element_count() {
        assert!(gripper(12).num_elements() > 3 * gripper(4).num_elements());
        assert!(propeller(4, 24, 3).num_elements() > propeller(4, 8, 2).num_elements());
    }
}
