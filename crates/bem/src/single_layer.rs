//! The collocation single-layer potential operator.
//!
//! For a density `σ` that is piecewise linear over the mesh (one unknown
//! per vertex), the single-layer potential at collocation point `xᵢ` (the
//! vertices) is
//!
//! ```text
//! (Sσ)(xᵢ) = ∫_Γ σ(y)/|xᵢ − y| dΓ(y)
//!          ≈ Σ_elements Σ_gauss wg·area·σ(y_g) / |xᵢ − y_g|
//! ```
//!
//! with `σ(y_g)` interpolated from the element's vertices by the
//! barycentric coordinates of the Gauss point. Exactly as in the paper, the
//! Gauss points are "inserted into the hierarchical domain representation"
//! as point charges `q_g = wg·area·σ(y_g)` and the potential is evaluated
//! at the vertices — densely (`O(n²)`, the exact reference) or through the
//! treecode (`O(n log n)`).

use mbt_geometry::{Particle, Vec3};
use mbt_solvers::{DenseMatrix, LinearOperator};
use mbt_tree::{Octree, OctreeParams};
use mbt_treecode::{EvalStats, Treecode, TreecodeParams};
use rayon::prelude::*;
use std::sync::Mutex;

use crate::mesh::TriMesh;
use crate::quadrature::QuadRule;

/// The discretised geometry shared by both operator backends: Gauss points
/// with their element/barycentric provenance, plus the collocation nodes.
#[derive(Debug, Clone)]
pub struct SingleLayerGeometry {
    /// The surface mesh.
    pub mesh: TriMesh,
    /// The quadrature rule.
    pub rule: QuadRule,
    /// Gauss-point positions (all elements, rule order).
    pub gauss_points: Vec<Vec3>,
    /// For each Gauss point, the indices of its element's three vertices.
    pub gauss_vertices: Vec<[u32; 3]>,
    /// For each Gauss point, its barycentric coordinates in its element.
    pub gauss_bary: Vec<[f64; 3]>,
    /// For each Gauss point, `weight × element area`.
    pub gauss_wa: Vec<f64>,
}

impl SingleLayerGeometry {
    /// Builds the quadrature geometry of a mesh.
    #[must_use]
    pub fn new(mesh: TriMesh, rule: QuadRule) -> Self {
        let n_g = mesh.num_elements() * rule.len();
        let mut gauss_points = Vec::with_capacity(n_g);
        let mut gauss_vertices = Vec::with_capacity(n_g);
        let mut gauss_bary = Vec::with_capacity(n_g);
        let mut gauss_wa = Vec::with_capacity(n_g);
        for t in 0..mesh.num_elements() {
            let [a, b, c] = mesh.corners(t);
            let tri = mesh.triangles[t];
            let area = mesh.area(t);
            for &(bary, w) in rule.points() {
                gauss_points.push(a * bary[0] + b * bary[1] + c * bary[2]);
                gauss_vertices.push(tri);
                gauss_bary.push(bary);
                gauss_wa.push(w * area);
            }
        }
        SingleLayerGeometry {
            mesh,
            rule,
            gauss_points,
            gauss_vertices,
            gauss_bary,
            gauss_wa,
        }
    }

    /// Number of unknowns (vertices).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mesh.num_vertices()
    }

    /// Number of quadrature sources.
    #[must_use]
    pub fn num_gauss(&self) -> usize {
        self.gauss_points.len()
    }

    /// Converts a vertex density into Gauss-point charges
    /// `q_g = w·area·σ(y_g)`.
    #[must_use]
    pub fn charges(&self, sigma: &[f64]) -> Vec<f64> {
        assert_eq!(sigma.len(), self.dim());
        (0..self.num_gauss())
            .map(|g| {
                let [v0, v1, v2] = self.gauss_vertices[g];
                let [b0, b1, b2] = self.gauss_bary[g];
                self.gauss_wa[g]
                    * (b0 * sigma[v0 as usize] + b1 * sigma[v1 as usize] + b2 * sigma[v2 as usize])
            })
            .collect()
    }

    /// Integrates a vertex density over the surface: `∫_Γ σ dΓ` — e.g. the
    /// total charge of a capacitance solution.
    #[must_use]
    pub fn integrate_density(&self, sigma: &[f64]) -> f64 {
        self.charges(sigma).iter().sum()
    }
}

/// The exact dense operator: an assembled `n × n` matrix.
pub struct DenseSingleLayer {
    geometry: SingleLayerGeometry,
    matrix: DenseMatrix,
}

impl DenseSingleLayer {
    /// Assembles the dense collocation matrix (`O(n_vertices · n_gauss)`).
    #[must_use]
    pub fn assemble(geometry: SingleLayerGeometry) -> Self {
        let n = geometry.dim();
        let verts = &geometry.mesh.vertices;
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let xi = verts[i];
                let mut row = vec![0.0f64; n];
                for g in 0..geometry.num_gauss() {
                    let r = xi.distance(geometry.gauss_points[g]);
                    // lint: allow(float_cmp, exact-zero guard before dividing)
                    if r == 0.0 {
                        continue; // collocation point on a Gauss node (never for interior rules)
                    }
                    let k = geometry.gauss_wa[g] / r;
                    let [v0, v1, v2] = geometry.gauss_vertices[g];
                    let [b0, b1, b2] = geometry.gauss_bary[g];
                    row[v0 as usize] += k * b0;
                    row[v1 as usize] += k * b1;
                    row[v2 as usize] += k * b2;
                }
                row
            })
            .collect();
        let mut matrix = DenseMatrix::zeros(n, n);
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                matrix[(i, j)] = v;
            }
        }
        DenseSingleLayer { geometry, matrix }
    }

    /// The discretisation geometry.
    #[must_use]
    pub fn geometry(&self) -> &SingleLayerGeometry {
        &self.geometry
    }

    /// The assembled matrix.
    #[must_use]
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }
}

impl LinearOperator for DenseSingleLayer {
    fn dim(&self) -> usize {
        self.geometry.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matrix.matvec(x, y);
    }
}

/// The treecode-accelerated operator: Gauss points live in an octree built
/// once; every application updates their charges and evaluates the
/// potential at the vertices through the (fixed- or adaptive-degree)
/// treecode.
pub struct TreecodeSingleLayer {
    geometry: SingleLayerGeometry,
    base: Treecode,
    stats: Mutex<EvalStats>,
    applications: Mutex<u64>,
}

impl TreecodeSingleLayer {
    /// Builds the operator (one octree construction over the Gauss points).
    ///
    /// The tree geometry — expansion centers, cluster radii, adaptive
    /// degrees — is frozen from the quadrature weights (`|q| = w·area`,
    /// realistic cluster weights), so every subsequent application is the
    /// same, exactly linear, operator.
    #[must_use]
    pub fn new(geometry: SingleLayerGeometry, params: TreecodeParams) -> Self {
        let particles: Vec<Particle> = geometry
            .gauss_points
            .iter()
            .zip(&geometry.gauss_wa)
            .map(|(&p, &wa)| Particle::new(p, wa))
            .collect();
        let base_tree = Octree::build(
            &particles,
            OctreeParams {
                leaf_capacity: params.leaf_capacity,
            },
        )
        // lint: allow(panic, quadrature points of a validated TriMesh are finite and nonempty)
        .expect("gauss points are finite and nonempty");
        let base = Treecode::from_tree(base_tree, params);
        TreecodeSingleLayer {
            geometry,
            base,
            stats: Mutex::new(EvalStats::default()),
            applications: Mutex::new(0),
        }
    }

    /// The discretisation geometry.
    pub fn geometry(&self) -> &SingleLayerGeometry {
        &self.geometry
    }

    /// Accumulated evaluation statistics over all applications so far.
    pub fn stats(&self) -> EvalStats {
        // counters stay meaningful even if a panicking thread poisoned the lock
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of operator applications so far.
    pub fn applications(&self) -> u64 {
        *self
            .applications
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl LinearOperator for TreecodeSingleLayer {
    fn dim(&self) -> usize {
        self.geometry.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let charges = self.geometry.charges(x);
        let tc = self.base.with_charges(&charges);
        let result = tc.potentials_at(&self.geometry.mesh.vertices);
        y.copy_from_slice(&result.values);
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(&result.stats);
        *self
            .applications
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::icosphere;

    fn sphere_geometry(subdiv: u32) -> SingleLayerGeometry {
        SingleLayerGeometry::new(icosphere(subdiv, 1.0), QuadRule::SixPoint)
    }

    #[test]
    fn geometry_counts_and_charges() {
        let g = sphere_geometry(1);
        assert_eq!(g.num_gauss(), g.mesh.num_elements() * 6);
        assert_eq!(g.dim(), g.mesh.num_vertices());
        // constant density integrates to the surface area
        let sigma = vec![1.0; g.dim()];
        let total: f64 = g.integrate_density(&sigma);
        assert!((total - g.mesh.total_area()).abs() < 1e-10);
    }

    #[test]
    fn dense_operator_constant_density_on_sphere() {
        // uniform density σ on a unit sphere gives potential 4π·σ·R on the
        // surface (up to discretisation error)
        let g = sphere_geometry(2);
        let op = DenseSingleLayer::assemble(g);
        let sigma = vec![1.0; op.dim()];
        let phi = op.apply_vec(&sigma);
        let expect = 4.0 * std::f64::consts::PI;
        for &p in &phi {
            assert!(
                (p - expect).abs() < 0.25,
                "surface potential {p} far from {expect}"
            );
        }
        // interiorly consistent: all vertices nearly equal by symmetry
        let mean: f64 = phi.iter().sum::<f64>() / phi.len() as f64;
        for &p in &phi {
            assert!((p - mean).abs() < 0.02 * mean);
        }
    }

    #[test]
    fn treecode_operator_matches_dense() {
        let g = sphere_geometry(2);
        let dense = DenseSingleLayer::assemble(g.clone());
        let tc = TreecodeSingleLayer::new(g, TreecodeParams::fixed(8, 0.4));
        let x: Vec<f64> = (0..dense.dim())
            .map(|i| 1.0 + 0.5 * (i as f64 * 0.01).sin())
            .collect();
        let yd = dense.apply_vec(&x);
        let yt = tc.apply_vec(&x);
        let num: f64 = yd.iter().zip(&yt).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = yd.iter().map(|a| a * a).sum();
        let rel = (num / den).sqrt();
        assert!(rel < 1e-4, "treecode operator differs from dense: {rel}");
        assert_eq!(tc.applications(), 1);
        assert!(tc.stats().targets > 0);
    }

    #[test]
    fn repeated_applications_accumulate_stats() {
        let g = sphere_geometry(1);
        let tc = TreecodeSingleLayer::new(g, TreecodeParams::fixed(4, 0.5));
        let x = vec![1.0; tc.dim()];
        let _ = tc.apply_vec(&x);
        let s1 = tc.stats().targets;
        let _ = tc.apply_vec(&x);
        assert_eq!(tc.stats().targets, 2 * s1);
        assert_eq!(tc.applications(), 2);
    }

    #[test]
    fn operator_is_linear() {
        let g = sphere_geometry(1);
        let tc = TreecodeSingleLayer::new(g, TreecodeParams::fixed(6, 0.5));
        let n = tc.dim();
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let ya = tc.apply_vec(&a);
        let yb = tc.apply_vec(&b);
        let ys = tc.apply_vec(&sum);
        for i in 0..n {
            let lin = 2.0 * ya[i] + 3.0 * yb[i];
            assert!(
                (ys[i] - lin).abs() < 1e-8 * (1.0 + lin.abs()),
                "nonlinearity at {i}"
            );
        }
    }
}
