//! Discretisation-convergence tests for the BEM substrate: mesh refinement
//! must drive the discrete operators toward their continuum values at the
//! expected rates.

use mbt_bem::{shapes, DenseSingleLayer, QuadRule, SingleLayerGeometry};
use mbt_geometry::Vec3;
use mbt_solvers::LinearOperator;

const FOUR_PI: f64 = 4.0 * std::f64::consts::PI;

/// Off-surface single-layer potential of a constant density on the unit
/// sphere: Φ(x) = 4π/R·min(R,|x|)… outside: 4π/|x| (total charge 4π).
fn exact_sphere_potential(r: f64) -> f64 {
    if r >= 1.0 {
        FOUR_PI / r
    } else {
        FOUR_PI
    }
}

fn sphere_sl_error(subdiv: u32, rule: QuadRule, point: Vec3) -> f64 {
    let g = SingleLayerGeometry::new(shapes::icosphere(subdiv, 1.0), rule);
    // evaluate the quadrature sum directly at an off-surface point: the
    // charges of the constant density, summed against 1/r
    let charges = g.charges(&vec![1.0; g.dim()]);
    let phi: f64 = charges
        .iter()
        .zip(&g.gauss_points)
        .map(|(&q, y)| q / y.distance(point))
        .sum();
    (phi - exact_sphere_potential(point.norm())).abs()
}

#[test]
fn single_layer_converges_under_refinement_outside() {
    let point = Vec3::new(1.8, 0.4, -0.2);
    let e1 = sphere_sl_error(1, QuadRule::SixPoint, point);
    let e2 = sphere_sl_error(2, QuadRule::SixPoint, point);
    let e3 = sphere_sl_error(3, QuadRule::SixPoint, point);
    assert!(e2 < e1 && e3 < e2, "no convergence: {e1} {e2} {e3}");
    // geometric (flat-panel) error is O(h²): one subdivision halves h,
    // expect roughly 4x per level; accept 2.5x to be robust
    assert!(e2 * 2.5 < e1, "rate too slow: {e1} -> {e2}");
    assert!(e3 * 2.5 < e2, "rate too slow: {e2} -> {e3}");
}

#[test]
fn single_layer_converges_inside_too() {
    // constant density on a sphere gives a constant interior potential
    let point = Vec3::new(0.2, -0.3, 0.1);
    let e2 = sphere_sl_error(2, QuadRule::SixPoint, point);
    let e3 = sphere_sl_error(3, QuadRule::SixPoint, point);
    assert!(e3 < e2);
    assert!(e3 < 0.01 * FOUR_PI);
}

#[test]
fn higher_quadrature_rules_help_on_coarse_meshes() {
    let point = Vec3::new(1.5, 0.0, 0.0);
    let e_centroid = sphere_sl_error(2, QuadRule::Centroid, point);
    let e_six = sphere_sl_error(2, QuadRule::SixPoint, point);
    // six-point integrates the smooth part much better
    assert!(
        e_six <= e_centroid * 1.05,
        "six-point ({e_six}) should not lose to centroid ({e_centroid})"
    );
}

#[test]
fn collocation_matrix_row_sums_converge_to_surface_potential() {
    // row sum of the dense single-layer matrix = discrete (Sσ≡1)(xᵢ);
    // on the unit sphere the exact on-surface value is 4π
    for (subdiv, tol) in [(1u32, 0.8), (2, 0.4)] {
        let g = SingleLayerGeometry::new(shapes::icosphere(subdiv, 1.0), QuadRule::SixPoint);
        let dense = DenseSingleLayer::assemble(g.clone());
        let v = dense.apply_vec(&vec![1.0; g.dim()]);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (mean - FOUR_PI).abs() < tol,
            "subdiv {subdiv}: mean on-surface potential {mean} vs {FOUR_PI}"
        );
    }
}

#[test]
fn mesh_refinement_scales_counts_linearly() {
    let m1 = shapes::icosphere(2, 1.0);
    let m2 = shapes::icosphere(3, 1.0);
    assert_eq!(m2.num_elements(), 4 * m1.num_elements());
    let g1 = SingleLayerGeometry::new(m1, QuadRule::ThreePoint);
    let g2 = SingleLayerGeometry::new(m2, QuadRule::ThreePoint);
    assert_eq!(g2.num_gauss(), 4 * g1.num_gauss());
}
