//! BEM matvec benchmark: dense (exact `O(n²)`) vs treecode-accelerated
//! single-layer application — the per-iteration cost inside GMRES that the
//! paper's Table 3 times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbt_bem::{shapes, DenseSingleLayer, QuadRule, SingleLayerGeometry, TreecodeSingleLayer};
use mbt_solvers::LinearOperator;
use mbt_treecode::TreecodeParams;
use std::hint::black_box;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bem_matvec");
    group.sample_size(10);

    for &subdiv in &[2u32, 3] {
        let geometry = SingleLayerGeometry::new(shapes::icosphere(subdiv, 1.0), QuadRule::SixPoint);
        let n = geometry.dim();
        let x: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.3 * (i as f64 * 0.02).sin())
            .collect();

        let tcode = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(4, 0.5));
        group.bench_with_input(BenchmarkId::new("treecode_p4", n), &n, |b, _| {
            b.iter(|| black_box(&tcode).apply_vec(black_box(&x)));
        });
        let adaptive = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::adaptive(4, 0.5));
        group.bench_with_input(BenchmarkId::new("treecode_adaptive", n), &n, |b, _| {
            b.iter(|| black_box(&adaptive).apply_vec(black_box(&x)));
        });
        if subdiv <= 2 {
            // dense assembly is quadratic; bench only the small mesh
            let dense = DenseSingleLayer::assemble(geometry.clone());
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
                b.iter(|| black_box(&dense).apply_vec(black_box(&x)));
            });
            group.bench_with_input(BenchmarkId::new("dense_assembly", n), &n, |b, _| {
                b.iter(|| DenseSingleLayer::assemble(black_box(geometry.clone())));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
