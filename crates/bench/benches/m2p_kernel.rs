//! Head-to-head of the M2P kernel paths at the degrees the paper's tables
//! sweep: the allocating convenience wrappers (`potential_at_degree`,
//! `field_at_degree`, fresh scratch per call) against the workspace
//! kernels (`potential_at_degree_with`, `field_at_degree_with`, scratch
//! reused across calls). The two are bit-identical in output; the gap is
//! pure allocator traffic plus cache warmth, i.e. exactly what the
//! treecode's per-chunk [`Workspace`] reuse buys per accepted interaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbt_geometry::{Particle, Vec3};
use mbt_multipole::{MultipoleExpansion, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DEGREES: [usize; 4] = [2, 4, 8, 12];
/// Evaluation points per iteration: one per accepted interaction a target
/// might see, so per-call overhead is averaged over a realistic batch.
const POINTS: usize = 256;

fn cluster(n: usize) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(41);
    (0..n)
        .map(|_| {
            Particle::new(
                Vec3::new(
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                ),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect()
}

fn eval_points() -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(43);
    (0..POINTS)
        .map(|_| {
            // well outside the unit cluster, as the MAC guarantees
            let d: f64 = rng.gen_range(2.5..6.0);
            let z: f64 = rng.gen_range(-1.0..1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let s = (1.0 - z * z).sqrt();
            Vec3::new(d * s * phi.cos(), d * s * phi.sin(), d * z)
        })
        .collect()
}

fn bench_m2p(c: &mut Criterion) {
    let ps = cluster(64);
    let points = eval_points();
    let mut group = c.benchmark_group("m2p_kernel");
    group.sample_size(30);
    group.throughput(Throughput::Elements(POINTS as u64));
    for &p in &DEGREES {
        let exp = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        group.bench_with_input(BenchmarkId::new("potential_alloc", p), &p, |b, &p| {
            b.iter(|| {
                let mut acc = 0.0;
                for &pt in &points {
                    acc += exp.potential_at_degree(black_box(pt), p);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("potential_workspace", p), &p, |b, &p| {
            let mut ws = Workspace::with_capacity(p);
            let r = exp.as_ref();
            b.iter(|| {
                let mut acc = 0.0;
                for &pt in &points {
                    acc += r.potential_at_degree_with(black_box(pt), p, &mut ws);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("field_alloc", p), &p, |b, &p| {
            b.iter(|| {
                let mut acc = 0.0;
                for &pt in &points {
                    let (phi, g) = exp.field_at_degree(black_box(pt), p);
                    acc += phi + g.x;
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("field_workspace", p), &p, |b, &p| {
            let mut ws = Workspace::with_capacity(p);
            let r = exp.as_ref();
            b.iter(|| {
                let mut acc = 0.0;
                for &pt in &points {
                    let (phi, g) = r.field_at_degree_with(black_box(pt), p, &mut ws);
                    acc += phi + g.x;
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_m2p);
criterion_main!(benches);
