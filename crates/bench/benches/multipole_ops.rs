//! Micro-benchmarks of the multipole operator kernels vs expansion degree:
//! P2M, M2M, M2L, L2L, M2P (potential and field). These are the inner
//! loops whose `(p+1)²`-term scaling underlies every cost statement in the
//! paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbt_geometry::{Particle, Vec3};
use mbt_multipole::MultipoleExpansion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn cluster(n: usize) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..n)
        .map(|_| {
            Particle::new(
                Vec3::new(
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                ),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect()
}

fn bench_ops(c: &mut Criterion) {
    let ps = cluster(64);
    let mut group = c.benchmark_group("multipole_ops");
    group.sample_size(30);
    for &p in &[4usize, 8, 16] {
        let exp = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let target = Vec3::new(3.0, 2.0, -1.0);
        group.bench_with_input(BenchmarkId::new("p2m_64", p), &p, |b, &p| {
            b.iter(|| MultipoleExpansion::from_particles(Vec3::ZERO, p, black_box(&ps)));
        });
        group.bench_with_input(BenchmarkId::new("m2m", p), &p, |b, &p| {
            b.iter(|| black_box(&exp).translated(Vec3::new(0.3, 0.2, 0.1), p));
        });
        group.bench_with_input(BenchmarkId::new("m2l", p), &p, |b, &p| {
            b.iter(|| black_box(&exp).to_local(Vec3::new(4.0, 0.0, 0.0), p));
        });
        let local = exp.to_local(Vec3::new(4.0, 0.0, 0.0), p);
        group.bench_with_input(BenchmarkId::new("l2l", p), &p, |b, &p| {
            b.iter(|| black_box(&local).translated(Vec3::new(4.1, 0.05, -0.05), p));
        });
        group.bench_with_input(BenchmarkId::new("m2p_potential", p), &p, |b, _| {
            b.iter(|| black_box(&exp).potential_at(black_box(target)));
        });
        group.bench_with_input(BenchmarkId::new("m2p_field", p), &p, |b, _| {
            b.iter(|| black_box(&exp).field_at(black_box(target)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
