//! Parallel-scaling benchmark: the treecode evaluation under rayon pools
//! of different sizes and different aggregation widths `w` — the
//! Criterion-tracked version of the Table 2 harness.
//!
//! On a single-core host all pool sizes coincide (reported as-is); the
//! aggregation-width sweep is meaningful everywhere because it changes the
//! task granularity and cache behaviour even on one core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbt_bench::structured_instance;
use mbt_treecode::{Treecode, TreecodeParams};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let ps = structured_instance(20_000);
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    // thread-count sweep at the paper's w = 64
    let tc = Treecode::new(&ps, TreecodeParams::fixed(5, 0.7).with_eval_chunk(64)).unwrap();
    let mut t = 1usize;
    while t <= ncpu.max(2) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| pool.install(|| black_box(&tc).potentials()));
        });
        t *= 2;
    }

    // aggregation-width sweep on the default pool
    for &w in &[1usize, 16, 64, 256, 2048] {
        let tc = Treecode::new(&ps, TreecodeParams::fixed(5, 0.7).with_eval_chunk(w)).unwrap();
        group.bench_with_input(BenchmarkId::new("agg_width", w), &w, |b, _| {
            b.iter(|| black_box(&tc).potentials());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
