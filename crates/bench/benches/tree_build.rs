//! Benchmarks of the decomposition substrate: space-filling-curve key
//! generation, the proximity sort, and octree construction vs `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbt_bench::structured_instance;
use mbt_geometry::sort::{order_particles, CurveOrder};
use mbt_tree::{Octree, OctreeParams};
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(10);
    for &n in &[10_000usize, 40_000, 160_000] {
        let ps = structured_instance(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("octree", n), &n, |b, _| {
            b.iter(|| Octree::build(black_box(&ps), OctreeParams { leaf_capacity: 32 }).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("hilbert_sort", n), &n, |b, _| {
            b.iter(|| order_particles(black_box(&ps), CurveOrder::Hilbert));
        });
        group.bench_with_input(BenchmarkId::new("morton_sort", n), &n, |b, _| {
            b.iter(|| order_particles(black_box(&ps), CurveOrder::Morton));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_build);
criterion_main!(benches);
