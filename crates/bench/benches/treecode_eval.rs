//! The headline benchmark: one potential-evaluation sweep of the original
//! (fixed-degree) vs improved (adaptive-degree) treecode vs exact direct
//! summation, plus the FMM on the same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbt_bench::structured_instance;
use mbt_fmm::{Fmm, FmmParams};
use mbt_treecode::{direct::direct_potentials, Treecode, TreecodeParams};
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("treecode_eval");
    group.sample_size(10);

    // direct is O(n²) — bench only at the small size for the crossover view
    let small = structured_instance(4_000);
    group.throughput(Throughput::Elements(4_000));
    group.bench_function(BenchmarkId::new("direct", 4_000), |b| {
        b.iter(|| direct_potentials(black_box(&small)));
    });

    for &n in &[4_000usize, 16_000] {
        let ps = structured_instance(n);
        group.throughput(Throughput::Elements(n as u64));
        let orig = Treecode::new(&ps, TreecodeParams::fixed(4, 0.7)).unwrap();
        group.bench_with_input(BenchmarkId::new("bh_original_p4", n), &n, |b, _| {
            b.iter(|| black_box(&orig).potentials());
        });
        let improved = Treecode::new(&ps, TreecodeParams::adaptive(4, 0.7)).unwrap();
        group.bench_with_input(BenchmarkId::new("bh_improved_p4", n), &n, |b, _| {
            b.iter(|| black_box(&improved).potentials());
        });
        group.bench_with_input(BenchmarkId::new("bh_dual_p4", n), &n, |b, _| {
            b.iter(|| black_box(&orig).potentials_dual());
        });
        let fmm = Fmm::new(&ps, FmmParams::fixed(4)).unwrap();
        group.bench_with_input(BenchmarkId::new("fmm_p4_eval", n), &n, |b, _| {
            b.iter(|| black_box(&fmm).potentials());
        });
        group.bench_with_input(BenchmarkId::new("bh_build_original", n), &n, |b, _| {
            b.iter(|| Treecode::new(black_box(&ps), TreecodeParams::fixed(4, 0.7)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bh_build_improved", n), &n, |b, _| {
            b.iter(|| Treecode::new(black_box(&ps), TreecodeParams::adaptive(4, 0.7)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
