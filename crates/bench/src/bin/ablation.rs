//! **Ablations** — the design-choice sweeps DESIGN.md calls out, checking
//! Theorem 4's cost claim and the sensitivity of the improved method to
//! its knobs:
//!
//! * α sweep — accuracy/cost trade of the MAC for both methods,
//! * threshold-multiplier sweep — the cost/accuracy dial of the adaptive
//!   rule (Terms(new)/Terms(orig) vs error gain),
//! * weighting ablation — `Charge` (the paper's literal Theorem 3) vs
//!   `ChargeOverDistance` (the full Theorem-2 bound),
//! * leaf-capacity sweep — the paper's cache note (leaves of 32–64).
//!
//! Run: `cargo run --release -p mbt-bench --bin ablation`

use mbt_bench::{structured_instance, timed};
use mbt_multipole::{DegreeSelector, DegreeWeighting};
use mbt_treecode::{sampled_relative_error, RefWeight, Treecode, TreecodeParams};

const N: usize = 32_000;

fn measure(params: TreecodeParams) -> (f64, u64, f64) {
    let ps = structured_instance(N);
    let tc = Treecode::new(&ps, params).expect("valid");
    let (r, secs) = timed(|| tc.potentials());
    let e = sampled_relative_error(&ps, &r.values, 300, 1);
    (e.relative_l2, r.stats.terms, secs)
}

fn main() {
    println!("Ablations on the structured n = {N} instance\n");

    println!("--- α sweep (p = p_min = 4, threshold = 8× median leaf)");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>14}",
        "α", "err(orig)", "terms(orig)", "err(new)", "terms(new)"
    );
    for alpha in [0.3, 0.5, 0.7, 0.9] {
        let (eo, to, _) = measure(TreecodeParams::fixed(4, alpha));
        let probe =
            Treecode::new(&structured_instance(N), TreecodeParams::adaptive(4, alpha)).unwrap();
        let (en, tn, _) = measure(
            TreecodeParams::adaptive(4, alpha)
                .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0)),
        );
        println!("{alpha:>6} {eo:>12.3e} {to:>14} {en:>12.3e} {tn:>14}");
    }

    println!("\n--- threshold-multiplier sweep (α = 0.7, p_min = 4)");
    println!(
        "{:>6} {:>12} {:>9} {:>9}",
        "mult", "err(new)", "gain", "t-ratio"
    );
    let (e_orig, t_orig, _) = measure(TreecodeParams::fixed(4, 0.7));
    let probe = Treecode::new(&structured_instance(N), TreecodeParams::adaptive(4, 0.7)).unwrap();
    let med = probe.ref_weight();
    for mult in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
        let (e, t, _) = measure(
            TreecodeParams::adaptive(4, 0.7).with_ref_weight(RefWeight::Explicit(med * mult)),
        );
        println!(
            "{mult:>6} {e:>12.3e} {:>8.1}x {:>9.2}",
            e_orig / e,
            t as f64 / t_orig as f64
        );
    }

    println!("\n--- weighting ablation (α = 0.7, p_min = 4, threshold 8×)");
    println!(
        "{:>22} {:>12} {:>14} {:>6}",
        "weighting", "err(new)", "terms(new)", "p_max"
    );
    for (name, weighting) in [
        ("Charge (Thm 3)", DegreeWeighting::Charge),
        ("Charge/Distance", DegreeWeighting::ChargeOverDistance),
    ] {
        let degree = DegreeSelector::Adaptive {
            p_min: 4,
            p_max: mbt_multipole::MAX_DEGREE,
            alpha: 0.7,
            weighting,
        };
        let mut params = TreecodeParams::adaptive(4, 0.7);
        params.degree = degree;
        let probe = Treecode::new(&structured_instance(N), params).unwrap();
        params = params.with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0));
        let ps = structured_instance(N);
        let tc = Treecode::new(&ps, params).unwrap();
        let r = tc.potentials();
        let e = sampled_relative_error(&ps, &r.values, 300, 1);
        println!(
            "{name:>22} {:>12.3e} {:>14} {:>6}",
            e.relative_l2,
            r.stats.terms,
            r.stats.max_degree_used()
        );
    }

    println!("\n--- leaf-capacity sweep (α = 0.7, adaptive p_min = 4, threshold 8×)");
    println!(
        "{:>6} {:>12} {:>14} {:>10}",
        "leaf", "err", "terms", "time (s)"
    );
    for leaf in [1usize, 8, 32, 64, 128] {
        let probe = Treecode::new(
            &structured_instance(N),
            TreecodeParams::adaptive(4, 0.7).with_leaf_capacity(leaf),
        )
        .unwrap();
        let (e, t, secs) = measure(
            TreecodeParams::adaptive(4, 0.7)
                .with_leaf_capacity(leaf)
                .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0)),
        );
        println!("{leaf:>6} {e:>12.3e} {t:>14} {secs:>10.3}");
    }

    println!("\n--- Theorem 4 check: Terms(new)/Terms(orig) stays within a small constant");
    println!("{:>9} {:>9}", "n", "t-ratio");
    for n in [8_000usize, 16_000, 32_000, 64_000] {
        let ps = mbt_bench::structured_instance(n);
        let orig = Treecode::new(&ps, TreecodeParams::fixed(4, 0.7)).unwrap();
        let probe = Treecode::new(&ps, TreecodeParams::adaptive(4, 0.7)).unwrap();
        let new = Treecode::new(
            &ps,
            TreecodeParams::adaptive(4, 0.7)
                .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0)),
        )
        .unwrap();
        let to = orig.potentials().stats.terms;
        let tn = new.potentials().stats.terms;
        let ratio = tn as f64 / to as f64;
        println!("{n:>9} {ratio:>9.2}");
        assert!(ratio < 7.0 / 3.0, "Theorem 4 bound exceeded: {ratio}");
    }
    println!("(all ratios below the paper's 7/3 constant)");
}
