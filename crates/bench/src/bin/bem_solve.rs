//! **§Solving Boundary Integral Equations** — the paper's end-to-end claim:
//! "The matrix-vector product was used in a GMRES solver with a restart of
//! 10 and was observed to converge very well. Using this method, we were
//! able to solve dense systems with over 100,000 unknowns within a few
//! minutes."
//!
//! This harness runs the full GMRES(10) capacitance solve on the synthetic
//! meshes with the treecode matvec and reports convergence histories and
//! wall times (unknown counts scaled to the host; the dense system these
//! sizes represent would have `n²` entries).
//!
//! Run: `cargo run --release -p mbt-bench --bin bem_solve [scale]`

use mbt_bem::{shapes, CapacitanceProblem, QuadRule, SingleLayerGeometry, TreecodeSingleLayer};
use mbt_bench::timed;
use mbt_solvers::GmresOptions;
use mbt_treecode::TreecodeParams;

fn run(name: &str, mesh: mbt_bem::TriMesh, expect: Option<f64>) {
    let geometry = SingleLayerGeometry::new(mesh, QuadRule::SixPoint);
    let n = geometry.dim();
    println!(
        "\n=== {name}: {} unknowns ({} elements; dense system would hold {:.1}M entries)",
        n,
        geometry.mesh.num_elements(),
        (n * n) as f64 / 1e6
    );
    let operator = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::adaptive(4, 0.5));
    let problem = CapacitanceProblem::new(&operator, &geometry);
    let (sol, secs) = timed(|| {
        problem.solve(&GmresOptions {
            restart: 10,
            tol: 1e-6,
            max_iters: 120,
            preconditioner: None,
        })
    });
    println!(
        "GMRES(10): {:?} after {} matvecs in {:.1}s — final residual {:.2e}",
        sol.gmres.outcome, sol.gmres.iterations, secs, sol.gmres.relative_residual
    );
    print!("residual history (per iteration):");
    for (i, r) in sol.gmres.history.iter().enumerate() {
        if i % 10 == 0 {
            print!("\n  ");
        }
        print!("{r:.1e} ");
    }
    println!("\ncapacitance C = {:.4}", sol.capacitance);
    if let Some(c) = expect {
        println!(
            "analytic C = {c} (error {:.2}%)",
            (sol.capacitance - c).abs() / c * 100.0
        );
    }
}

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    println!("BEM + GMRES(10) end-to-end solves (treecode matvec)");
    if scale.as_str() == "small" {
        run("unit sphere", shapes::icosphere(2, 1.0), Some(1.0));
        run("gripper", shapes::gripper(8), None);
    } else {
        run("unit sphere", shapes::icosphere(3, 1.0), Some(1.0));
        run("gripper", shapes::gripper(16), None);
        run("propeller", shapes::propeller(4, 32, 3), None);
    }
}
