//! Engine serving benchmarks: cold build, cached-query latency, batch
//! throughput.
//!
//! Measures the three numbers that justify the engine layer's existence —
//! how expensive a plan is to build (what the cache amortises), how cheap
//! a cache-hit query is (what tenants actually pay), and how much
//! coalescing concurrent callers into shared sweeps buys — and writes them
//! to `BENCH_engine.json` as a flat, diffable document so the perf
//! trajectory of this path is machine-readable across commits.
//!
//! Run with: `cargo run --release -p mbt-bench --bin engine_bench`
//!
//! The run also benchmarks the sharded serving path for `k ∈ {1, 2, 4, 8}`
//! shards (cold build via `warm`, hot-query p50/p95/p99) and records the
//! thread count so single-core containers report their parallel build
//! numbers honestly. `-- --shards 2,4` restricts the shard counts.
//!
//! CI runs `-- --smoke`: a small workload whose only job is to assert
//! that the Prometheus and JSON exports parse and carry the latency
//! distribution fields; no JSON rewrite.

use std::time::{Duration, Instant};

use mbt_bench::timed;
use mbt_engine::{
    Accuracy, Engine, EngineConfig, EngineStats, QueryKind, QueryRequest, TenantConfig, TenantId,
};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::Vec3;

const N_PARTICLES: usize = 40_000;
const N_POINTS: usize = 2_000;
const HOT_REPS: usize = 20;
const BATCH_THREADS: usize = 8;
const BATCH_ROUNDS: usize = 6;

fn observation_points(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Vec3::new(1.5 * t.sin(), 1.5 * (1.3 * t).cos(), 0.8 * (0.7 * t).sin())
        })
        .collect()
}

/// Milliseconds, rounded to microsecond precision for stable JSON.
fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

/// Exports must parse under the zero-dep validators and carry the
/// latency-distribution fields the dashboards scrape.
fn check_exports(stats: &EngineStats) {
    let prom = stats.to_prometheus();
    assert!(
        mbt_obs::prometheus_is_valid(&prom),
        "Prometheus export failed to parse:\n{prom}"
    );
    for series in [
        "mbt_query_latency_seconds_bucket",
        "mbt_query_latency_seconds_count",
        "mbt_query_latency_p50_seconds",
        "mbt_query_latency_p95_seconds",
        "mbt_query_latency_p99_seconds",
        "mbt_eval_latency_p99_seconds",
        "mbt_build_latency_p99_seconds",
    ] {
        assert!(prom.contains(series), "Prometheus export lacks {series}");
    }
    let json = stats.to_json();
    assert!(
        mbt_obs::json_is_valid(&json),
        "JSON export failed to parse:\n{json}"
    );
    for field in [
        "\"latency\"",
        "\"p50_ms\"",
        "\"p95_ms\"",
        "\"p99_ms\"",
        "\"histograms\"",
    ] {
        assert!(json.contains(field), "JSON export lacks {field}");
    }
}

fn smoke() {
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
    let particles = uniform_cube(2_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
    let dataset = engine
        .register("smoke", particles)
        .expect("dataset registers");
    let points = observation_points(200);
    for _ in 0..3 {
        engine
            .query(QueryRequest::potentials(
                dataset,
                Accuracy::Adaptive { p_min: 4 },
                points.clone(),
            ))
            .expect("smoke query succeeds");
    }
    let stats = engine.stats();
    assert!(stats.query_latency.count >= 3);
    assert!(stats.query_latency.p50_ms <= stats.query_latency.p99_ms);
    check_exports(&stats);

    // sharded serving smoke: fan-out answers must agree with the
    // unsharded plan on the same particles, and the sharded counters
    // must land in the exports
    let sharded = engine
        .register_sharded(
            "smoke-sharded",
            uniform_cube(2_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42),
            4,
        )
        .expect("sharded dataset registers");
    let plain = engine
        .query(QueryRequest::potentials(
            dataset,
            Accuracy::Fixed(8),
            points.clone(),
        ))
        .expect("unsharded reference query succeeds");
    let fanned = engine
        .query(QueryRequest::potentials(
            sharded,
            Accuracy::Fixed(8),
            points,
        ))
        .expect("sharded smoke query succeeds");
    let pv = plain.output.potentials().expect("potential query");
    for (a, b) in fanned
        .output
        .potentials()
        .expect("potential query")
        .iter()
        .zip(pv)
    {
        assert!(
            (a - b).abs() <= 1e-3 * b.abs().max(1.0),
            "sharded smoke diverged: {a} vs {b}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.sharded_queries, 1, "fan-out path did not run");
    let prom = stats.to_prometheus();
    assert!(prom.contains("mbt_sharded_queries_total 1"));
    assert!(stats.to_json().contains("\"sharding\""));

    // multi-tenancy smoke: a registered tenant's traffic must land in
    // the per-tenant breakdown and both exports
    let vip = TenantId(3);
    engine.register_tenant(vip, TenantConfig::weighted(4));
    engine
        .query(
            QueryRequest::potentials(dataset, Accuracy::Fixed(8), observation_points(50))
                .with_tenant(vip),
        )
        .expect("tenant smoke query succeeds");
    let stats = engine.stats();
    let row = stats
        .per_tenant
        .iter()
        .find(|t| t.tenant == vip.0)
        .expect("tenant appears in the breakdown");
    assert_eq!(row.weight, 4);
    assert_eq!(row.admitted, 1);
    assert!(
        row.charged_eval_ms > 0.0,
        "the tenant's sweep was never billed"
    );
    let prom = stats.to_prometheus();
    assert!(prom.contains("mbt_tenant_admitted_total{tenant=\"3\"} 1"));
    assert!(prom.contains("mbt_shed_quota_total 0"));
    assert!(prom.contains("mbt_worker_panics_total 0"));
    assert!(stats.to_json().contains("\"tenants\""));

    println!(
        "smoke ok: {} queries ({} sharded), query p50 {:.2} ms / p99 {:.2} ms, exports parse",
        stats.query_latency.count,
        stats.sharded_queries,
        stats.query_latency.p50_ms,
        stats.query_latency.p99_ms,
    );
}

/// The tenant-isolation phase's measurements.
struct TenantReport {
    baseline_p50_ms: f64,
    baseline_p99_ms: f64,
    light_p50_ms: f64,
    light_p99_ms: f64,
    hog_p99_ms: f64,
    light_over_baseline_p99: f64,
    hog_queries: usize,
    light_queries: usize,
}

const N_TENANT_PARTICLES: usize = 8_000;
const N_TENANT_LIGHT_POINTS: usize = 400;
/// Hog queries are deliberately small: the gate is non-preemptive, so a
/// light arrival always eats one in-service hog *residual* — the bound
/// the WFQ can actually promise is `residual + own service`, and small
/// hog quanta are what keep that bound tight (the hog saturates by
/// *rate*, not by per-query size).
const N_TENANT_HOG_POINTS: usize = 8;
const TENANT_LIGHTS: usize = 4;
const TENANT_LIGHT_REPS: usize = 120;
const TENANT_HOG_THREADS: usize = 4;
/// Base think time between a light tenant's queries — lights are
/// *light*: an occasional-query workload whose own offered load stays
/// well under the gate's capacity, not a second saturating stream. Each
/// light adds its index in milliseconds so the fleet's periods differ:
/// identical periods phase-lock the lights into repeated pileups, which
/// makes the measured tails schedule-dependent noise.
const TENANT_LIGHT_THINK: Duration = Duration::from_millis(10);

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// The adversarial isolation workload (ISSUE 10's acceptance bar): one
/// hog tenant floods a width-1 admission gate from several threads while
/// a fleet of weighted light tenants keeps issuing its usual workload.
/// The baseline is the same light fleet running hog-free (including its
/// own mild self-contention), so the pinned ratio isolates exactly what
/// the hog adds. Under the WFQ gate a light query waits at most ~one
/// in-service hog residual before its weight wins the next slot, so its
/// p99 stays within 2x of the hog-free run — the old barging gate let
/// the hog's arrival stream starve the queue indefinitely instead.
///
/// The gate is width 1 because the container is single-core: wider gates
/// time-share the CPU between sweeps, inflating every service time and
/// measuring the scheduler's noise, not the gate's fairness. The hog
/// runs at a *different* accuracy (its own plan), so cross-caller
/// coalescing cannot quietly serve light queries inside hog sweeps and
/// flatter the isolation numbers.
fn tenants_phase() -> TenantReport {
    use std::sync::atomic::{AtomicBool, Ordering};

    let engine = Engine::new(EngineConfig {
        max_in_flight: 1,
        ..EngineConfig::default()
    })
    .expect("config is valid");
    let particles = uniform_cube(
        N_TENANT_PARTICLES,
        1.0,
        ChargeModel::RandomSign { magnitude: 1.0 },
        53,
    );
    let dataset = engine
        .register("tenants", particles)
        .expect("tenant dataset registers");
    let light_accuracy = Accuracy::Adaptive { p_min: 4 };
    let hog_accuracy = Accuracy::Fixed(6);
    engine
        .warm(dataset, light_accuracy)
        .expect("light plan warms");
    engine.warm(dataset, hog_accuracy).expect("hog plan warms");

    let hog = TenantId(1);
    engine.register_tenant(hog, TenantConfig::weighted(1));
    let lights: Vec<TenantId> = (0..TENANT_LIGHTS)
        .map(|i| TenantId(10 + u32::try_from(i).expect("few lights")))
        .collect();
    for &t in &lights {
        engine.register_tenant(t, TenantConfig::weighted(8));
    }
    let light_points = observation_points(N_TENANT_LIGHT_POINTS);
    let hog_points = observation_points(N_TENANT_HOG_POINTS);

    // the light fleet: every light tenant issues its reps concurrently
    // (with think time), exactly as in the adversarial run
    let run_lights = || {
        let mut lat: Vec<Duration> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = lights
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let engine = &engine;
                    let pts = light_points.clone();
                    let think = TENANT_LIGHT_THINK + Duration::from_millis(i as u64);
                    s.spawn(move || {
                        let mut lat = Vec::with_capacity(TENANT_LIGHT_REPS);
                        for _ in 0..TENANT_LIGHT_REPS {
                            let t0 = Instant::now();
                            engine
                                .query(
                                    QueryRequest::potentials(dataset, light_accuracy, pts.clone())
                                        .with_tenant(t),
                                )
                                .expect("light query succeeds");
                            lat.push(t0.elapsed());
                            std::thread::sleep(think);
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                lat.extend(h.join().expect("light tenant thread"));
            }
        });
        lat.sort();
        lat
    };

    // hog-free baseline: the light fleet with the gate to itself
    let baseline = run_lights();

    // adversarial run: hog threads flood until the lights finish
    let stop = AtomicBool::new(false);
    let mut light_lat: Vec<Duration> = Vec::new();
    let mut hog_lat: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let hog_handles: Vec<_> = (0..TENANT_HOG_THREADS)
            .map(|_| {
                let engine = &engine;
                let stop = &stop;
                let pts = hog_points.clone();
                s.spawn(move || {
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        engine
                            .query(
                                QueryRequest::potentials(dataset, hog_accuracy, pts.clone())
                                    .with_tenant(hog),
                            )
                            .expect("hog query succeeds");
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        light_lat = run_lights();
        stop.store(true, Ordering::Relaxed);
        for h in hog_handles {
            hog_lat.extend(h.join().expect("hog tenant thread"));
        }
    });
    hog_lat.sort();

    let baseline_p99 = percentile(&baseline, 99);
    let light_p99 = percentile(&light_lat, 99);
    let report = TenantReport {
        baseline_p50_ms: ms(percentile(&baseline, 50)),
        baseline_p99_ms: ms(baseline_p99),
        light_p50_ms: ms(percentile(&light_lat, 50)),
        light_p99_ms: ms(light_p99),
        hog_p99_ms: ms(percentile(&hog_lat, 99)),
        light_over_baseline_p99: light_p99.as_secs_f64() / baseline_p99.as_secs_f64().max(1e-9),
        hog_queries: hog_lat.len(),
        light_queries: light_lat.len(),
    };
    let stats = engine.stats();
    println!(
        "tenants: hog-free p50 {:.2} / p99 {:.2} ms; under {} hog queries: \
         light p50 {:.2} / p99 {:.2} ms ({:.2}x hog-free p99), hog p99 {:.2} ms, \
         queue peak {}",
        report.baseline_p50_ms,
        report.baseline_p99_ms,
        report.hog_queries,
        report.light_p50_ms,
        report.light_p99_ms,
        report.light_over_baseline_p99,
        report.hog_p99_ms,
        stats.queue_peak,
    );
    assert!(
        stats.queue_peak >= 1,
        "the hog never saturated the gate — the isolation numbers are vacuous"
    );
    let hog_row = stats
        .per_tenant
        .iter()
        .find(|t| t.tenant == hog.0)
        .expect("hog appears in the per-tenant breakdown");
    assert!(hog_row.admitted >= report.hog_queries as u64);
    report
}

fn tenants_json(r: &TenantReport) -> String {
    format!(
        "  \"tenants\": {{\"lights\": {TENANT_LIGHTS}, \"hog_threads\": {TENANT_HOG_THREADS}, \
         \"baseline_p50_ms\": {:.3}, \"baseline_p99_ms\": {:.3}, \
         \"light_p50_ms\": {:.3}, \"light_p99_ms\": {:.3}, \"hog_p99_ms\": {:.3}, \
         \"light_over_baseline_p99\": {:.3}, \"hog_queries\": {}, \"light_queries\": {}}},\n",
        r.baseline_p50_ms,
        r.baseline_p99_ms,
        r.light_p50_ms,
        r.light_p99_ms,
        r.hog_p99_ms,
        r.light_over_baseline_p99,
        r.hog_queries,
        r.light_queries,
    )
}

/// `--tenants` — CI's isolation gate: the adversarial phase with the
/// acceptance bar asserted instead of merely recorded. No JSON rewrite.
fn tenants_smoke() {
    let report = tenants_phase();
    assert!(
        report.light_over_baseline_p99 <= 2.0,
        "light-tenant p99 degraded {:.2}x over its hog-free run under a hog \
         (hog-free {:.2} ms, contended {:.2} ms) — the gate is not isolating",
        report.light_over_baseline_p99,
        report.baseline_p99_ms,
        report.light_p99_ms,
    );
    assert!(
        report.hog_queries > report.light_queries,
        "the hog ({} queries) never out-ran the lights ({}) — not a saturating stream",
        report.hog_queries,
        report.light_queries,
    );
    println!(
        "tenants smoke ok: light p99 {:.2}x hog-free under a {}-query hog",
        report.light_over_baseline_p99, report.hog_queries
    );
}

/// One shard count's measurements in the sharded phase.
struct ShardRow {
    shards: usize,
    cold_build_ms: f64,
    shard_build_max_ms: f64,
    hot_p50_ms: f64,
    hot_p95_ms: f64,
    hot_p99_ms: f64,
    global_shortcuts: u64,
    skeleton_evals: u64,
    shard_opens: u64,
}

const N_SHARD_PARTICLES: usize = 30_000;
const N_SHARD_POINTS: usize = 1_000;
const SHARD_HOT_REPS: usize = 15;

/// Cold-build (all shard plans, concurrently) and hot-query latency for
/// each shard count. Each count gets a fresh engine so cold really means
/// cold.
fn sharded_phase(counts: &[usize]) -> Vec<ShardRow> {
    let particles = uniform_cube(
        N_SHARD_PARTICLES,
        1.0,
        ChargeModel::RandomSign { magnitude: 1.0 },
        47,
    );
    let points = observation_points(N_SHARD_POINTS);
    let accuracy = Accuracy::Adaptive { p_min: 4 };
    let mut rows = Vec::with_capacity(counts.len());
    for &k in counts {
        let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
        let id = engine
            .register_sharded(&format!("shard-{k}"), particles.clone(), k)
            .expect("sharded dataset registers");
        let (report, cold_wall) =
            timed(|| engine.warm(id, accuracy).expect("sharded warm succeeds"));
        let shard_build_max = report
            .shards
            .iter()
            .map(|w| w.build_time)
            .max()
            .unwrap_or(Duration::ZERO);
        let mut hot = Vec::with_capacity(SHARD_HOT_REPS);
        for _ in 0..SHARD_HOT_REPS {
            let t0 = Instant::now();
            engine
                .query(QueryRequest::potentials(id, accuracy, points.clone()))
                .expect("sharded hot query succeeds");
            hot.push(t0.elapsed());
        }
        hot.sort();
        let q = |p: usize| hot[(hot.len() * p / 100).min(hot.len() - 1)];
        let stats = engine.stats();
        println!(
            "sharded k={k}: cold build {:.1} ms (slowest shard {:.1} ms), \
             hot p50 {:.2} / p95 {:.2} / p99 {:.2} ms, \
             routing {} shortcut / {} skeleton / {} open",
            cold_wall * 1e3,
            ms(shard_build_max),
            ms(q(50)),
            ms(q(95)),
            ms(q(99)),
            stats.global_shortcuts,
            stats.skeleton_evals,
            stats.shard_opens,
        );
        rows.push(ShardRow {
            shards: k,
            cold_build_ms: cold_wall * 1e3,
            shard_build_max_ms: ms(shard_build_max),
            hot_p50_ms: ms(q(50)),
            hot_p95_ms: ms(q(95)),
            hot_p99_ms: ms(q(99)),
            global_shortcuts: stats.global_shortcuts,
            skeleton_evals: stats.skeleton_evals,
            shard_opens: stats.shard_opens,
        });
    }
    rows
}

/// Per-backend measurements of the routed query shapes.
struct BackendsReport {
    n_sources: usize,
    degree: usize,
    fmm_plan_build_ms: f64,
    fmm_plan_bytes: usize,
    fmm_matvec_ms: f64,
    treecode_plan_build_ms: f64,
    treecode_plan_bytes: usize,
    treecode_matvec_ms: f64,
    speedup: f64,
    few_targets_ms: f64,
    direct_ms: f64,
    routed_direct: u64,
    routed_treecode: u64,
    routed_fmm: u64,
    fmm_backend: &'static str,
    pinned_backend: &'static str,
    few_backend: &'static str,
    tiny_backend: &'static str,
}

const N_BACKEND_PARTICLES: usize = 100_000;
const BACKEND_DEGREE: usize = 4;
const BACKEND_HOT_REPS: usize = 5;

/// The routing table, measured: the all-targets/matvec shape on the
/// compiled FMM vs the treecode pinned at the very same resolved
/// parameters, the few-targets shape, and the tiny-dataset direct
/// bypass — one engine, so the routed_* counters tell the whole story.
fn backends_phase(n: usize, hot_reps: usize) -> BackendsReport {
    let cfg = EngineConfig::default();
    let engine = Engine::new(cfg).expect("default config is valid");
    let particles = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 71);
    let q_max = particles.iter().map(|p| p.charge.abs()).fold(0.0, f64::max);
    let targets: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
    let dataset = engine
        .register("backends", particles)
        .expect("benchmark dataset registers");
    let accuracy = Accuracy::Fixed(BACKEND_DEGREE);
    let median = |mut v: Vec<Duration>| {
        v.sort();
        v[v.len() / 2]
    };

    // all-targets / matvec shape — routed to the compiled FMM
    let build_before = engine.stats().build_seconds;
    let (cold, _) = timed(|| {
        engine
            .query(QueryRequest::potentials(dataset, accuracy, targets.clone()))
            .expect("matvec-shape query succeeds")
    });
    let fmm_plan_build_ms = (engine.stats().build_seconds - build_before) * 1e3;
    let fmm_backend = cold.backend;
    let fmm_plan_bytes = cold.plan_bytes;
    let fmm_hot = median(
        (0..hot_reps)
            .map(|_| {
                let t0 = Instant::now();
                engine
                    .query(QueryRequest::potentials(dataset, accuracy, targets.clone()))
                    .expect("hot matvec-shape query succeeds");
                t0.elapsed()
            })
            .collect(),
    );

    // the same shape pinned to the treecode via explicit params — the
    // PR-6 serving path this phase exists to beat
    let pinned = Accuracy::Params(accuracy.resolve_with_profile(
        cfg.alpha,
        cfg.leaf_capacity,
        cfg.eval_chunk,
        n,
        q_max,
    ));
    let build_before = engine.stats().build_seconds;
    let (cold_tc, _) = timed(|| {
        engine
            .query(QueryRequest::potentials(dataset, pinned, targets.clone()))
            .expect("pinned matvec-shape query succeeds")
    });
    let treecode_plan_build_ms = (engine.stats().build_seconds - build_before) * 1e3;
    let pinned_backend = cold_tc.backend;
    let treecode_plan_bytes = cold_tc.plan_bytes;
    let tc_hot = median(
        (0..hot_reps)
            .map(|_| {
                let t0 = Instant::now();
                engine
                    .query(QueryRequest::potentials(dataset, pinned, targets.clone()))
                    .expect("hot pinned query succeeds");
                t0.elapsed()
            })
            .collect(),
    );

    // few-targets shape stays on the treecode (its plan is already hot)
    let few_points = observation_points(64);
    let mut few_backend = mbt_engine::Backend::Treecode;
    let few = median(
        (0..hot_reps)
            .map(|_| {
                let t0 = Instant::now();
                let r = engine
                    .query(QueryRequest::potentials(
                        dataset,
                        accuracy,
                        few_points.clone(),
                    ))
                    .expect("few-targets query succeeds");
                few_backend = r.backend;
                t0.elapsed()
            })
            .collect(),
    );

    // tiny datasets bypass planning entirely
    let tiny = engine
        .register(
            "backends-tiny",
            uniform_cube(400, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 73),
        )
        .expect("tiny dataset registers");
    let mut tiny_backend = mbt_engine::Backend::Treecode;
    let direct = median(
        (0..hot_reps)
            .map(|_| {
                let t0 = Instant::now();
                let r = engine
                    .query(QueryRequest::potentials(tiny, accuracy, few_points.clone()))
                    .expect("tiny query succeeds");
                tiny_backend = r.backend;
                t0.elapsed()
            })
            .collect(),
    );

    let stats = engine.stats();
    let speedup = tc_hot.as_secs_f64() / fmm_hot.as_secs_f64();
    println!(
        "backends (n = {n}, p = {BACKEND_DEGREE}): matvec shape {} {:.1} ms \
         (plan {fmm_plan_build_ms:.1} ms) vs {} {:.1} ms \
         (plan {treecode_plan_build_ms:.1} ms) -> {speedup:.2}x; \
         few-targets {} {:.2} ms, tiny {} {:.2} ms; \
         routed {} direct / {} treecode / {} fmm",
        fmm_backend.as_str(),
        ms(fmm_hot),
        pinned_backend.as_str(),
        ms(tc_hot),
        few_backend.as_str(),
        ms(few),
        tiny_backend.as_str(),
        ms(direct),
        stats.routed_direct,
        stats.routed_treecode,
        stats.routed_fmm,
    );
    BackendsReport {
        n_sources: n,
        degree: BACKEND_DEGREE,
        fmm_plan_build_ms,
        fmm_plan_bytes,
        fmm_matvec_ms: ms(fmm_hot),
        treecode_plan_build_ms,
        treecode_plan_bytes,
        treecode_matvec_ms: ms(tc_hot),
        speedup,
        few_targets_ms: ms(few),
        direct_ms: ms(direct),
        routed_direct: stats.routed_direct,
        routed_treecode: stats.routed_treecode,
        routed_fmm: stats.routed_fmm,
        fmm_backend: fmm_backend.as_str(),
        pinned_backend: pinned_backend.as_str(),
        few_backend: few_backend.as_str(),
        tiny_backend: tiny_backend.as_str(),
    }
}

fn backends_json(r: &BackendsReport) -> String {
    format!(
        "  \"backends\": {{\"n_sources\": {}, \"degree\": {}, \
         \"fmm_plan_build_ms\": {:.3}, \"fmm_plan_bytes\": {}, \"fmm_matvec_ms\": {:.3}, \
         \"treecode_plan_build_ms\": {:.3}, \"treecode_plan_bytes\": {}, \
         \"treecode_matvec_ms\": {:.3}, \"speedup\": {:.3}, \
         \"few_targets_ms\": {:.3}, \"direct_ms\": {:.3}, \
         \"routed_direct\": {}, \"routed_treecode\": {}, \"routed_fmm\": {}}},\n",
        r.n_sources,
        r.degree,
        r.fmm_plan_build_ms,
        r.fmm_plan_bytes,
        r.fmm_matvec_ms,
        r.treecode_plan_build_ms,
        r.treecode_plan_bytes,
        r.treecode_matvec_ms,
        r.speedup,
        r.few_targets_ms,
        r.direct_ms,
        r.routed_direct,
        r.routed_treecode,
        r.routed_fmm,
    )
}

/// The paper's end-to-end workload as engine traffic: a capacitance
/// solve whose GMRES matvecs each register a fresh charge version and
/// query every collocation vertex — the shape the router hands to the
/// compiled FMM.
struct GmresReport {
    unknowns: usize,
    gauss_sources: usize,
    iterations: usize,
    restarts: usize,
    relative_residual: f64,
    capacitance: f64,
    wall_ms: f64,
    backend: &'static str,
}

fn gmres_phase() -> GmresReport {
    use mbt_bem::{shapes, CapacitanceProblem, EngineSingleLayer, QuadRule, SingleLayerGeometry};
    use mbt_solvers::GmresOptions;
    use std::sync::Arc;

    let geometry = SingleLayerGeometry::new(shapes::icosphere(3, 1.0), QuadRule::SixPoint);
    let unknowns = geometry.dim();
    let gauss_sources = geometry.gauss_points.len();
    let engine = Arc::new(Engine::new(EngineConfig::default()).expect("default config is valid"));
    let op = EngineSingleLayer::new(geometry.clone(), Arc::clone(&engine), Accuracy::Fixed(6));
    let (sol, wall) = timed(|| {
        CapacitanceProblem::new(&op, &geometry).solve(&GmresOptions {
            restart: 10,
            tol: 1e-6,
            max_iters: 120,
            preconditioner: None,
        })
    });
    let backend = op
        .last_backend()
        .map_or("none", mbt_engine::Backend::as_str);
    println!(
        "gmres(10) via engine: {unknowns} unknowns / {gauss_sources} gauss sources, \
         {} iterations (+{} restarts) in {:.1} ms on the {backend} backend, \
         residual {:.2e}, C = {:.4}",
        sol.gmres.iterations,
        sol.gmres.restarts,
        wall * 1e3,
        sol.gmres.relative_residual,
        sol.capacitance,
    );
    GmresReport {
        unknowns,
        gauss_sources,
        iterations: sol.gmres.iterations,
        restarts: sol.gmres.restarts,
        relative_residual: sol.gmres.relative_residual,
        capacitance: sol.capacitance,
        wall_ms: wall * 1e3,
        backend,
    }
}

fn gmres_json(r: &GmresReport) -> String {
    format!(
        "  \"gmres\": {{\"unknowns\": {}, \"gauss_sources\": {}, \"iterations\": {}, \
         \"restarts\": {}, \"relative_residual\": {:.3e}, \"capacitance\": {:.6}, \
         \"wall_ms\": {:.3}, \"backend\": \"{}\"}},\n",
        r.unknowns,
        r.gauss_sources,
        r.iterations,
        r.restarts,
        r.relative_residual,
        r.capacitance,
        r.wall_ms,
        r.backend,
    )
}

/// `--backends` — CI's routed-backend smoke: a scaled-down backends
/// phase plus the GMRES scenario, with the routing decisions asserted
/// instead of merely recorded. No JSON rewrite.
fn backends_smoke() {
    let report = backends_phase(20_000, 3);
    if mbt_engine::routing_pinned() {
        assert_eq!(report.fmm_backend, "treecode", "validate pins every shape");
        assert_eq!(report.tiny_backend, "treecode", "validate pins every shape");
    } else {
        assert_eq!(
            report.fmm_backend, "fmm",
            "matvec shape must route to the FMM"
        );
        assert!(
            report.speedup > 1.0,
            "compiled FMM slower than the treecode on the matvec shape: {:.2}x",
            report.speedup
        );
        assert!(report.routed_fmm >= 1);
        assert_eq!(
            report.tiny_backend, "direct",
            "tiny datasets bypass planning"
        );
    }
    assert_eq!(
        report.pinned_backend, "treecode",
        "explicit params must pin"
    );
    assert_eq!(
        report.few_backend, "treecode",
        "few targets stay on the treecode"
    );
    let gmres = gmres_phase();
    assert!(
        gmres.relative_residual <= 1e-6,
        "gmres failed to converge through the engine: {:.2e}",
        gmres.relative_residual
    );
    assert!((gmres.capacitance - 1.0).abs() < 0.03);
    println!(
        "backends smoke ok: {:.2}x matvec speedup, gmres converged",
        report.speedup
    );
}

fn sharded_json(rows: &[ShardRow], threads: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "  \"shard_threads\": {threads},\n  \"sharded\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"threads\": {threads}, \
             \"cold_build_ms\": {:.3}, \"shard_build_max_ms\": {:.3}, \
             \"hot_p50_ms\": {:.3}, \"hot_p95_ms\": {:.3}, \"hot_p99_ms\": {:.3}, \
             \"global_shortcuts\": {}, \"skeleton_evals\": {}, \"shard_opens\": {}}}{}",
            r.shards,
            r.cold_build_ms,
            r.shard_build_max_ms,
            r.hot_p50_ms,
            r.hot_p95_ms,
            r.hot_p99_ms,
            r.global_shortcuts,
            r.skeleton_evals,
            r.shard_opens,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    out.push_str("  ]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if args.iter().any(|a| a == "--backends") {
        backends_smoke();
        return;
    }
    if args.iter().any(|a| a == "--tenants") {
        tenants_smoke();
        return;
    }
    let shard_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || vec![1, 2, 4, 8],
            |list| {
                list.split(',')
                    .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4,8"))
                    .collect()
            },
        );
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
    let particles = uniform_cube(
        N_PARTICLES,
        1.0,
        ChargeModel::RandomSign { magnitude: 1.0 },
        42,
    );
    let dataset = engine
        .register("bench", particles)
        .expect("benchmark dataset registers");
    let accuracy = Accuracy::Adaptive { p_min: 4 };
    let points = observation_points(N_POINTS);

    // --- cold path: first query pays the plan build ---
    let (cold, cold_wall) = timed(|| {
        engine
            .query(QueryRequest::potentials(dataset, accuracy, points.clone()))
            .expect("cold query succeeds")
    });
    let build_s = engine.stats().build_seconds;
    println!(
        "cold query: {:.1} ms total ({:.1} ms plan build, {} plan bytes)",
        cold_wall * 1e3,
        build_s * 1e3,
        cold.plan_bytes,
    );

    // --- hot path: cached-plan query latency ---
    let mut hot = Vec::with_capacity(HOT_REPS);
    for _ in 0..HOT_REPS {
        let t0 = Instant::now();
        engine
            .query(QueryRequest::potentials(dataset, accuracy, points.clone()))
            .expect("hot query succeeds");
        hot.push(t0.elapsed());
    }
    hot.sort();
    let hot_median = hot[hot.len() / 2];
    let hot_worst = *hot.last().expect("HOT_REPS > 0");
    println!(
        "hot query ({N_POINTS} points): median {:.2} ms, worst {:.2} ms over {HOT_REPS} reps",
        ms(hot_median),
        ms(hot_worst),
    );

    // --- batch throughput: concurrent tenants share sweeps ---
    let per_thread = observation_points(N_POINTS / BATCH_THREADS);
    let ((), batch_wall) = timed(|| {
        std::thread::scope(|s| {
            for _ in 0..BATCH_THREADS {
                let engine = &engine;
                let pts = per_thread.clone();
                s.spawn(move || {
                    for _ in 0..BATCH_ROUNDS {
                        engine
                            .query(QueryRequest {
                                dataset,
                                accuracy,
                                kind: QueryKind::Potential,
                                points: pts.clone(),
                                deadline: None,
                                tenant: mbt_engine::TenantId::DEFAULT,
                            })
                            .expect("batched query succeeds");
                    }
                });
            }
        });
    });
    let stats = engine.stats();
    let batch_points = (BATCH_THREADS * BATCH_ROUNDS * per_thread.len()) as f64;
    let throughput = batch_points / batch_wall;
    println!(
        "batch phase: {BATCH_THREADS} threads x {BATCH_ROUNDS} rounds in {:.1} ms \
         -> {throughput:.0} points/s (mean batch {:.2}, max {})",
        batch_wall * 1e3,
        stats.mean_batch(),
        stats.max_batch,
    );
    println!("\n{stats}");
    check_exports(&stats);

    // --- backend routing: matvec shape on FMM vs pinned treecode ---
    println!("\nbackends phase:");
    let backends = backends_phase(N_BACKEND_PARTICLES, BACKEND_HOT_REPS);

    // --- the paper's workload: GMRES capacitance solve as engine traffic ---
    println!("\ngmres phase:");
    let gmres = gmres_phase();

    // --- tenant isolation: light p99 under a saturating hog ---
    println!("\ntenants phase:");
    let tenants = tenants_phase();

    // --- sharded serving: cold fan-out build + hot routed queries ---
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("\nsharded phase ({threads} threads):");
    let shard_rows = sharded_phase(&shard_counts);

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"n_particles\": {N_PARTICLES},\n  \
         \"n_points\": {N_POINTS},\n  \"plan_build_ms\": {build:.3},\n  \
         \"plan_bytes\": {plan_bytes},\n  \"cold_query_ms\": {cold:.3},\n  \
         \"hot_query_median_ms\": {hot_med:.3},\n  \"hot_query_worst_ms\": {hot_worst:.3},\n  \
         \"batch_threads\": {BATCH_THREADS},\n  \"batch_points_per_s\": {tput:.0},\n  \
         \"batch_mean_requests\": {mean_batch:.3},\n  \"batch_max_requests\": {max_batch},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"hit_rate\": {hit_rate:.4},\n  \
         \"query_p50_ms\": {q50:.3},\n  \"query_p95_ms\": {q95:.3},\n  \"query_p99_ms\": {q99:.3},\n  \
         \"query_max_ms\": {qmax:.3},\n  \"eval_p50_ms\": {e50:.3},\n  \"eval_p95_ms\": {e95:.3},\n  \
         \"eval_p99_ms\": {e99:.3},\n  \"admission_wait_p99_ms\": {w99:.3},\n  \
         \"slow_queries\": {slow},\n  \"spans_dropped\": {dropped},\n{backends}{gmres}{tenants}{sharded}}}\n",
        backends = backends_json(&backends),
        gmres = gmres_json(&gmres),
        tenants = tenants_json(&tenants),
        sharded = sharded_json(&shard_rows, threads),
        build = build_s * 1e3,
        plan_bytes = cold.plan_bytes,
        cold = cold_wall * 1e3,
        hot_med = ms(hot_median),
        hot_worst = ms(hot_worst),
        tput = throughput,
        mean_batch = stats.mean_batch(),
        max_batch = stats.max_batch,
        hits = stats.cache_hits,
        misses = stats.cache_misses,
        hit_rate = stats.hit_rate(),
        q50 = stats.query_latency.p50_ms,
        q95 = stats.query_latency.p95_ms,
        q99 = stats.query_latency.p99_ms,
        qmax = stats.query_latency.max_ms,
        e50 = stats.eval_latency.p50_ms,
        e95 = stats.eval_latency.p95_ms,
        e99 = stats.eval_latency.p99_ms,
        w99 = stats.admission_wait.p99_ms,
        slow = stats.slow_queries,
        dropped = stats.spans_dropped,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
