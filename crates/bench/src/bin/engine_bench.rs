//! Engine serving benchmarks: cold build, cached-query latency, batch
//! throughput.
//!
//! Measures the three numbers that justify the engine layer's existence —
//! how expensive a plan is to build (what the cache amortises), how cheap
//! a cache-hit query is (what tenants actually pay), and how much
//! coalescing concurrent callers into shared sweeps buys — and writes them
//! to `BENCH_engine.json` as a flat, diffable document so the perf
//! trajectory of this path is machine-readable across commits.
//!
//! Run with: `cargo run --release -p mbt-bench --bin engine_bench`
//!
//! CI runs `-- --smoke`: a small workload whose only job is to assert
//! that the Prometheus and JSON exports parse and carry the latency
//! distribution fields; no JSON rewrite.

use std::time::{Duration, Instant};

use mbt_bench::timed;
use mbt_engine::{Accuracy, Engine, EngineConfig, EngineStats, QueryKind, QueryRequest};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::Vec3;

const N_PARTICLES: usize = 40_000;
const N_POINTS: usize = 2_000;
const HOT_REPS: usize = 20;
const BATCH_THREADS: usize = 8;
const BATCH_ROUNDS: usize = 6;

fn observation_points(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Vec3::new(1.5 * t.sin(), 1.5 * (1.3 * t).cos(), 0.8 * (0.7 * t).sin())
        })
        .collect()
}

/// Milliseconds, rounded to microsecond precision for stable JSON.
fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

/// Exports must parse under the zero-dep validators and carry the
/// latency-distribution fields the dashboards scrape.
fn check_exports(stats: &EngineStats) {
    let prom = stats.to_prometheus();
    assert!(
        mbt_obs::prometheus_is_valid(&prom),
        "Prometheus export failed to parse:\n{prom}"
    );
    for series in [
        "mbt_query_latency_seconds_bucket",
        "mbt_query_latency_seconds_count",
        "mbt_query_latency_p50_seconds",
        "mbt_query_latency_p95_seconds",
        "mbt_query_latency_p99_seconds",
        "mbt_eval_latency_p99_seconds",
        "mbt_build_latency_p99_seconds",
    ] {
        assert!(prom.contains(series), "Prometheus export lacks {series}");
    }
    let json = stats.to_json();
    assert!(
        mbt_obs::json_is_valid(&json),
        "JSON export failed to parse:\n{json}"
    );
    for field in [
        "\"latency\"",
        "\"p50_ms\"",
        "\"p95_ms\"",
        "\"p99_ms\"",
        "\"histograms\"",
    ] {
        assert!(json.contains(field), "JSON export lacks {field}");
    }
}

fn smoke() {
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
    let particles = uniform_cube(2_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
    let dataset = engine
        .register("smoke", particles)
        .expect("dataset registers");
    let points = observation_points(200);
    for _ in 0..3 {
        engine
            .query(QueryRequest::potentials(
                dataset,
                Accuracy::Adaptive { p_min: 4 },
                points.clone(),
            ))
            .expect("smoke query succeeds");
    }
    let stats = engine.stats();
    assert!(stats.query_latency.count >= 3);
    assert!(stats.query_latency.p50_ms <= stats.query_latency.p99_ms);
    check_exports(&stats);
    println!(
        "smoke ok: {} queries, query p50 {:.2} ms / p99 {:.2} ms, exports parse",
        stats.query_latency.count, stats.query_latency.p50_ms, stats.query_latency.p99_ms,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
    let particles = uniform_cube(
        N_PARTICLES,
        1.0,
        ChargeModel::RandomSign { magnitude: 1.0 },
        42,
    );
    let dataset = engine
        .register("bench", particles)
        .expect("benchmark dataset registers");
    let accuracy = Accuracy::Adaptive { p_min: 4 };
    let points = observation_points(N_POINTS);

    // --- cold path: first query pays the plan build ---
    let (cold, cold_wall) = timed(|| {
        engine
            .query(QueryRequest::potentials(dataset, accuracy, points.clone()))
            .expect("cold query succeeds")
    });
    let build_s = engine.stats().build_seconds;
    println!(
        "cold query: {:.1} ms total ({:.1} ms plan build, {} plan bytes)",
        cold_wall * 1e3,
        build_s * 1e3,
        cold.plan_bytes,
    );

    // --- hot path: cached-plan query latency ---
    let mut hot = Vec::with_capacity(HOT_REPS);
    for _ in 0..HOT_REPS {
        let t0 = Instant::now();
        engine
            .query(QueryRequest::potentials(dataset, accuracy, points.clone()))
            .expect("hot query succeeds");
        hot.push(t0.elapsed());
    }
    hot.sort();
    let hot_median = hot[hot.len() / 2];
    let hot_worst = *hot.last().expect("HOT_REPS > 0");
    println!(
        "hot query ({N_POINTS} points): median {:.2} ms, worst {:.2} ms over {HOT_REPS} reps",
        ms(hot_median),
        ms(hot_worst),
    );

    // --- batch throughput: concurrent tenants share sweeps ---
    let per_thread = observation_points(N_POINTS / BATCH_THREADS);
    let ((), batch_wall) = timed(|| {
        std::thread::scope(|s| {
            for _ in 0..BATCH_THREADS {
                let engine = &engine;
                let pts = per_thread.clone();
                s.spawn(move || {
                    for _ in 0..BATCH_ROUNDS {
                        engine
                            .query(QueryRequest {
                                dataset,
                                accuracy,
                                kind: QueryKind::Potential,
                                points: pts.clone(),
                                deadline: None,
                            })
                            .expect("batched query succeeds");
                    }
                });
            }
        });
    });
    let stats = engine.stats();
    let batch_points = (BATCH_THREADS * BATCH_ROUNDS * per_thread.len()) as f64;
    let throughput = batch_points / batch_wall;
    println!(
        "batch phase: {BATCH_THREADS} threads x {BATCH_ROUNDS} rounds in {:.1} ms \
         -> {throughput:.0} points/s (mean batch {:.2}, max {})",
        batch_wall * 1e3,
        stats.mean_batch(),
        stats.max_batch,
    );
    println!("\n{stats}");
    check_exports(&stats);

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"n_particles\": {N_PARTICLES},\n  \
         \"n_points\": {N_POINTS},\n  \"plan_build_ms\": {build:.3},\n  \
         \"plan_bytes\": {plan_bytes},\n  \"cold_query_ms\": {cold:.3},\n  \
         \"hot_query_median_ms\": {hot_med:.3},\n  \"hot_query_worst_ms\": {hot_worst:.3},\n  \
         \"batch_threads\": {BATCH_THREADS},\n  \"batch_points_per_s\": {tput:.0},\n  \
         \"batch_mean_requests\": {mean_batch:.3},\n  \"batch_max_requests\": {max_batch},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"hit_rate\": {hit_rate:.4},\n  \
         \"query_p50_ms\": {q50:.3},\n  \"query_p95_ms\": {q95:.3},\n  \"query_p99_ms\": {q99:.3},\n  \
         \"query_max_ms\": {qmax:.3},\n  \"eval_p50_ms\": {e50:.3},\n  \"eval_p95_ms\": {e95:.3},\n  \
         \"eval_p99_ms\": {e99:.3},\n  \"admission_wait_p99_ms\": {w99:.3},\n  \
         \"slow_queries\": {slow},\n  \"spans_dropped\": {dropped}\n}}\n",
        build = build_s * 1e3,
        plan_bytes = cold.plan_bytes,
        cold = cold_wall * 1e3,
        hot_med = ms(hot_median),
        hot_worst = ms(hot_worst),
        tput = throughput,
        mean_batch = stats.mean_batch(),
        max_batch = stats.max_batch,
        hits = stats.cache_hits,
        misses = stats.cache_misses,
        hit_rate = stats.hit_rate(),
        q50 = stats.query_latency.p50_ms,
        q95 = stats.query_latency.p95_ms,
        q99 = stats.query_latency.p99_ms,
        qmax = stats.query_latency.max_ms,
        e50 = stats.eval_latency.p50_ms,
        e95 = stats.eval_latency.p95_ms,
        e99 = stats.eval_latency.p99_ms,
        w99 = stats.admission_wait.p99_ms,
        slow = stats.slow_queries,
        dropped = stats.spans_dropped,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
