//! **Figure 2** — "A comparison of the error and computational cost of the
//! original and new methods": error-vs-n and terms-vs-n curves for both
//! methods, emitted as CSV plus ASCII plots.
//!
//! Shape to match the paper: the error curves separate (original grows
//! faster), the cost curves nearly coincide.
//!
//! Run: `cargo run --release -p mbt-bench --bin fig2 [scale]`

use mbt_bench::{compare_methods, structured_instance, ComparisonRow};
use mbt_treecode::{RefWeight, Treecode, TreecodeParams};

const ALPHA: f64 = 0.7;
const P: usize = 4;
const THRESHOLD_MULT: f64 = 8.0;

fn ascii_plot(title: &str, series: &[(&str, Vec<f64>)], xs: &[usize], log: bool) {
    println!("\n{title}");
    let all: Vec<f64> = series.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    let (lo, hi) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let width = 50usize;
    let scale = |v: f64| -> usize {
        let (v, lo, hi) = if log {
            (v.ln(), lo.ln(), hi.ln())
        } else {
            (v, lo, hi)
        };
        if hi > lo {
            ((v - lo) / (hi - lo) * (width - 1) as f64).round() as usize
        } else {
            0
        }
    };
    for (i, &n) in xs.iter().enumerate() {
        for (name, vals) in series {
            let pos = scale(vals[i]);
            let mut line = vec![b' '; width];
            line[pos] = b'*';
            println!(
                "{:>8} {:>5} |{}| {:.3e}",
                n,
                name,
                String::from_utf8(line).unwrap(),
                vals[i]
            );
        }
        println!();
    }
}

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let sizes: Vec<usize> = match scale.as_str() {
        "small" => vec![2_000, 4_000, 8_000, 16_000],
        _ => vec![4_000, 8_000, 16_000, 32_000, 64_000, 128_000],
    };
    println!("Figure 2 reproduction — α = {ALPHA}, p = p_min = {P}");

    let mut rows: Vec<ComparisonRow> = Vec::new();
    for &n in &sizes {
        let ps = structured_instance(n);
        let probe = Treecode::new(&ps, TreecodeParams::adaptive(P, ALPHA)).unwrap();
        let adaptive = TreecodeParams::adaptive(P, ALPHA)
            .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * THRESHOLD_MULT));
        let row = compare_methods(&ps, TreecodeParams::fixed(P, ALPHA), adaptive, 300);
        eprintln!("  n = {n} done");
        rows.push(row);
    }

    // CSV (stdout, machine readable)
    println!("\nn,err_orig,err_new,terms_orig,terms_new,time_orig,time_new");
    for r in &rows {
        println!(
            "{},{:.6e},{:.6e},{},{},{:.4},{:.4}",
            r.n, r.err_orig, r.err_new, r.terms_orig, r.terms_new, r.time_orig, r.time_new
        );
    }

    let errs_o: Vec<f64> = rows.iter().map(|r| r.err_orig).collect();
    let errs_n: Vec<f64> = rows.iter().map(|r| r.err_new).collect();
    let terms_o: Vec<f64> = rows.iter().map(|r| r.terms_orig as f64).collect();
    let terms_n: Vec<f64> = rows.iter().map(|r| r.terms_new as f64).collect();
    ascii_plot(
        "error vs n (log scale; orig should sit right of new, gap widening)",
        &[("orig", errs_o), ("new", errs_n)],
        &sizes,
        true,
    );
    ascii_plot(
        "terms vs n (log scale; curves should nearly coincide)",
        &[("orig", terms_o), ("new", terms_n)],
        &sizes,
        true,
    );
}
