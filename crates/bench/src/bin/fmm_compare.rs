//! **FMM extension** — the paper's conclusion: "the results presented in
//! this paper can easily be extended to the Fast Multipole Method as
//! well." This harness compares fixed- vs adaptive-degree FMM (and the
//! Barnes–Hut treecode) on the same instances: error, work, wall time.
//!
//! Run: `cargo run --release -p mbt-bench --bin fmm_compare`

use mbt_bench::{structured_instance, timed, unstructured_instance};
use mbt_fmm::{Fmm, FmmParams};
use mbt_geometry::Particle;
use mbt_treecode::{sampled_relative_error, Treecode, TreecodeParams};

fn run(name: &str, particles: &[Particle]) {
    println!("\n=== {name}: n = {}", particles.len());
    println!(
        "{:<26} {:>12} {:>14} {:>10} {:>12}",
        "method", "error", "work", "time (s)", "degrees"
    );

    // Barnes–Hut rows for context (single- and dual-tree traversals)
    for (label, params, dual) in [
        ("BH original (p = 4)", TreecodeParams::fixed(4, 0.7), false),
        (
            "BH improved (p_min = 4)",
            TreecodeParams::adaptive(4, 0.7),
            false,
        ),
        ("BH dual-tree (p = 4)", TreecodeParams::fixed(4, 0.7), true),
        (
            "BH dual adaptive (p≥4)",
            TreecodeParams::adaptive(4, 0.7),
            true,
        ),
    ] {
        let tc = Treecode::new(particles, params).expect("valid");
        let (r, secs) = timed(|| {
            if dual {
                tc.potentials_dual()
            } else {
                tc.potentials()
            }
        });
        let e = sampled_relative_error(particles, &r.values, 300, 1);
        println!(
            "{label:<26} {:>12.3e} {:>14} {:>10.3} {:>12}",
            e.relative_l2,
            r.stats.work(),
            secs,
            format!("p≤{}", r.stats.max_degree_used())
        );
    }

    // FMM rows
    for (label, params) in [
        ("FMM fixed (p = 4)", FmmParams::fixed(4)),
        ("FMM adaptive (p_min = 4)", FmmParams::adaptive(4, 0.7)),
    ] {
        let ((fmm, r), secs) = timed(|| {
            let fmm = Fmm::new(particles, params).expect("valid");
            let r = fmm.potentials();
            (fmm, r)
        });
        let e = sampled_relative_error(particles, &r.values, 300, 1);
        println!(
            "{label:<26} {:>12.3e} {:>14} {:>10.3} {:>12}",
            e.relative_l2,
            r.stats.work() + fmm.translation_terms,
            secs,
            format!("{:?}", fmm.degrees())
        );
    }
}

fn main() {
    println!("FMM extension — fixed vs adaptive degrees, against Barnes–Hut");
    run("structured (uniform)", &structured_instance(32_000));
    run(
        "unstructured (overlapped Gaussians)",
        &unstructured_instance(32_000),
    );
}
