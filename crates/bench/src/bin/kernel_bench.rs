//! Scalar vs compiled (interaction-list + SoA batch kernel) sweep
//! benchmark.
//!
//! For each `(n, p)` cell this builds one tree, runs the full
//! all-particles potential sweep in both [`EvalMode`]s, and reports wall
//! times plus the speedup. Results go to `BENCH_kernels.json` as a flat,
//! diffable document; the compiled/scalar agreement and exact counter
//! equality are asserted on every cell, so the benchmark doubles as an
//! end-to-end equivalence check on realistic sizes.
//!
//! Run with: `cargo run --release -p mbt-bench --bin kernel_bench`
//! CI runs `-- --smoke`: one small cell, assertions only, no JSON rewrite.

use mbt_bench::timed;
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_treecode::{EvalMode, EvalResult, Treecode, TreecodeParams};

const SIZES: [usize; 3] = [10_000, 40_000, 100_000];
const DEGREES: [usize; 3] = [2, 4, 8];
const REPS: usize = 3;

struct Cell {
    n: usize,
    p: usize,
    scalar_ms: f64,
    compiled_ms: f64,
}

/// Best-of-`REPS` sweep time in milliseconds, plus the last result.
fn best_of(tc: &Treecode, reps: usize) -> (f64, EvalResult<f64>) {
    let mut best = f64::INFINITY;
    let (mut result, secs) = timed(|| tc.potentials());
    best = best.min(secs);
    for _ in 1..reps {
        let (r, secs) = timed(|| tc.potentials());
        best = best.min(secs);
        result = r;
    }
    (best * 1e3, result)
}

fn run_cell(n: usize, p: usize, reps: usize) -> Cell {
    let particles = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
    let scalar_params = TreecodeParams::fixed(p, 0.7);
    let compiled_params = scalar_params.with_eval_mode(EvalMode::Compiled);
    let tc_scalar = Treecode::new(&particles, scalar_params).expect("valid instance");
    let tc_compiled = Treecode::new(&particles, compiled_params).expect("valid instance");

    let (scalar_ms, r_scalar) = best_of(&tc_scalar, reps);
    let (compiled_ms, r_compiled) = best_of(&tc_compiled, reps);

    // The two modes execute the identical interaction set; anything beyond
    // summation-reordering noise is a bug, so fail loudly here.
    assert_eq!(
        r_scalar.stats, r_compiled.stats,
        "n={n} p={p}: modes disagree on interaction counts"
    );
    for (i, (a, b)) in r_scalar.values.iter().zip(&r_compiled.values).enumerate() {
        let tol = 1e-12 * a.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "n={n} p={p} target {i}: scalar {a} vs compiled {b}"
        );
    }

    Cell {
        n,
        p,
        scalar_ms,
        compiled_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let cell = run_cell(5_000, 4, 1);
        println!(
            "smoke ok: n=5000 p=4 scalar {:.2} ms, compiled {:.2} ms",
            cell.scalar_ms, cell.compiled_ms
        );
        return;
    }

    let mut cells = Vec::new();
    for &n in &SIZES {
        for &p in &DEGREES {
            let cell = run_cell(n, p, REPS);
            println!(
                "n={:>6} p={}: scalar {:>8.2} ms, compiled {:>8.2} ms, speedup {:.2}x",
                cell.n,
                cell.p,
                cell.scalar_ms,
                cell.compiled_ms,
                cell.scalar_ms / cell.compiled_ms
            );
            cells.push(cell);
        }
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"n\": {}, \"p\": {}, \"scalar_ms\": {:.3}, \"compiled_ms\": {:.3}, \
                 \"speedup\": {:.3}}}",
                c.n,
                c.p,
                c.scalar_ms,
                c.compiled_ms,
                c.scalar_ms / c.compiled_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"distribution\": \"uniform_cube\",\n  \
         \"alpha\": 0.7,\n  \"reps\": {REPS},\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
