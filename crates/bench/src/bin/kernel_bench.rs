//! Scalar vs compiled vs explicit-SIMD sweep benchmark.
//!
//! For each `(n, p)` cell this builds one tree per parameter set and runs
//! the full all-particles potential sweep in four configurations:
//!
//! * `scalar`    — [`EvalMode::Scalar`], the bit-exact reference.
//! * `compiled`  — [`EvalMode::Compiled`] with the SIMD dispatch pinned to
//!   [`SimdLevel::Scalar`], i.e. the baseline-width batch kernels that
//!   match the pre-SIMD compiled path.
//! * `simd_f64`  — the same compiled plan at the detected SIMD level
//!   (wider M2P groups and P2P chunks, still all-f64).
//! * `simd_f32`  — the compiled plan with the error-budgeted f32 near
//!   field ([`Precision::F32Near`]) at the detected SIMD level.
//!
//! Results go to `BENCH_kernels.json` as a flat, diffable document with
//! the machine's dispatch level and lane widths recorded alongside the
//! cells. Equivalence is asserted on every cell — exact counter equality
//! and 1e-12 agreement for the f64 tiers, bit-identical values across
//! dispatch widths, and the Theorem-style roundoff budget for the f32
//! tier — so the benchmark doubles as an end-to-end check on realistic
//! sizes.
//!
//! Run with: `cargo run --release -p mbt-bench --bin kernel_bench`
//! CI runs `-- --smoke`: one small cell, assertions only, no JSON rewrite.

use mbt_bench::timed;
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_multipole::bounds::f32_near_roundoff_rel;
use mbt_multipole::simd::{self, SimdLevel};
use mbt_treecode::{EvalMode, EvalResult, Precision, Treecode, TreecodeParams};

const SIZES: [usize; 3] = [10_000, 40_000, 100_000];
const DEGREES: [usize; 3] = [2, 4, 8];
const REPS: usize = 3;

struct Cell {
    n: usize,
    p: usize,
    scalar_ms: f64,
    compiled_ms: f64,
    simd_f64_ms: f64,
    simd_f32_ms: f64,
}

/// Best-of-`reps` sweep time in milliseconds, plus the last result.
fn best_of(tc: &Treecode, reps: usize) -> (f64, EvalResult<f64>) {
    let mut best = f64::INFINITY;
    let (mut result, secs) = timed(|| tc.potentials());
    best = best.min(secs);
    for _ in 1..reps {
        let (r, secs) = timed(|| tc.potentials());
        best = best.min(secs);
        result = r;
    }
    (best * 1e3, result)
}

fn run_cell(n: usize, p: usize, reps: usize) -> Cell {
    let particles = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
    let scalar_params = TreecodeParams::fixed(p, 0.7);
    let compiled_params = scalar_params.with_eval_mode(EvalMode::Compiled);
    let f32_params = compiled_params.with_near_precision(Precision::F32Near);
    let tc_scalar = Treecode::new(&particles, scalar_params).expect("valid instance");
    let tc_compiled = Treecode::new(&particles, compiled_params).expect("valid instance");
    let tc_f32 = Treecode::new(&particles, f32_params).expect("valid instance");

    let detected = simd::detect();
    let (scalar_ms, r_scalar) = best_of(&tc_scalar, reps);

    // Baseline-width compiled sweep: pin dispatch to the scalar level so
    // this column matches the pre-SIMD batch kernels.
    simd::set_level(SimdLevel::Scalar);
    let (compiled_ms, r_compiled) = best_of(&tc_compiled, reps);

    simd::set_level(detected);
    let (simd_f64_ms, r_simd) = best_of(&tc_compiled, reps);
    let (simd_f32_ms, r_f32) = best_of(&tc_f32, reps);

    // The modes execute the identical interaction set; anything beyond
    // summation-reordering noise is a bug, so fail loudly here.
    assert_eq!(
        r_scalar.stats, r_compiled.stats,
        "n={n} p={p}: modes disagree on interaction counts"
    );
    assert_eq!(
        r_scalar.stats, r_f32.stats,
        "n={n} p={p}: f32 tier disagrees on interaction counts"
    );
    let mut phi_inf = 0.0_f64;
    for (i, (a, b)) in r_scalar.values.iter().zip(&r_compiled.values).enumerate() {
        phi_inf = phi_inf.max(a.abs());
        let tol = 1e-12 * a.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "n={n} p={p} target {i}: scalar {a} vs compiled {b}"
        );
    }
    // Lane width must never change results: the wide-dispatch sweep is
    // bit-identical to the scalar-level sweep of the very same plan.
    for (i, (a, b)) in r_compiled.values.iter().zip(&r_simd.values).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "n={n} p={p} target {i}: dispatch width changed the f64 result"
        );
    }
    // The f32 near field stays inside its roundoff budget (the admission
    // inequality reserves a 16x margin over this; 8x absorbs the f32
    // rounding of positions on top of the accumulation bound).
    let budget = 8.0 * f32_near_roundoff_rel(n, scalar_params.leaf_capacity);
    for (i, (a, b)) in r_scalar.values.iter().zip(&r_f32.values).enumerate() {
        let tol = budget * phi_inf.max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "n={n} p={p} target {i}: f32 tier {b} vs scalar {a} exceeds budget {tol:e}"
        );
    }

    Cell {
        n,
        p,
        scalar_ms,
        compiled_ms,
        simd_f64_ms,
        simd_f32_ms,
    }
}

fn print_cell(c: &Cell) {
    println!(
        "n={:>6} p={}: scalar {:>8.2} ms, compiled {:>8.2} ms, simd_f64 {:>8.2} ms ({:.2}x), \
         simd_f32 {:>8.2} ms ({:.2}x)",
        c.n,
        c.p,
        c.scalar_ms,
        c.compiled_ms,
        c.simd_f64_ms,
        c.compiled_ms / c.simd_f64_ms,
        c.simd_f32_ms,
        c.compiled_ms / c.simd_f32_ms
    );
}

fn main() {
    // The *effective* dispatch tier: `detect()` clamped by `set_level`,
    // which also folds in the `force-scalar` feature — so the CI
    // fallback leg records `scalar` here, not the raw hardware probe.
    let detected = simd::set_level(simd::detect());
    println!(
        "simd: level={} m2p_lanes={} p2p_lanes_f64={} p2p_lanes_f32={}",
        detected.as_str(),
        detected.m2p_lanes(),
        detected.p2p_lanes_f64(),
        detected.p2p_lanes_f32()
    );

    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let cell = run_cell(5_000, 4, 1);
        print_cell(&cell);
        println!("smoke ok");
        return;
    }

    let mut cells = Vec::new();
    for &n in &SIZES {
        for &p in &DEGREES {
            let cell = run_cell(n, p, REPS);
            print_cell(&cell);
            cells.push(cell);
        }
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"n\": {}, \"p\": {}, \"scalar_ms\": {:.3}, \"compiled_ms\": {:.3}, \
                 \"simd_f64_ms\": {:.3}, \"simd_f32_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"simd_f64_speedup\": {:.3}, \"simd_f32_speedup\": {:.3}}}",
                c.n,
                c.p,
                c.scalar_ms,
                c.compiled_ms,
                c.simd_f64_ms,
                c.simd_f32_ms,
                c.scalar_ms / c.compiled_ms,
                c.compiled_ms / c.simd_f64_ms,
                c.compiled_ms / c.simd_f32_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"distribution\": \"uniform_cube\",\n  \
         \"alpha\": 0.7,\n  \"reps\": {REPS},\n  \"machine\": {{\"simd_level\": \"{}\", \
         \"m2p_lanes\": {}, \"p2p_lanes_f64\": {}, \"p2p_lanes_f32\": {}}},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        detected.as_str(),
        detected.m2p_lanes(),
        detected.p2p_lanes_f64(),
        detected.p2p_lanes_f32(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
