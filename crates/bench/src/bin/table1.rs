//! **Table 1** — "Comparison of the new method with the original method":
//! simulation error and number of evaluated multipole terms for the
//! original (fixed-degree) and improved (adaptive-degree) Barnes–Hut
//! methods, on structured (uniform) and unstructured (overlapped-Gaussian)
//! particle distributions.
//!
//! Shapes to match the paper: the error of the original method grows with
//! `n` while the improved method's stays low (their gap widens), and the
//! term counts of the two methods stay within a small constant of each
//! other (Theorem 4).
//!
//! Run: `cargo run --release -p mbt-bench --bin table1 [scale]`
//! where `scale` ∈ {small, full} (default `full`).

use mbt_bench::{compare_methods, structured_instance, unstructured_instance};
use mbt_treecode::{RefWeight, Treecode, TreecodeParams};

const ALPHA: f64 = 0.7;
const P: usize = 4;
/// Threshold multiplier: clusters lighter than `m × median leaf weight`
/// keep `p_min` (the paper's "minimum degree of interaction associated
/// with a threshold value"). Chosen so the term counts of the two methods
/// stay close, as in the paper's Table 1.
const THRESHOLD_MULT: f64 = 8.0;

fn adaptive_params(particles: &[mbt_geometry::Particle]) -> TreecodeParams {
    // anchor the threshold at a multiple of the median leaf weight
    let probe =
        Treecode::new(particles, TreecodeParams::adaptive(P, ALPHA)).expect("valid instance");
    TreecodeParams::adaptive(P, ALPHA)
        .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * THRESHOLD_MULT))
}

fn run_block(title: &str, sizes: &[usize], make: impl Fn(usize) -> Vec<mbt_geometry::Particle>) {
    println!("\n{title}");
    println!(
        "{:>9} {:>12} {:>12} {:>8} {:>14} {:>14} {:>7} {:>6}",
        "n", "err(orig)", "err(new)", "gain", "Terms(orig)", "Terms(new)", "t-ratio", "p_max"
    );
    for &n in sizes {
        let ps = make(n);
        let row = compare_methods(
            &ps,
            TreecodeParams::fixed(P, ALPHA),
            adaptive_params(&ps),
            400,
        );
        println!(
            "{:>9} {:>12.3e} {:>12.3e} {:>7.1}x {:>14} {:>14} {:>7.2} {:>6}",
            row.n,
            row.err_orig,
            row.err_new,
            row.err_orig / row.err_new,
            row.terms_orig,
            row.terms_new,
            row.terms_new as f64 / row.terms_orig as f64,
            row.max_degree,
        );
    }
}

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let (structured, unstructured): (&[usize], &[usize]) = match scale.as_str() {
        "small" => (&[4_000, 8_000, 16_000], &[8_000, 16_000]),
        _ => (&[8_000, 16_000, 32_000, 64_000, 128_000], &[32_000, 64_000]),
    };
    println!(
        "Table 1 reproduction — original (p = {P}) vs improved (p_min = {P}, threshold = {THRESHOLD_MULT}× median leaf), α = {ALPHA}"
    );
    println!("error metric: relative 2-norm against exact summation at 400 sampled targets");

    run_block(
        "Structured (uniform) distributions",
        structured,
        structured_instance,
    );
    run_block(
        "Unstructured (overlapped-Gaussian) distributions",
        unstructured,
        unstructured_instance,
    );
}
