//! **Table 2** — "Runtimes and speedups for single-thread and multithreaded
//! versions of a single iteration of the treecode": the paper's parallel
//! experiment on a 32-processor SGI Origin 2000 (POSIX threads,
//! Peano–Hilbert-ordered particles, aggregation width `w`).
//!
//! Substitution (see DESIGN.md): the Origin 2000 is replaced by rayon
//! thread pools on this machine. Two measurements are reported:
//!
//! 1. **wall-clock** runtime per thread count — meaningful up to the number
//!    of physical cores of the host (on a single-core host all thread
//!    counts take the same time, honestly reported);
//! 2. **load-balance efficiency** of the work decomposition — total work /
//!    (T × max worker work) over the aggregated work units. This is the
//!    machine-independent component of the paper's 80–90% parallel
//!    efficiencies: it shows that the per-particle traversals partition
//!    evenly regardless of the host.
//!
//! Run: `cargo run --release -p mbt-bench --bin table2`

use mbt_bench::{load_balance_efficiency, per_chunk_work, timed};
use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::Particle;
use mbt_treecode::{RefWeight, Treecode, TreecodeParams};

const W: usize = 64; // the paper's aggregation width

fn run_instance(name: &str, particles: &[Particle]) {
    println!("\n=== {name}: n = {}", particles.len());
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() < ncpu.max(8) {
        threads.push(threads.last().unwrap() * 2);
    }

    let probe = Treecode::new(particles, TreecodeParams::adaptive(6, 0.7)).expect("valid");
    let adaptive = TreecodeParams::adaptive(6, 0.7)
        .with_eval_chunk(W)
        .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0));
    for (label, params) in [
        (
            "Original (p = 6)",
            TreecodeParams::fixed(6, 0.7).with_eval_chunk(W),
        ),
        ("New (p_min = 6)", adaptive),
    ] {
        let tc = Treecode::new(particles, params).expect("valid instance");
        println!("\n{label}");
        println!(
            "{:>8} {:>12} {:>9} {:>12}",
            "threads", "time (s)", "speedup", "balance-eff"
        );
        // per-chunk work once (thread-count independent)
        let works = per_chunk_work(&tc, W);
        let mut t1 = 0.0f64;
        for &t in &threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool");
            let (_, secs) = pool.install(|| timed(|| tc.potentials()));
            if t == 1 {
                t1 = secs;
            }
            let eff = load_balance_efficiency(&works, t);
            println!(
                "{:>8} {:>12.3} {:>8.2}x {:>11.1}%",
                t,
                secs,
                t1 / secs,
                eff * 100.0
            );
        }
    }
    println!(
        "\n(host has {ncpu} core(s); wall-clock speedup saturates there, the \
         balance column is machine-independent)"
    );
}

fn main() {
    println!("Table 2 reproduction — parallel treecode iteration, aggregation width w = {W}");
    // the paper's instances: uniform40k and non-uniform46k
    let uniform = uniform_cube(
        40_960,
        1.0,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        11,
    );
    run_instance("uniform40k", &uniform);
    let nonuniform = overlapped_gaussians(
        46_080,
        3,
        2.0,
        0.6,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        13,
    );
    run_instance("non-uniform46k", &nonuniform);
}
