//! **Table 3** — "Single iteration errors and execution times for the
//! improved and original methods" on boundary-element problems: the
//! single-layer matvec on the propeller and gripper meshes, at several
//! expansion degrees, with errors measured against a degree-9 run ("the
//! exact computation takes an inordinately large amount of time" — same
//! here, and same remedy as the paper's).
//!
//! Substitution (see DESIGN.md): the paper's industrial meshes are
//! replaced by synthetic propeller/gripper surfaces with the same highly
//! unstructured character; element counts are scaled to the host.
//!
//! Run: `cargo run --release -p mbt-bench --bin table3 [scale]`

use mbt_bem::{shapes, QuadRule, SingleLayerGeometry, TreecodeSingleLayer};
use mbt_bench::timed;
use mbt_solvers::LinearOperator;
use mbt_treecode::{relative_error, RefWeight, Treecode, TreecodeParams};

const ALPHA: f64 = 0.5;
const REF_DEGREE: usize = 9;

fn density(n: usize) -> Vec<f64> {
    // a smooth, nonconstant test density
    (0..n)
        .map(|i| 1.0 + 0.5 * (i as f64 * 0.013).sin())
        .collect()
}

fn adaptive_params(geometry: &SingleLayerGeometry, p_min: usize) -> TreecodeParams {
    use mbt_geometry::Particle;
    let particles: Vec<Particle> = geometry
        .gauss_points
        .iter()
        .zip(&geometry.gauss_wa)
        .map(|(&p, &wa)| Particle::new(p, wa))
        .collect();
    let probe = Treecode::new(&particles, TreecodeParams::adaptive(p_min, ALPHA)).unwrap();
    TreecodeParams::adaptive(p_min, ALPHA)
        .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 2.0))
}

fn run_mesh(name: &str, mesh: mbt_bem::TriMesh) {
    let geometry = SingleLayerGeometry::new(mesh, QuadRule::SixPoint);
    println!(
        "\n=== {name}: {} elements, {} nodes, 6 Gauss points per element",
        geometry.mesh.num_elements(),
        geometry.dim()
    );
    let x = density(geometry.dim());

    // degree-9 reference (fixed degree, as in the paper)
    let reference =
        TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(REF_DEGREE, ALPHA));
    let (y_ref, t_ref) = timed(|| reference.apply_vec(&x));

    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>16}",
        "Algorithm", "Degree", "Error", "Time (s)", "Terms"
    );
    for p in [2usize, 3, 4, 5] {
        let orig = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(p, ALPHA));
        let (y, t) = timed(|| orig.apply_vec(&x));
        println!(
            "{:<10} {:>7} {:>12.3e} {:>10.3} {:>16}",
            "Original",
            p,
            relative_error(&y, &y_ref),
            t,
            orig.stats().terms
        );
    }
    for p in [2usize, 3, 4, 5] {
        let improved = TreecodeSingleLayer::new(geometry.clone(), adaptive_params(&geometry, p));
        let (y, t) = timed(|| improved.apply_vec(&x));
        println!(
            "{:<10} {:>7} {:>12.3e} {:>10.3} {:>16}",
            "Improved",
            p,
            relative_error(&y, &y_ref),
            t,
            improved.stats().terms
        );
    }
    println!(
        "{:<10} {:>7} {:>12} {:>10.3} {:>16}",
        "Reference",
        REF_DEGREE,
        "—",
        t_ref,
        reference.stats().terms
    );
}

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let (prop, grip) = match scale.as_str() {
        "small" => (shapes::propeller(4, 16, 2), shapes::gripper(8)),
        _ => (shapes::propeller(4, 40, 4), shapes::gripper(24)),
    };
    println!("Table 3 reproduction — BEM single-layer matvec, errors vs degree-{REF_DEGREE} reference, α = {ALPHA}");
    run_mesh("propeller (synthetic)", prop);
    run_mesh("gripper (synthetic)", grip);
}
