//! Shared harness utilities for the table/figure reproduction binaries.

#![forbid(unsafe_code)]

use std::time::Instant;

use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::Particle;
use mbt_treecode::{sampled_relative_error, EvalStats, Treecode, TreecodeParams};

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// The structured (uniform, unit-charge) instances of Table 1.
#[must_use]
pub fn structured_instance(n: usize) -> Vec<Particle> {
    uniform_cube(
        n,
        1.0,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        42 + n as u64,
    )
}

/// The unstructured (overlapped-Gaussian) instances of Table 1.
#[must_use]
pub fn unstructured_instance(n: usize) -> Vec<Particle> {
    overlapped_gaussians(
        n,
        4,
        2.5,
        0.5,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        77 + n as u64,
    )
}

/// One row of a Table-1-style comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Particle count.
    pub n: usize,
    /// Relative error of the original (fixed-degree) method.
    pub err_orig: f64,
    /// Relative error of the improved (adaptive-degree) method.
    pub err_new: f64,
    /// Terms evaluated by the original method.
    pub terms_orig: u64,
    /// Terms evaluated by the improved method.
    pub terms_new: u64,
    /// Largest degree the improved method used.
    pub max_degree: usize,
    /// Evaluation wall time of the original method (s).
    pub time_orig: f64,
    /// Evaluation wall time of the improved method (s).
    pub time_new: f64,
}

/// Runs original vs improved on one instance and measures sampled errors.
#[must_use]
pub fn compare_methods(
    particles: &[Particle],
    orig: TreecodeParams,
    new: TreecodeParams,
    samples: usize,
) -> ComparisonRow {
    let tc_orig = Treecode::new(particles, orig).expect("valid instance");
    let (r_orig, time_orig) = timed(|| tc_orig.potentials());
    let e_orig = sampled_relative_error(particles, &r_orig.values, samples, 1);

    let tc_new = Treecode::new(particles, new).expect("valid instance");
    let (r_new, time_new) = timed(|| tc_new.potentials());
    let e_new = sampled_relative_error(particles, &r_new.values, samples, 1);

    ComparisonRow {
        n: particles.len(),
        err_orig: e_orig.relative_l2,
        err_new: e_new.relative_l2,
        terms_orig: r_orig.stats.terms,
        terms_new: r_new.stats.terms,
        max_degree: r_new.stats.max_degree_used(),
        time_orig,
        time_new,
    }
}

/// Machine-independent parallel-efficiency model: partition the evaluation
/// work units (chunks of `w` proximity-ordered targets, the paper's
/// aggregation) across `threads` workers round-robin and report
/// `total work / (threads × max worker work)` — the efficiency an idealised
/// machine would achieve given this work decomposition.
#[must_use]
pub fn load_balance_efficiency(per_chunk_work: &[u64], threads: usize) -> f64 {
    assert!(threads >= 1);
    let mut worker = vec![0u64; threads];
    for (i, &w) in per_chunk_work.iter().enumerate() {
        worker[i % threads] += w;
    }
    let total: u64 = worker.iter().sum();
    let max = *worker.iter().max().unwrap_or(&1);
    if max == 0 {
        return 1.0;
    }
    total as f64 / (threads as f64 * max as f64)
}

/// Per-chunk work (terms + direct pairs) of an evaluation, re-derived by
/// running the evaluation chunk-by-chunk.
#[must_use]
pub fn per_chunk_work(tc: &Treecode, chunk: usize) -> Vec<u64> {
    let particles = tc.particles().to_vec();
    let n = particles.len();
    let mut works = Vec::with_capacity(n / chunk + 1);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        let pts: Vec<_> = particles[start..end].iter().map(|p| p.position).collect();
        let r = tc.potentials_at(&pts);
        works.push(r.stats.work());
        start = end;
    }
    works
}

/// Formats a stats line for harness output.
#[must_use]
pub fn stats_line(stats: &EvalStats) -> String {
    format!(
        "interactions/target = {:.1}, direct pairs = {}, max degree = {}",
        stats.interactions_per_target(),
        stats.direct_pairs,
        stats.max_degree_used()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_balance_extremes() {
        // perfectly even work
        let even = vec![10u64; 16];
        assert!((load_balance_efficiency(&even, 4) - 1.0).abs() < 1e-12);
        // one hot chunk among idle ones
        let skew = vec![100, 0, 0, 0];
        let e = load_balance_efficiency(&skew, 4);
        assert!((e - 0.25).abs() < 1e-12);
        // single thread is always perfectly efficient
        assert_eq!(load_balance_efficiency(&skew, 1), 1.0);
    }

    #[test]
    fn comparison_row_smoke() {
        let ps = structured_instance(2000);
        let row = compare_methods(
            &ps,
            TreecodeParams::fixed(4, 0.7),
            TreecodeParams::adaptive(4, 0.7),
            100,
        );
        assert_eq!(row.n, 2000);
        assert!(row.err_orig > 0.0 && row.err_new > 0.0);
        assert!(row.terms_new >= row.terms_orig / 2);
    }
}
