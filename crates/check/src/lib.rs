//! mbt-check: a loom-style concurrency model checker for the engine's
//! lock-free core.
//!
//! The workspace's least-verified code is its concurrency layer: the
//! seqlock span ring in `mbt-obs`, and the plan cache's single-flight
//! slot, the leader/follower batcher, and the admission gate in
//! `mbt-engine`. Their correctness rests on hand-picked atomic
//! `Ordering`s and condvar protocols that ordinary tests cannot falsify —
//! the OS scheduler only ever shows a few interleavings, and TSan only
//! sees the ones it happens to run.
//!
//! This crate closes that gap with two pieces (DESIGN.md §13):
//!
//! * [`sync`] — a **facade** over `std::sync` (`AtomicU64`, `AtomicUsize`,
//!   `Mutex`, `Condvar`, `Arc`, …). In a normal build it re-exports the
//!   std types verbatim: zero cost, zero behaviour change. Under the
//!   `check` feature the same names resolve to instrumented versions
//!   whose every operation is a scheduling point of the model checker.
//!   Production crates (`mbt-obs`, `mbt-engine`) import their primitives
//!   from here — enforced by `cargo xtask lint`'s `sync` pass — so the
//!   checker can never silently lose coverage.
//!
//! * [`sched`] + [`model`] (only under `check`) — a deterministic DFS
//!   **explorer**: model threads run as real OS threads but exactly one
//!   is ever unblocked, and at every instrumented operation the scheduler
//!   decides (a) which thread runs next, under a configurable preemption
//!   bound, and (b) for non-SeqCst atomic loads, *which* store in the
//!   location's modification order is read — release/acquire edges and
//!   per-location coherence are tracked with vector clocks, so a
//!   `Release` publish demoted to `Relaxed` genuinely lets readers
//!   observe stale values. Every decision is recorded; a failing run
//!   prints its schedule string, and [`sched::replay`] re-executes it.
//!   Deadlocks (every live thread blocked), livelocks (step budget
//!   exhausted), and model-thread panics that no `join` consumed are all
//!   reported as failures with their schedule.
//!
//! # Writing a model
//!
//! ```ignore
//! // tests/my_model.rs — gated on the `check` feature
//! use mbt_check::{model, sched};
//!
//! sched::check(|| {
//!     let ring = std::sync::Arc::new(mbt_obs::Ring::<2>::new(1));
//!     let w = {
//!         let ring = ring.clone();
//!         model::spawn(move || { ring.push([1, 2]); })
//!     };
//!     for [a, b] in ring.snapshot() {
//!         assert_eq!(b, 2 * a); // torn reads would break this
//!     }
//!     w.join().unwrap();
//! });
//! ```
//!
//! The model body is itself thread 0; [`model::spawn`]/`join` mirror
//! `std::thread`. `check` panics on the first failing interleaving,
//! printing a schedule string that [`sched::replay`] accepts.
//!
//! # What the memory model covers
//!
//! Atomics are modeled with per-location modification order plus
//! release/acquire vector clocks: relaxed loads may return any
//! coherence-permitted stale store (a DFS branch), acquire loads of
//! release stores synchronize, RMWs always read the newest store and
//! continue release sequences. `SeqCst` is approximated by the execution
//! order itself (a `SeqCst` load reads the newest store), which is
//! *stronger* than C++ SC — models cannot observe store-buffering
//! litmus outcomes, so bugs that need an SC fence to fix are out of
//! scope. Mutexes and condvars are modeled exactly (including poisoning
//! via the real std primitives underneath); `Arc` is re-exported
//! unmodeled.

#![forbid(unsafe_code)]

#[cfg(feature = "check")]
pub mod model;
#[cfg(feature = "check")]
pub mod sched;
#[cfg(feature = "check")]
mod sync_impl;

/// The facade production code imports its concurrency primitives from.
///
/// Normal builds: verbatim `std::sync` re-exports. Under the `check`
/// feature: instrumented types with the same API surface.
pub mod sync {
    #[cfg(not(feature = "check"))]
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    #[cfg(feature = "check")]
    pub use crate::sync_impl::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    // Unmodeled in check mode (documented in the crate docs): `Arc`'s
    // reference-count races and `OnceLock`'s initialization race are
    // std's problem, not this workspace's protocol logic.
    pub use std::sync::{Arc, LockResult, OnceLock, PoisonError};

    /// Atomic types and the `Ordering` vocabulary.
    pub mod atomic {
        #[cfg(not(feature = "check"))]
        pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

        #[cfg(feature = "check")]
        pub use crate::sync_impl::{AtomicU64, AtomicUsize, Ordering};
    }
}
