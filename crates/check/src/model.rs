//! Model-thread spawn/join (only available under the `check` feature).
//!
//! Mirrors `std::thread`: [`spawn`] starts a model thread (a real OS
//! thread, gated by the scheduler), [`JoinHandle::join`] blocks the
//! calling model thread until it finishes and returns `Err` if it
//! panicked — which makes a *joined* panic a legitimate modeled outcome
//! (e.g. the builder-panic liveness models), while an unjoined panic
//! fails the execution.

use std::sync::{Arc, Mutex, PoisonError};

use crate::sched::{self, ctx, Block};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread running `f`. Must be called from inside a model
/// (the body of [`crate::sched::check`] or another model thread); spawn
/// synchronizes-with the start of the child, as in std.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let c = ctx().expect("model::spawn called outside a model execution"); // lint: allow(panic, misuse of the checker harness outside a model is a programmer error)
    let tid = c.exec.register_child(c.tid);
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    sched::spawn_model_thread(&c.exec, tid, move || {
        let out = f();
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    });
    // Starting the child is itself a scheduling point: the child may run
    // before the parent's next instruction.
    c.exec.yield_point(c.tid);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish. Returns its value, or `Err` with
    /// the panic message if it panicked.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let c = ctx().expect("JoinHandle::join called outside a model execution"); // lint: allow(panic, misuse of the checker harness outside a model is a programmer error)
        while !c.exec.try_reap(self.tid) {
            c.exec.block_on(c.tid, Block::Join(self.tid));
        }
        // join synchronizes-with the end of the thread.
        let mut clock = c.exec.clock(c.tid);
        clock.join(&c.exec.clock(self.tid));
        c.exec.set_clock(c.tid, clock);
        let out = self
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match out {
            Some(v) => Ok(v),
            None => {
                let msg = c
                    .exec
                    .panic_message(self.tid)
                    .unwrap_or_else(|| "model thread produced no value".to_string());
                Err(Box::new(msg))
            }
        }
    }
}
