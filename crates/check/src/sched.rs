//! The deterministic DFS explorer.
//!
//! One *execution* runs the model once under a fully controlled schedule:
//! model threads are real OS threads, but the scheduler keeps exactly one
//! unblocked at any moment, and every instrumented operation (atomic op,
//! mutex acquire, condvar wait/notify, spawn/join) first asks the
//! scheduler which thread proceeds. Each such *decision* — and each
//! choice of which store a non-SeqCst atomic load reads — is appended to
//! a trace. The explorer then backtracks depth-first over the trace:
//! the deepest decision with an unexplored alternative is bumped and the
//! prefix replayed, until the whole (preemption-bounded) space is
//! exhausted or a failure is found.
//!
//! Failures — an assertion panic no `join` consumed, a deadlock (every
//! live thread blocked), a livelock (step budget exhausted) — carry the
//! schedule string of the failing execution; [`replay`] re-runs exactly
//! that interleaving for debugging.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Model-thread capacity of one execution (vector-clock width).
pub const MAX_THREADS: usize = 8;

/// A vector clock over model threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VClock(pub [u32; MAX_THREADS]);

impl VClock {
    /// The all-zero clock.
    pub const ZERO: VClock = VClock([0; MAX_THREADS]);

    /// Pointwise maximum.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// Why a thread is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// Waiting to acquire the mutex at this address.
    Mutex(usize),
    /// Parked on the condvar at this address; `timeout` waits may be
    /// scheduled directly (modeling their timeout firing).
    Cond { addr: usize, timeout: bool },
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(Block),
    Finished,
}

/// One recorded decision: `chosen` out of `alternatives`.
#[derive(Debug, Clone, Copy)]
struct Choice {
    chosen: u32,
    alternatives: u32,
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum forced preemptions per execution (`None` = unbounded).
    /// Voluntary blocking never counts against the bound.
    pub preemption_bound: Option<usize>,
    /// Instrumented-operation budget per execution; exceeding it is
    /// reported as a livelock.
    pub max_steps: usize,
    /// Execution budget for the whole exploration; exceeding it fails
    /// loudly rather than silently truncating coverage.
    pub max_executions: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_steps: 20_000,
            max_executions: 400_000,
        }
    }
}

/// A failing interleaving.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (deadlock, livelock, or the panic message).
    pub message: String,
    /// The decision string of the failing execution; feed to [`replay`].
    pub schedule: String,
    /// Executions run before the failure surfaced.
    pub executions: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model check failed after {} execution(s): {}\n  replay schedule: {}",
            self.executions, self.message, self.schedule
        )
    }
}

/// A completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Interleavings explored (complete under the preemption bound).
    pub executions: usize,
}

/// Internal panic payload used to unwind model threads when an execution
/// aborts (failure found elsewhere); never surfaces to user code.
pub(crate) struct SchedAbort;

struct SchedState {
    threads: Vec<TState>,
    clocks: Vec<VClock>,
    /// The one thread allowed to run.
    current: usize,
    /// Set when a timeout-capable condvar waiter was scheduled directly
    /// (its wait returns timed-out rather than notified).
    timed_out: Vec<bool>,
    /// Panic payload description per finished thread, if it panicked.
    panicked: Vec<Option<String>>,
    /// Whether some `join` consumed the thread's result.
    joined: Vec<bool>,
    live: usize,
    replay: Vec<u32>,
    trace: Vec<Choice>,
    preemptions: usize,
    steps: usize,
    failure: Option<String>,
    aborting: bool,
}

pub(crate) struct Execution {
    cfg: Config,
    st: Mutex<SchedState>,
    cv: Condvar,
    /// OS handles of every model thread, reaped by the controller.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The executing model thread's identity, stored thread-locally.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

/// The active model-thread context, if this OS thread is part of an
/// execution.
pub(crate) fn ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(new: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = new);
}

impl Execution {
    fn new(cfg: Config, replay: Vec<u32>) -> Execution {
        Execution {
            cfg,
            st: Mutex::new(SchedState {
                threads: Vec::new(),
                clocks: Vec::new(),
                current: 0,
                timed_out: Vec::new(),
                panicked: Vec::new(),
                joined: Vec::new(),
                live: 0,
                replay,
                trace: Vec::new(),
                preemptions: 0,
                steps: 0,
                failure: None,
                aborting: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new model thread; returns its id. Spawn
    /// synchronizes-with thread start (child inherits the parent clock).
    fn register(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model exceeds MAX_THREADS = {MAX_THREADS}"
        );
        let clock = match parent {
            Some(p) => {
                st.clocks[p].0[p] += 1;
                st.clocks[p]
            }
            None => VClock::ZERO,
        };
        st.threads.push(TState::Runnable);
        st.clocks.push(clock);
        st.timed_out.push(false);
        st.panicked.push(None);
        st.joined.push(false);
        st.live += 1;
        tid
    }

    /// [`register`](Self::register) for a child of `parent`
    /// (`model::spawn`).
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        self.register(Some(parent))
    }

    /// The panic message thread `tid` finished with, if any.
    pub(crate) fn panic_message(&self, tid: usize) -> Option<String> {
        self.lock().panicked[tid].clone()
    }

    /// One decision: `chosen ∈ 0..alternatives`, replayed from the prefix
    /// when available, recorded always.
    fn decide(st: &mut SchedState, alternatives: u32) -> u32 {
        debug_assert!(alternatives > 0);
        let pos = st.trace.len();
        let chosen = if pos < st.replay.len() {
            st.replay[pos].min(alternatives - 1)
        } else {
            0
        };
        st.trace.push(Choice {
            chosen,
            alternatives,
        });
        chosen
    }

    /// A pure value decision (which store a load reads); not a scheduling
    /// point.
    pub(crate) fn decide_value(&self, alternatives: u32) -> u32 {
        let mut st = self.lock();
        Self::decide(&mut st, alternatives)
    }

    /// This thread's vector clock.
    pub(crate) fn clock(&self, tid: usize) -> VClock {
        self.lock().clocks[tid]
    }

    pub(crate) fn set_clock(&self, tid: usize, clock: VClock) {
        self.lock().clocks[tid] = clock;
    }

    /// Threads eligible to be scheduled next: every `Runnable` thread plus
    /// condvar waiters whose wait carries a timeout (scheduling one models
    /// its timeout firing).
    fn candidates(st: &SchedState) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t, TState::Runnable)
                    || matches!(t, TState::Blocked(Block::Cond { timeout: true, .. }))
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn fail(&self, st: &mut SchedState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Picks and installs the next thread to run. `from_runnable` is the
    /// yielding thread when it remains runnable (preemption accounting).
    fn schedule(&self, st: &mut SchedState, from_runnable: Option<usize>) {
        if st.aborting {
            return;
        }
        let mut cands = Self::candidates(st);
        if cands.is_empty() {
            if st.live > 0 {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        TState::Blocked(b) => Some(format!("thread {i} on {b:?}")),
                        _ => None,
                    })
                    .collect();
                self.fail(st, format!("deadlock: {}", blocked.join(", ")));
            }
            return;
        }
        // Preemption bounding: keeping the yielding thread is free; picking
        // another while it could continue costs one preemption.
        if let (Some(cur), Some(bound)) = (from_runnable, self.cfg.preemption_bound) {
            if st.preemptions >= bound && cands.contains(&cur) {
                cands = vec![cur];
            }
        }
        let chosen = cands[Self::decide(st, cands.len() as u32) as usize];
        if let Some(cur) = from_runnable {
            if chosen != cur {
                st.preemptions += 1;
            }
        }
        if let TState::Blocked(Block::Cond { timeout: true, .. }) = st.threads[chosen] {
            st.threads[chosen] = TState::Runnable;
            st.timed_out[chosen] = true;
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Parks until this thread holds the token; panics with [`SchedAbort`]
    /// if the execution aborted meanwhile.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, SchedState>,
        tid: usize,
    ) -> MutexGuard<'a, SchedState> {
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.aborting {
            drop(st);
            // A thread that is already unwinding reaches scheduling
            // points from its drop guards; panicking again here would
            // double-panic and abort the whole process. The execution's
            // verdict is already recorded — let the thread finish its
            // teardown without exclusivity instead.
            if std::thread::panicking() {
                return self.lock();
            }
            std::panic::panic_any(SchedAbort);
        }
        st
    }

    fn charge_step(&self, st: &mut SchedState) {
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            self.fail(
                st,
                format!("livelock: step budget ({}) exhausted", self.cfg.max_steps),
            );
        }
    }

    /// A scheduling point: the running thread offers to yield.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock();
        self.charge_step(&mut st);
        self.schedule(&mut st, Some(tid));
        let st = self.wait_for_turn(st, tid);
        drop(st);
    }

    /// Blocks the running thread on `block` until another thread wakes it
    /// (or, for timeout-capable condvar waits, until it is scheduled
    /// directly). Returns whether the wake was a timeout.
    pub(crate) fn block_on(&self, tid: usize, block: Block) -> bool {
        let mut st = self.lock();
        self.charge_step(&mut st);
        st.timed_out[tid] = false;
        st.threads[tid] = TState::Blocked(block);
        self.schedule(&mut st, None);
        let mut st = self.wait_for_turn(st, tid);
        st.threads[tid] = TState::Runnable;
        let timed_out = std::mem::replace(&mut st.timed_out[tid], false);
        drop(st);
        timed_out
    }

    /// Marks every thread blocked on `pred` runnable (they still wait to
    /// be scheduled). Not itself a scheduling point.
    pub(crate) fn wake_where(&self, pred: impl Fn(Block) -> bool) {
        let mut st = self.lock();
        for t in &mut st.threads {
            if let TState::Blocked(b) = *t {
                if pred(b) {
                    *t = TState::Runnable;
                }
            }
        }
    }

    /// Wakes exactly one condvar waiter, chosen by a decision when several
    /// are parked. Returns whether any waiter existed.
    pub(crate) fn wake_one_cond(&self, addr: usize) -> bool {
        let mut st = self.lock();
        let waiting: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(
                |(_, t)| matches!(t, TState::Blocked(Block::Cond { addr: a, .. }) if *a == addr),
            )
            .map(|(i, _)| i)
            .collect();
        if waiting.is_empty() {
            return false;
        }
        let pick = if waiting.len() == 1 {
            0
        } else {
            Self::decide(&mut st, waiting.len() as u32) as usize
        };
        st.threads[waiting[pick]] = TState::Runnable;
        true
    }

    /// Whether thread `target` has finished; marks its result consumed
    /// when it has.
    pub(crate) fn try_reap(&self, target: usize) -> bool {
        let mut st = self.lock();
        if st.threads[target] == TState::Finished {
            st.joined[target] = true;
            true
        } else {
            false
        }
    }

    /// Records the end of a model thread and passes the token on.
    pub(crate) fn finish(&self, tid: usize, panicked: Option<String>) {
        let mut st = self.lock();
        st.threads[tid] = TState::Finished;
        st.panicked[tid] = panicked;
        st.live -= 1;
        for t in &mut st.threads {
            if let TState::Blocked(Block::Join(target)) = *t {
                if target == tid {
                    *t = TState::Runnable;
                }
            }
        }
        if st.live == 0 {
            self.cv.notify_all();
        } else {
            self.schedule(&mut st, None);
        }
    }

    pub(crate) fn add_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

/// Formats a trace as the schedule string shown in failures.
fn schedule_string(trace: &[Choice]) -> String {
    let parts: Vec<String> = trace.iter().map(|c| c.chosen.to_string()).collect();
    parts.join(",")
}

/// Parses a schedule string back into a replay prefix.
fn parse_schedule(s: &str) -> Vec<u32> {
    s.split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| p.trim().parse::<u32>().unwrap_or(0))
        .collect()
}

struct Outcome {
    trace: Vec<Choice>,
    failure: Option<String>,
}

/// Runs the model once under `replay`, returning its trace and failure.
fn run_once(cfg: &Config, replay: Vec<u32>, model: &Arc<dyn Fn() + Send + Sync>) -> Outcome {
    let exec = Arc::new(Execution::new(cfg.clone(), replay));
    let tid = exec.register(None);
    debug_assert_eq!(tid, 0);
    spawn_model_thread(&exec, tid, {
        let model = Arc::clone(model);
        move || model()
    });

    // The controller waits for every model thread to finish, then reaps
    // the OS threads (no more can be spawned once `live` hits zero).
    {
        let mut st = exec.lock();
        while st.live > 0 {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    loop {
        let handle = exec
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }

    let mut st = exec.lock();
    // A panic that no join() consumed is a model failure (assertion
    // failures in the model body land here: thread 0 is never joined).
    if st.failure.is_none() {
        for tid in 0..st.threads.len() {
            if let Some(msg) = &st.panicked[tid] {
                if !st.joined[tid] {
                    let msg = format!("thread {tid} panicked: {msg}");
                    st.failure = Some(msg);
                    break;
                }
            }
        }
    }
    Outcome {
        trace: std::mem::take(&mut st.trace),
        failure: st.failure.clone(),
    }
}

/// Spawns one model thread: it parks until first scheduled, runs `f`
/// under `catch_unwind`, and hands its token back via `finish`.
pub(crate) fn spawn_model_thread(
    exec: &Arc<Execution>,
    tid: usize,
    f: impl FnOnce() + Send + 'static,
) {
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("mbt-check-{tid}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec2),
                tid,
            }));
            // Park until scheduled for the first time.
            let first = catch_unwind(AssertUnwindSafe(|| {
                let st = exec2.lock();
                let st = exec2.wait_for_turn(st, tid);
                drop(st);
            }));
            let result = match first {
                Ok(()) => catch_unwind(AssertUnwindSafe(f)),
                Err(abort) => Err(abort),
            };
            let panicked = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.is::<SchedAbort>() {
                        None // internal unwind, not a model panic
                    } else {
                        // as_ref, not &payload: coercing `&Box<dyn Any>`
                        // would wrap the Box itself as the Any
                        Some(describe_panic(payload.as_ref()))
                    }
                }
            };
            exec2.finish(tid, panicked);
            set_ctx(None);
        })
        .expect("spawn model thread"); // lint: allow(panic, OS refusing to spawn a checker thread is unrecoverable in a test harness)
    exec.add_handle(handle);
}

pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Exhaustively explores `model` under `cfg`.
///
/// Returns the first failing interleaving as `Err`, or a [`Report`] once
/// the (preemption-bounded) schedule space is exhausted.
pub fn explore(cfg: &Config, model: impl Fn() + Send + Sync + 'static) -> Result<Report, Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut prefix: Vec<u32> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= cfg.max_executions,
            "state space exceeds max_executions = {} — shrink the model or raise the budget",
            cfg.max_executions
        );
        let outcome = run_once(cfg, prefix.clone(), &model);
        if let Some(message) = outcome.failure {
            return Err(Failure {
                message,
                schedule: schedule_string(&outcome.trace),
                executions,
            });
        }
        // Backtrack: bump the deepest decision with an unexplored branch.
        let mut trace = outcome.trace;
        loop {
            match trace.pop() {
                None => return Ok(Report { executions }),
                Some(c) if c.chosen + 1 < c.alternatives => {
                    prefix = trace.iter().map(|c| c.chosen).collect();
                    prefix.push(c.chosen + 1);
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

/// [`explore`] with default [`Config`]; panics on failure, printing the
/// schedule string.
pub fn check(model: impl Fn() + Send + Sync + 'static) -> Report {
    match explore(&Config::default(), model) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"), // lint: allow(panic, check() exists to panic the enclosing test with the failing schedule)
    }
}

/// Re-runs `model` once under the given schedule string (as printed by a
/// [`Failure`]); returns the failure it reproduces, if any.
pub fn replay(schedule: &str, model: impl Fn() + Send + Sync + 'static) -> Option<Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let cfg = Config {
        // replays follow the recorded decisions; bounds must not re-shrink
        // the candidate sets mid-replay
        preemption_bound: None,
        ..Config::default()
    };
    let outcome = run_once(&cfg, parse_schedule(schedule), &model);
    outcome.failure.map(|message| Failure {
        message,
        schedule: schedule_string(&outcome.trace),
        executions: 1,
    })
}
