//! Instrumented `sync` primitives (compiled only under the `check`
//! feature; the facade in `lib.rs` re-exports these in place of std).
//!
//! Each atomic keeps its full per-location modification order (a list of
//! stores with writer timestamps and release messages). Loads, stores,
//! RMWs, mutex acquires, and condvar waits are all scheduling points of
//! [`crate::sched`]; non-SeqCst loads additionally branch over every
//! coherence-permitted store, so relaxed readers genuinely observe stale
//! values when the happens-before edges allow it.
//!
//! Outside a model (no active execution on this OS thread) every type
//! falls back to plain sequential behaviour backed by the real std
//! primitives, so instrumented builds still work in ordinary tests.

use std::sync::PoisonError;

use crate::sched::{ctx, Block, Ctx, VClock, MAX_THREADS};

/// Memory ordering vocabulary, mirroring `std::sync::atomic::Ordering`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    Relaxed,
    Release,
    Acquire,
    AcqRel,
    SeqCst,
}

impl Ordering {
    fn is_acquire(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn is_release(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }
}

/// One entry in a location's modification order.
#[derive(Debug, Clone, Copy)]
struct Store {
    val: u64,
    /// Writer thread and its clock component after the store (used for
    /// coherence floors: a reader that knows of this store may not read
    /// anything older).
    tid: usize,
    tstamp: u32,
    /// The release message an acquire load of this store joins.
    msg: VClock,
}

/// Modification-order state of one atomic location. Index 0 of the
/// conceptual order is the initial value (visible to everyone, empty
/// message); `stores[i]` is order index `i + 1`.
#[derive(Debug)]
struct LocState {
    init: u64,
    stores: Vec<Store>,
    /// Newest order index each thread has read or written (coherence).
    last_read: [usize; MAX_THREADS],
}

impl LocState {
    const fn new(init: u64) -> LocState {
        LocState {
            init,
            stores: Vec::new(),
            last_read: [0; MAX_THREADS],
        }
    }

    /// Number of entries in the modification order (incl. the initial
    /// value).
    fn len(&self) -> usize {
        self.stores.len() + 1
    }

    fn val(&self, idx: usize) -> u64 {
        if idx == 0 {
            self.init
        } else {
            self.stores[idx - 1].val
        }
    }

    fn msg(&self, idx: usize) -> VClock {
        if idx == 0 {
            VClock::ZERO
        } else {
            self.stores[idx - 1].msg
        }
    }

    /// Oldest order index `reader` may legally read: it cannot go behind
    /// its own coherence floor, nor behind any store it already knows of
    /// via happens-before.
    fn floor(&self, reader: usize, clock: &VClock) -> usize {
        let mut floor = self.last_read[reader];
        for (i, s) in self.stores.iter().enumerate() {
            if clock.0[s.tid] >= s.tstamp {
                floor = floor.max(i + 1);
            }
        }
        floor
    }
}

/// The shared implementation behind [`AtomicU64`] / [`AtomicUsize`].
#[derive(Debug)]
struct AtomicCore {
    loc: std::sync::Mutex<LocState>,
}

impl AtomicCore {
    const fn new(init: u64) -> AtomicCore {
        AtomicCore {
            loc: std::sync::Mutex::new(LocState::new(init)),
        }
    }

    fn with_loc<R>(&self, f: impl FnOnce(&mut LocState) -> R) -> R {
        let mut loc = self.loc.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut loc)
    }

    fn load(&self, order: Ordering) -> u64 {
        let Some(c) = ctx() else {
            return self.with_loc(|loc| loc.val(loc.len() - 1));
        };
        c.exec.yield_point(c.tid);
        let clock = c.exec.clock(c.tid);
        // Pick the order index to read: SeqCst reads the newest store
        // (the model's strong SC approximation); weaker loads branch over
        // every coherence-permitted entry.
        let (val, msg) = self.with_loc(|loc| {
            let newest = loc.len() - 1;
            let idx = if order == Ordering::SeqCst {
                newest
            } else {
                let floor = loc.floor(c.tid, &clock);
                if floor == newest {
                    newest
                } else {
                    let span = (newest - floor + 1) as u32;
                    floor + c.exec.decide_value(span) as usize
                }
            };
            loc.last_read[c.tid] = loc.last_read[c.tid].max(idx);
            (loc.val(idx), loc.msg(idx))
        });
        if order.is_acquire() {
            let mut clock = clock;
            clock.join(&msg);
            c.exec.set_clock(c.tid, clock);
        }
        val
    }

    fn store(&self, val: u64, order: Ordering) {
        let Some(c) = ctx() else {
            self.with_loc(|loc| {
                loc.stores.push(Store {
                    val,
                    tid: 0,
                    tstamp: 0,
                    msg: VClock::ZERO,
                });
            });
            return;
        };
        c.exec.yield_point(c.tid);
        let mut clock = c.exec.clock(c.tid);
        clock.0[c.tid] += 1;
        c.exec.set_clock(c.tid, clock);
        let msg = if order.is_release() {
            clock
        } else {
            VClock::ZERO
        };
        self.with_loc(|loc| {
            loc.stores.push(Store {
                val,
                tid: c.tid,
                tstamp: clock.0[c.tid],
                msg,
            });
            loc.last_read[c.tid] = loc.len() - 1;
        });
    }

    /// Read-modify-write: always reads the newest store (as C++ requires)
    /// and continues any release sequence it lands in.
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let Some(c) = ctx() else {
            return self.with_loc(|loc| {
                let old = loc.val(loc.len() - 1);
                loc.stores.push(Store {
                    val: f(old),
                    tid: 0,
                    tstamp: 0,
                    msg: VClock::ZERO,
                });
                old
            });
        };
        c.exec.yield_point(c.tid);
        let mut clock = c.exec.clock(c.tid);
        clock.0[c.tid] += 1;
        let (old, msg_in) = self.with_loc(|loc| {
            let newest = loc.len() - 1;
            (loc.val(newest), loc.msg(newest))
        });
        if order.is_acquire() {
            clock.join(&msg_in);
        }
        c.exec.set_clock(c.tid, clock);
        // A release sequence headed by an earlier release store continues
        // through this RMW whatever its own ordering.
        let mut msg = msg_in;
        if order.is_release() {
            msg.join(&clock);
        }
        self.with_loc(|loc| {
            loc.stores.push(Store {
                val: f(old),
                tid: c.tid,
                tstamp: clock.0[c.tid],
                msg,
            });
            loc.last_read[c.tid] = loc.len() - 1;
        });
        old
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let Some(c) = ctx() else {
            return self.with_loc(|loc| {
                let old = loc.val(loc.len() - 1);
                if old == current {
                    loc.stores.push(Store {
                        val: new,
                        tid: 0,
                        tstamp: 0,
                        msg: VClock::ZERO,
                    });
                    Ok(old)
                } else {
                    Err(old)
                }
            });
        };
        c.exec.yield_point(c.tid);
        let (old, msg_in) = self.with_loc(|loc| {
            let newest = loc.len() - 1;
            (loc.val(newest), loc.msg(newest))
        });
        if old == current {
            let mut clock = c.exec.clock(c.tid);
            clock.0[c.tid] += 1;
            if success.is_acquire() {
                clock.join(&msg_in);
            }
            c.exec.set_clock(c.tid, clock);
            let mut msg = msg_in;
            if success.is_release() {
                msg.join(&clock);
            }
            self.with_loc(|loc| {
                loc.stores.push(Store {
                    val: new,
                    tid: c.tid,
                    tstamp: clock.0[c.tid],
                    msg,
                });
                loc.last_read[c.tid] = loc.len() - 1;
            });
            Ok(old)
        } else {
            // Approximation (crate docs): a failed CAS reads the newest
            // store rather than branching over stale ones.
            if failure.is_acquire() {
                let mut clock = c.exec.clock(c.tid);
                clock.join(&msg_in);
                c.exec.set_clock(c.tid, clock);
            }
            self.with_loc(|loc| {
                let newest = loc.len() - 1;
                loc.last_read[c.tid] = loc.last_read[c.tid].max(newest);
            });
            Err(old)
        }
    }
}

/// Instrumented drop-in for `std::sync::atomic::AtomicU64`.
#[derive(Debug)]
pub struct AtomicU64 {
    core: AtomicCore,
}

impl AtomicU64 {
    #[must_use]
    pub const fn new(v: u64) -> AtomicU64 {
        AtomicU64 {
            core: AtomicCore::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> u64 {
        self.core.load(order)
    }

    pub fn store(&self, val: u64, order: Ordering) {
        self.core.store(val, order);
    }

    pub fn swap(&self, val: u64, order: Ordering) -> u64 {
        self.core.rmw(order, |_| val)
    }

    pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
        self.core.rmw(order, |old| old.wrapping_add(val))
    }

    pub fn fetch_sub(&self, val: u64, order: Ordering) -> u64 {
        self.core.rmw(order, |old| old.wrapping_sub(val))
    }

    pub fn fetch_max(&self, val: u64, order: Ordering) -> u64 {
        self.core.rmw(order, |old| old.max(val))
    }

    pub fn fetch_min(&self, val: u64, order: Ordering) -> u64 {
        self.core.rmw(order, |old| old.min(val))
    }

    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.core.compare_exchange(current, new, success, failure)
    }

    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        // The model never fails spuriously.
        self.core.compare_exchange(current, new, success, failure)
    }
}

impl Default for AtomicU64 {
    fn default() -> AtomicU64 {
        AtomicU64::new(0)
    }
}

/// Instrumented drop-in for `std::sync::atomic::AtomicUsize`.
#[derive(Debug)]
pub struct AtomicUsize {
    core: AtomicCore,
}

#[allow(clippy::cast_possible_truncation)]
impl AtomicUsize {
    #[must_use]
    pub const fn new(v: usize) -> AtomicUsize {
        AtomicUsize {
            core: AtomicCore::new(v as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> usize {
        self.core.load(order) as usize
    }

    pub fn store(&self, val: usize, order: Ordering) {
        self.core.store(val as u64, order);
    }

    pub fn swap(&self, val: usize, order: Ordering) -> usize {
        self.core.rmw(order, |_| val as u64) as usize
    }

    pub fn fetch_add(&self, val: usize, order: Ordering) -> usize {
        self.core.rmw(order, |old| old.wrapping_add(val as u64)) as usize
    }

    pub fn fetch_sub(&self, val: usize, order: Ordering) -> usize {
        self.core.rmw(order, |old| old.wrapping_sub(val as u64)) as usize
    }

    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.core
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

impl Default for AtomicUsize {
    fn default() -> AtomicUsize {
        AtomicUsize::new(0)
    }
}

/// Per-mutex model bookkeeping, separate from the user payload.
#[derive(Debug)]
struct MutexMeta {
    /// Whether a model thread currently owns the lock.
    held: bool,
    /// Release clock published by the last unlock (acquire edge for the
    /// next owner).
    clock: VClock,
}

/// Instrumented drop-in for `std::sync::Mutex`.
///
/// The model grants exclusivity (only the scheduled thread can win the
/// `held` flag), so the real mutex underneath never contends; it still
/// carries the payload and its poison bit, preserving std's poisoning
/// semantics exactly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    meta: std::sync::Mutex<MutexMeta>,
    inner: std::sync::Mutex<T>,
}

impl Default for MutexMeta {
    fn default() -> MutexMeta {
        MutexMeta {
            held: false,
            clock: VClock::ZERO,
        }
    }
}

impl<T> Mutex<T> {
    #[must_use]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            meta: std::sync::Mutex::new(MutexMeta {
                held: false,
                clock: VClock::ZERO,
            }),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        std::ptr::from_ref(self).cast::<()>() as usize
    }

    fn meta(&self) -> std::sync::MutexGuard<'_, MutexMeta> {
        self.meta.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wins the model-level lock (blocking in the scheduler as needed);
    /// no-op outside a model.
    fn acquire_model(&self, c: &Ctx) {
        loop {
            c.exec.yield_point(c.tid);
            {
                let mut meta = self.meta();
                if !meta.held {
                    meta.held = true;
                    let release = meta.clock;
                    drop(meta);
                    let mut clock = c.exec.clock(c.tid);
                    clock.join(&release);
                    c.exec.set_clock(c.tid, clock);
                    return;
                }
            }
            c.exec.block_on(c.tid, Block::Mutex(self.addr()));
        }
    }

    /// Releases the model-level lock and wakes contenders. Runs from
    /// guard drop, so it must never panic or reschedule.
    fn release_model(&self, c: &Ctx) {
        let clock = c.exec.clock(c.tid);
        {
            let mut meta = self.meta();
            meta.held = false;
            meta.clock.join(&clock);
        }
        let addr = self.addr();
        c.exec.wake_where(move |b| b == Block::Mutex(addr));
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if let Some(c) = ctx() {
            self.acquire_model(&c);
        }
        // Uncontended by construction once the model grants ownership.
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
            })),
        }
    }
}

/// Guard for the instrumented [`Mutex`]; the inner std guard lives in an
/// `Option` so [`Condvar::wait`] can drop and reacquire it.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present") // lint: allow(panic, guard invariant: inner is Some until drop or explicit take)
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present") // lint: allow(panic, guard invariant: inner is Some until drop or explicit take)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the payload lock first, then the model lock, so a woken
        // contender can never observe the std mutex still held.
        self.inner = None;
        if let Some(c) = ctx() {
            self.lock.release_model(&c);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_timeout`] (own type: std's has no public
/// constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented drop-in for `std::sync::Condvar`.
///
/// In a model, waiters park in the scheduler; a wait with a timeout stays
/// *schedulable* — the scheduler picking it models the timeout firing, so
/// timed waits explore both the notified and the timed-out outcome.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self).cast::<()>() as usize
    }

    fn wait_model<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        c: &Ctx,
        timeout: bool,
    ) -> (std::sync::LockResult<MutexGuard<'a, T>>, bool) {
        let lock = guard.lock;
        // Atomically (from the model's perspective — this thread keeps
        // the token throughout) release the mutex and park.
        guard.inner = None;
        lock.release_model(c);
        std::mem::forget(guard); // inner already released; skip double-drop
        let timed_out = c.exec.block_on(
            c.tid,
            Block::Cond {
                addr: self.addr(),
                timeout,
            },
        );
        (lock.lock(), timed_out)
    }

    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        if let Some(c) = ctx() {
            return self.wait_model(guard, &c, false).0;
        }
        self.wait_std(guard)
    }

    fn wait_std<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let inner = guard.inner.take().expect("guard present"); // lint: allow(panic, guard invariant: inner is Some until drop or explicit take)
        std::mem::forget(guard);
        match self.inner.wait(inner) {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(poisoned.into_inner()),
            })),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if let Some(c) = ctx() {
            let (res, timed_out) = self.wait_model(guard, &c, true);
            return match res {
                Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                Err(p) => Err(PoisonError::new((
                    p.into_inner(),
                    WaitTimeoutResult(timed_out),
                ))),
            };
        }
        let lock = guard.lock;
        let inner = {
            let mut guard = guard;
            let inner = guard.inner.take().expect("guard present"); // lint: allow(panic, guard invariant: inner is Some until drop or explicit take)
            std::mem::forget(guard);
            inner
        };
        match self.inner.wait_timeout(inner, dur) {
            Ok((g, t)) => Ok((
                MutexGuard {
                    lock,
                    inner: Some(g),
                },
                WaitTimeoutResult(t.timed_out()),
            )),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        lock,
                        inner: Some(g),
                    },
                    WaitTimeoutResult(t.timed_out()),
                )))
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some(c) = ctx() {
            c.exec.yield_point(c.tid);
            c.exec.wake_one_cond(self.addr());
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(c) = ctx() {
            c.exec.yield_point(c.tid);
            let addr = self.addr();
            c.exec
                .wake_where(move |b| matches!(b, Block::Cond { addr: a, .. } if a == addr));
            return;
        }
        self.inner.notify_all();
    }
}
