//! Litmus tests for the model checker itself: known-good protocols must
//! explore clean, known-bad ones must produce a failure with a
//! replayable schedule.

#![cfg(feature = "check")]

use mbt_check::sync::atomic::{AtomicU64, Ordering};
use mbt_check::sync::Condvar;
use mbt_check::sync::{Arc, Mutex};
use mbt_check::{model, sched};

/// Release/acquire message passing is correct: the reader that sees the
/// flag must also see the data.
#[test]
fn message_passing_release_acquire_passes() {
    let report = sched::check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let w = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            model::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        w.join().unwrap();
    });
    assert!(
        report.executions > 1,
        "should explore multiple interleavings"
    );
}

/// Demoting the publish store to `Relaxed` breaks the protocol — the
/// checker must find the stale read and print a replayable schedule.
#[test]
fn message_passing_relaxed_publish_caught() {
    let model_fn = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let w = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            model::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed); // missing Release
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        w.join().unwrap();
    };
    let failure = sched::explore(&sched::Config::default(), model_fn)
        .expect_err("relaxed publish must be caught");
    assert!(
        failure.message.contains("panicked"),
        "unexpected failure: {failure}"
    );

    // The printed schedule replays to the same failure.
    let replayed =
        sched::replay(&failure.schedule, model_fn).expect("replay must reproduce the failure");
    assert_eq!(replayed.message, failure.message);
}

/// ABBA lock ordering deadlocks; the checker reports which threads are
/// blocked on what.
#[test]
fn abba_deadlock_detected() {
    let failure = sched::explore(&sched::Config::default(), || {
        let m1 = Arc::new(Mutex::new(0u32));
        let m2 = Arc::new(Mutex::new(0u32));
        let t = {
            let (m1, m2) = (Arc::clone(&m1), Arc::clone(&m2));
            model::spawn(move || {
                let _a = m2.lock().unwrap();
                let _b = m1.lock().unwrap();
            })
        };
        {
            let _a = m1.lock().unwrap();
            let _b = m2.lock().unwrap();
        }
        let _ = t.join();
    })
    .expect_err("ABBA must deadlock in some interleaving");
    assert!(failure.message.contains("deadlock"), "got: {failure}");
}

/// Correct condvar usage (predicate re-checked under the mutex) has no
/// lost-wakeup interleaving.
#[test]
fn condvar_predicate_loop_passes() {
    sched::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            model::spawn(move || {
                let (m, cv) = (&pair.0, &pair.1);
                *m.lock().unwrap() = true;
                cv.notify_all();
            })
        };
        let (m, cv) = (&pair.0, &pair.1);
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

/// A timed wait on a condition nobody signals terminates via the modeled
/// timeout instead of deadlocking.
#[test]
fn wait_timeout_fires_instead_of_deadlocking() {
    sched::check(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (g, timed_out) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(timed_out.timed_out());
        drop(g);
    });
}

/// A panic consumed by `join` is a legitimate modeled outcome, not a
/// checker failure.
#[test]
fn joined_panic_is_not_a_failure() {
    sched::check(|| {
        let t = model::spawn(|| panic!("expected"));
        let err = t.join().expect_err("child panicked");
        let msg = err.downcast_ref::<String>().expect("message payload");
        assert!(msg.contains("expected"), "msg was: {msg:?}");
    });
}

/// A model-thread panic that no join consumes fails the execution.
#[test]
fn unjoined_panic_is_a_failure() {
    let failure = sched::explore(&sched::Config::default(), || {
        let _detached = model::spawn(|| panic!("dropped on the floor"));
    })
    .expect_err("unjoined panic must fail");
    assert!(failure.message.contains("panicked"), "got: {failure}");
}

/// Mutual exclusion actually holds under the model: a non-atomic
/// read-modify-write guarded by the mutex never loses an update.
#[test]
fn mutex_counter_is_exact() {
    sched::check(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                model::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}
