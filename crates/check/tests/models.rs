//! The model suite: exhaustive interleaving checks of the engine's real
//! concurrency cores, built against the instrumented facade (this test
//! target only compiles with `--features check`, which flips
//! `mbt_check::sync` to the instrumented primitives for every crate in
//! the build graph — including `mbt-obs` and `mbt-engine`).
//!
//! Each test here explores *production* code, not a re-implementation:
//! the seqlock ring is `mbt_obs::Ring`, single-flight is
//! `mbt_engine::SingleFlight` (what `PlanCache` runs on), batching is
//! `mbt_engine::Combiner` (what `Batcher` runs on). The one local
//! re-implementation — `MiniSeqlock` — exists to prove the checker
//! *catches* a broken ordering, as a fixture.

#![cfg(feature = "check")]

use mbt_check::sync::atomic::{AtomicU64, Ordering};
use mbt_check::sync::Arc;
use mbt_check::{model, sched};
use mbt_engine::{Admission, Combiner, FairGate, Flight, SingleFlight, TenantId};
use mbt_obs::{Histogram, Ring};

// ---------------------------------------------------------------------
// seqlock ring (mbt_obs::Ring)
// ---------------------------------------------------------------------

/// Tear-freedom: a reader snapshotting while a writer republishes slots
/// never observes a record whose words mix two generations. Writers
/// push `[g, !g]` so any torn mix is self-evident.
#[test]
fn ring_snapshot_never_tears() {
    sched::check(|| {
        let ring = Arc::new(Ring::<2>::new(1));
        let w = {
            let ring = Arc::clone(&ring);
            model::spawn(move || {
                // two generations race the reader through the same slot
                let _ = ring.push([1, !1u64]);
                let _ = ring.push([2, !2u64]);
            })
        };
        for words in ring.snapshot() {
            assert_eq!(words[1], !words[0], "torn record: {words:?}");
        }
        w.join().unwrap();
    });
}

/// A quiescent ring (writer joined before the read) snapshots every
/// published record exactly, newest generation winning the slot.
#[test]
fn ring_snapshot_after_join_is_complete() {
    sched::check(|| {
        let ring = Arc::new(Ring::<1>::new(1));
        let w = {
            let ring = Arc::clone(&ring);
            model::spawn(move || {
                let _ = ring.push([7]);
                let _ = ring.push([8]);
            })
        };
        w.join().unwrap();
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1, "capacity-1 ring holds one record");
        assert_eq!(snap[0][0], 8, "newest generation must win the slot");
        assert_eq!(ring.pushed(), 2);
    });
}

// ---------------------------------------------------------------------
// single-flight (mbt_engine::SingleFlight — the PlanCache core)
// ---------------------------------------------------------------------

/// N concurrent cold misses on one key run exactly one build, and every
/// caller ends up with the built value.
#[test]
fn single_flight_runs_one_build() {
    let report = sched::check(|| {
        let sf = Arc::new(SingleFlight::<Option<u64>, u8, u64>::new(None));
        let builds = Arc::new(AtomicU64::new(0));
        let run = |sf: &SingleFlight<Option<u64>, u8, u64>, builds: &AtomicU64| {
            let flight = sf.run(
                0,
                |s| *s,
                |_| {},
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    7
                },
                || unreachable!("build does not panic"),
                |s, v| *s = Some(*v),
            );
            match flight {
                Flight::Hit(v) | Flight::Led(v) | Flight::Joined(v) => assert_eq!(v, 7),
            }
        };
        let t = {
            let (sf, builds) = (Arc::clone(&sf), Arc::clone(&builds));
            model::spawn(move || run(&sf, &builds))
        };
        run(&sf, &builds);
        t.join().unwrap();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert_eq!(
            sf.with_state(|s| *s),
            Some(7),
            "published for the next probe"
        );
    });
    assert!(report.executions > 1, "must explore real interleavings");
}

/// Builder-panic liveness: a leader whose build panics must answer its
/// followers with the substitute value — no interleaving may leave a
/// follower parked forever (the checker's deadlock detection would flag
/// exactly that) — and must publish nothing.
#[test]
fn single_flight_builder_panic_liveness() {
    sched::check(|| {
        let sf = Arc::new(SingleFlight::<Option<u64>, u8, u64>::new(None));
        let t = {
            let sf = Arc::clone(&sf);
            model::spawn(move || {
                let flight = sf.run(
                    0,
                    |s| *s,
                    |_| {},
                    || panic!("builder dies mid-flight"),
                    || 999,
                    |s, v| *s = Some(*v),
                );
                // reachable only by joining the healthy flight (our own
                // build never returns): the panicking leader must not
                // have published anything we could Hit
                match flight {
                    Flight::Hit(v) | Flight::Joined(v) => assert_eq!(v, 5),
                    Flight::Led(_) => unreachable!("this caller's build panics"),
                }
            })
        };
        let flight = sf.run(0, |s| *s, |_| {}, || 5, || 999, |s, v| *s = Some(*v));
        match flight {
            // led our own healthy build, or joined the dead flight and
            // woke with the substitute — never a hang, never a hit on an
            // unpublished value
            Flight::Led(v) => assert_eq!(v, 5),
            Flight::Joined(v) => assert_eq!(v, 999),
            Flight::Hit(_) => unreachable!("nothing was resident before us"),
        }
        // the child either panicked (its own build) or succeeded (joined
        // ours); both are legitimate modeled outcomes
        let _ = t.join();
    });
}

// ---------------------------------------------------------------------
// leader/follower batching (mbt_engine::Combiner — the Batcher core)
// ---------------------------------------------------------------------

/// Racing submitters always all get their own answers: whichever caller
/// becomes leader drains everyone queued, and when a group runs dry and
/// retires, a late arrival leads a fresh group (leader hand-off).
#[test]
fn combiner_hand_off_answers_every_caller() {
    let report = sched::check(|| {
        let c = Arc::new(Combiner::<u8, u64, u64>::new());
        let submit = |c: &Combiner<u8, u64, u64>, payload: u64| {
            let out = c.submit(
                0,
                payload,
                || {},
                |batch| batch.into_iter().map(|p| p * 2).collect(),
                || unreachable!("healthy exec never needs the substitute"),
            );
            assert_eq!(out, payload * 2, "answer must be ours, not a peer's");
        };
        let t1 = {
            let c = Arc::clone(&c);
            model::spawn(move || submit(&c, 10))
        };
        let t2 = {
            let c = Arc::clone(&c);
            model::spawn(move || submit(&c, 20))
        };
        submit(&c, 30);
        t1.join().unwrap();
        t2.join().unwrap();
    });
    assert!(report.executions > 1, "must explore real interleavings");
}

/// Sweep-panic liveness: a leader whose exec panics must answer every
/// follower it drained with the substitute and retire the group — no
/// interleaving may strand a follower, and a later caller must lead a
/// fresh group cleanly.
#[test]
fn combiner_panicking_exec_answers_followers_with_substitute() {
    sched::check(|| {
        let c = Arc::new(Combiner::<u8, u64, u64>::new());
        let t = {
            let c = Arc::clone(&c);
            model::spawn(move || {
                // if this caller leads, its exec dies mid-drain (the
                // thread panic is a legitimate modeled outcome); anyone
                // it drained must still be answered
                let out = c.submit(0, 20, || {}, |_| panic!("exec dies"), || 99);
                // reachable only as a follower of main's healthy sweep
                assert_eq!(out, 40);
            })
        };
        let out = c.submit(
            0,
            10,
            || {},
            |batch| batch.into_iter().map(|p| p * 2).collect(),
            || 99,
        );
        // led our own healthy sweep, or rode the panicking leader's drain
        // and woke with the substitute — never a hang, never a peer's value
        assert!(out == 20 || out == 99, "got {out}");
        let _ = t.join();
        let out = c.submit(
            0,
            3,
            || {},
            |batch| batch.into_iter().map(|p| p * 2).collect(),
            || 99,
        );
        assert_eq!(out, 6, "the dead group must have retired");
    });
}

// ---------------------------------------------------------------------
// weighted-fair admission (mbt_engine::FairGate — the AdmissionGate core)
// ---------------------------------------------------------------------

/// Slot exclusivity and hand-off liveness through a width-1 gate: no
/// interleaving may let two callers hold the slot at once (the direct
/// hand-off re-increments `in_flight` on the waiter's behalf before the
/// lock drops), and no waiter may be stranded by a lost grant (the
/// checker's deadlock detection flags exactly that).
#[test]
fn fair_gate_slot_is_exclusive_and_every_waiter_is_served() {
    let report = sched::check(|| {
        let gate = Arc::new(FairGate::new(1, 4));
        let holders = Arc::new(AtomicU64::new(0));
        let run = |gate: &FairGate, holders: &AtomicU64, tenant: u32| {
            assert!(matches!(
                gate.admit(TenantId(tenant), 1, None),
                Admission::Admitted { .. }
            ));
            assert_eq!(
                holders.fetch_add(1, Ordering::Relaxed),
                0,
                "two callers hold the width-1 gate's slot"
            );
            holders.fetch_sub(1, Ordering::Relaxed);
            gate.release();
        };
        let t1 = {
            let (gate, holders) = (Arc::clone(&gate), Arc::clone(&holders));
            model::spawn(move || run(&gate, &holders, 1))
        };
        let t2 = {
            let (gate, holders) = (Arc::clone(&gate), Arc::clone(&holders));
            model::spawn(move || run(&gate, &holders, 2))
        };
        run(&gate, &holders, 3);
        t1.join().unwrap();
        t2.join().unwrap();
        let (in_flight, queued) = gate.depth();
        assert_eq!((in_flight, queued), (0, 0), "every slot was returned");
    });
    assert!(report.executions > 1, "must explore real interleavings");
}

// ---------------------------------------------------------------------
// stats counters (mbt_obs::Histogram)
// ---------------------------------------------------------------------

/// Concurrent recording loses nothing: count and sum are exact once the
/// writers are joined (the engine's stats path relies on plain Relaxed
/// counters being individually atomic).
#[test]
fn histogram_concurrent_records_are_exact() {
    sched::check(|| {
        let h = Arc::new(Histogram::new());
        let t = {
            let h = Arc::clone(&h);
            model::spawn(move || h.record_ns(100))
        };
        h.record_ns(300);
        t.join().unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_ns, 400);
        assert_eq!(snap.max_ns, 300);
    });
}

// ---------------------------------------------------------------------
// broken-ordering fixture
// ---------------------------------------------------------------------

/// A deliberately miniature seqlock so the publish ordering can be
/// varied: `publish` must be `Release` for a reader that `Acquire`-loads
/// an even sequence to also observe the data store.
struct MiniSeqlock {
    seq: AtomicU64,
    data: AtomicU64,
}

impl MiniSeqlock {
    fn new() -> MiniSeqlock {
        MiniSeqlock {
            seq: AtomicU64::new(0),
            data: AtomicU64::new(0),
        }
    }

    fn write(&self, value: u64, publish: Ordering) {
        self.seq.store(1, Ordering::Relaxed); // odd: write in flight
        self.data.store(value, Ordering::Relaxed);
        self.seq.store(2, publish);
    }

    fn read(&self) -> Option<u64> {
        if self.seq.load(Ordering::Acquire) == 2 {
            Some(self.data.load(Ordering::Relaxed))
        } else {
            None
        }
    }
}

/// With the correct `Release` publish the protocol explores clean.
#[test]
fn seqlock_release_publish_passes() {
    sched::check(|| {
        let sl = Arc::new(MiniSeqlock::new());
        let w = {
            let sl = Arc::clone(&sl);
            model::spawn(move || sl.write(42, Ordering::Release))
        };
        if let Some(v) = sl.read() {
            assert_eq!(v, 42, "published seq must carry the data with it");
        }
        w.join().unwrap();
    });
}

/// Demoting the seqlock publish store to `Relaxed` is exactly the bug
/// the `// ordering:` audit exists to prevent — the checker must find
/// the interleaving where the reader sees the even sequence but stale
/// data, and its printed schedule must replay to the same failure.
#[test]
fn seqlock_relaxed_publish_caught() {
    let broken = || {
        let sl = Arc::new(MiniSeqlock::new());
        let w = {
            let sl = Arc::clone(&sl);
            model::spawn(move || sl.write(42, Ordering::Relaxed)) // BUG
        };
        if let Some(v) = sl.read() {
            assert_eq!(v, 42, "published seq must carry the data with it");
        }
        w.join().unwrap();
    };
    let failure = sched::explore(&sched::Config::default(), broken)
        .expect_err("relaxed publish must be caught");
    assert!(failure.message.contains("panicked"), "got: {failure}");
    let replayed = sched::replay(&failure.schedule, broken)
        .expect("the printed schedule must reproduce the failure");
    assert_eq!(replayed.message, failure.message);
}
