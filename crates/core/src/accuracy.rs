//! Simulation-error measurement.
//!
//! The paper defines the error of a run as the relative norm of the
//! difference between the accurate potential vector `a` and the treecode
//! vector `a'`. Computing `a` exactly is `O(n²)`; for large `n` the
//! standard estimator evaluates the exact potential only at a random sample
//! of targets (`O(m·n)`) and takes the relative 2-norm over the sample.

use mbt_geometry::Particle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Relative 2-norm error `‖a′ − a‖₂ / ‖a‖₂`.
#[must_use]
pub fn relative_error(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    let num: f64 = approx
        .iter()
        .zip(exact)
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    let den: f64 = exact.iter().map(|y| y * y).sum();
    // lint: allow(float_cmp, exact-zero guard: 0/0 is defined as 0 here)
    if den == 0.0 {
        // lint: allow(float_cmp, exact-zero guard: 0/0 is defined as 0 here)
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// A sampled error estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledError {
    /// Relative 2-norm over the sample.
    pub relative_l2: f64,
    /// Largest relative component error over the sample.
    pub max_component: f64,
    /// Number of sampled targets.
    pub samples: usize,
}

/// Estimates the simulation error of `approx` (a per-particle potential
/// vector in the caller's particle order) by exact summation at `samples`
/// randomly chosen particles.
pub fn sampled_relative_error(
    particles: &[Particle],
    approx: &[f64],
    samples: usize,
    seed: u64,
) -> SampledError {
    assert_eq!(particles.len(), approx.len());
    let n = particles.len();
    let m = samples.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: Vec<usize> = if m == n {
        (0..n).collect()
    } else {
        // sample without replacement via partial Fisher–Yates
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx
    };
    chosen.sort_unstable();

    let exact: Vec<f64> = chosen
        .par_iter()
        .map(|&i| {
            let xi = particles[i].position;
            let mut phi = 0.0;
            for (j, p) in particles.iter().enumerate() {
                if j != i {
                    phi += p.charge / p.position.distance(xi);
                }
            }
            phi
        })
        .collect();
    let sampled_approx: Vec<f64> = chosen.iter().map(|&i| approx[i]).collect();
    let max_component = sampled_approx
        .iter()
        .zip(&exact)
        .map(|(a, e)| (a - e).abs() / e.abs().max(1e-300))
        .fold(0.0, f64::max);
    SampledError {
        relative_l2: relative_error(&sampled_approx, &exact),
        max_component,
        samples: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_potentials;
    use crate::params::TreecodeParams;
    use crate::upward::Treecode;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = relative_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((e - 0.1 / 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(relative_error(&[0.0], &[0.0]), 0.0);
        assert!(relative_error(&[1.0], &[0.0]).is_infinite());
    }

    #[test]
    fn full_sample_matches_exact_error() {
        let ps = uniform_cube(400, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 3);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(3, 0.7)).unwrap();
        let approx = tc.potentials().values;
        let exact = direct_potentials(&ps);
        let full = relative_error(&approx, &exact);
        let sampled = sampled_relative_error(&ps, &approx, 400, 0);
        assert_eq!(sampled.samples, 400);
        assert!((sampled.relative_l2 - full).abs() < 1e-12);
    }

    #[test]
    fn subsample_estimates_error_order() {
        let ps = uniform_cube(2000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 5);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.7)).unwrap();
        let approx = tc.potentials().values;
        let exact = direct_potentials(&ps);
        let full = relative_error(&approx, &exact);
        let sampled = sampled_relative_error(&ps, &approx, 300, 1);
        assert!(sampled.samples == 300);
        // order-of-magnitude agreement is all the estimator promises
        assert!(
            sampled.relative_l2 > full * 0.2 && sampled.relative_l2 < full * 5.0,
            "sampled {} vs full {full}",
            sampled.relative_l2
        );
        assert!(sampled.max_component >= sampled.relative_l2 * 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = uniform_cube(500, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 9);
        let approx = vec![0.0; 500];
        let a = sampled_relative_error(&ps, &approx, 50, 42);
        let b = sampled_relative_error(&ps, &approx, 50, 42);
        assert_eq!(a, b);
    }
}
