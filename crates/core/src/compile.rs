//! Interaction-list compilation: the plan/execute evaluation mode
//! ([`EvalMode::Compiled`](crate::params::EvalMode)).
//!
//! The scalar sweep interleaves branchy MAC traversal with short bursts of
//! kernel arithmetic, so neither pipelines. This module splits each
//! per-chunk sweep into two phases:
//!
//! 1. **compile** — run the identical α-MAC traversal for every target in
//!    the chunk (same stack discipline, same [`mac`] decisions, same
//!    per-interaction degrees as `eval.rs`) and record, instead of
//!    evaluating, a flat list of M2P tasks plus near-field P2P source
//!    spans. Spans around a source target's own index are split so the
//!    self-interaction never reaches a kernel.
//! 2. **execute** — bucket the M2P tasks by interaction degree with a
//!    stable counting sort and burn through them in groups of
//!    [`M2P_LANES`] via the batched SoA kernels of `mbt-multipole::batch`;
//!    then stream the P2P spans over the octree's [`ParticleSoa`] mirror.
//!
//! Degree bucketing is what amortizes per-degree table setup
//! ([`BatchWorkspace::prepare_degree`]) over every task in a bucket; the
//! node-id minor key clusters same-expansion tasks into runs the
//! broadcast kernels exploit; and the *stable* sort gives determinism:
//! each target's contributions are summed in (degree, node,
//! traversal-order) order, which depends only on that target's own
//! interaction set — never on chunk width or on which other targets
//! share the chunk.
//!
//! All list buffers live in one [`CompiledScratch`] per parallel chunk
//! and are reused across the chunk's targets, so the steady-state sweep
//! stays allocation-free per interaction (`alloc_count.rs` pins the
//! compiled path to `O(chunks)` allocations, same as the scalar path).

use mbt_geometry::Vec3;
use mbt_multipole::batch::{
    m2p_field_group, m2p_field_group_uniform, m2p_potential_group, m2p_potential_group_uniform,
    p2p_field_span_guarded, p2p_field_span_guarded_f32, p2p_potential_span, p2p_potential_span_f32,
    p2p_potential_span_guarded, p2p_potential_span_guarded_f32, BatchWorkspace, M2pGroup,
    M2P_LANES,
};
use mbt_multipole::{simd, Complex};
use mbt_tree::NodeId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::eval::TargetKind;
use crate::mac::{mac, MacDecision};
use crate::params::Precision;
use crate::stats::EvalStats;
use crate::upward::Treecode;

/// Publishes one sweep's observability spans: the CPU time the parallel
/// chunks spent in list compilation (summed across chunks, so it can
/// exceed the sweep's wall time), then the sweep's own wall-clock span.
/// Both calls are single atomic loads when no recorder is installed.
fn record_compile_and_sweep(compile_ns: u64, sweep_start: std::time::Instant) {
    if compile_ns > 0 {
        mbt_obs::record_duration(
            mbt_obs::Phase::Compile,
            std::time::Duration::from_nanos(compile_ns),
        );
    }
    mbt_obs::record_since(mbt_obs::Phase::Sweep, sweep_start);
}

/// One MAC-accepted far-field interaction: evaluate `node`'s expansion at
/// `target`, truncated to `degree`.
#[derive(Debug, Clone, Copy, Default)]
struct M2pTask {
    /// Chunk-local target index.
    target: u32,
    /// Accepted node.
    node: NodeId,
    /// Interaction degree (already resolved, including `Tolerance`-mode
    /// per-interaction truncation).
    degree: u32,
}

/// One near-field source range `[start, end)` (sorted-particle indices)
/// to sum directly against `target`.
#[derive(Debug, Clone, Copy)]
struct P2pSpan {
    /// Chunk-local target index.
    target: u32,
    /// First sorted source index.
    start: u32,
    /// One past the last sorted source index.
    end: u32,
}

/// The [`TargetKind`] for lane `l` of a chunk starting at `base`:
/// external points for `potentials_at`/`fields_at` sweeps, the source
/// particle at `base + l` otherwise.
fn kind_of(points: Option<&[Vec3]>, base: usize, l: usize) -> TargetKind {
    if points.is_some() {
        TargetKind::External
    } else {
        TargetKind::SourceParticle(base + l)
    }
}

/// Which sweep is being compiled — decides the near-field counting policy
/// (the scalar potential loop counts source-target pairs unconditionally,
/// while external-point and field loops count only non-coincident pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepKind {
    Potential,
    Field,
}

/// Reusable per-chunk compilation state: the traversal stack, the task
/// and span lists, the counting-sort buffers, and the batched-kernel
/// workspace. One `CompiledScratch` is allocated per parallel chunk and
/// cleared (not freed) between targets, mirroring `Scratch` on the scalar
/// path.
struct CompiledScratch {
    stack: Vec<NodeId>,
    /// Secondary stack for per-target resolution of MAC-ambiguous
    /// subtrees (the primary stack holds the shared chunk traversal).
    substack: Vec<NodeId>,
    /// Target positions, indexed by chunk-local target id.
    targets: Vec<Vec3>,
    /// M2P tasks in traversal order (all targets interleaved).
    tasks: Vec<M2pTask>,
    /// Tasks after the stable (degree, node) sort.
    sorted: Vec<M2pTask>,
    /// Counting-sort histogram / write cursors, indexed by degree.
    cursors: Vec<u32>,
    /// Counting-sort histogram / write cursors, indexed by node id.
    node_cursors: Vec<u32>,
    /// P2P spans in traversal order.
    spans: Vec<P2pSpan>,
    /// Lane-major scratch for the batched M2P kernels.
    bws: BatchWorkspace,
}

impl CompiledScratch {
    /// Scratch pre-sized so a typical chunk compiles without regrowth:
    /// the stack gets the same `8 · (height + 1)` bound as the scalar
    /// `Scratch`, and the lists get a starting capacity proportional to
    /// the chunk width (they grow monotonically if a chunk needs more).
    fn new(height: usize, chunk: usize) -> CompiledScratch {
        CompiledScratch {
            stack: Vec::with_capacity(8 * (height + 1)),
            substack: Vec::with_capacity(8 * (height + 1)),
            targets: Vec::with_capacity(chunk),
            tasks: Vec::with_capacity(chunk * 8),
            sorted: Vec::with_capacity(chunk * 8),
            cursors: Vec::with_capacity(64),
            node_cursors: Vec::new(), // lint: allow(alloc, scratch construction, once per chunk)
            spans: Vec::with_capacity(chunk * 4),
            bws: BatchWorkspace::new(),
        }
    }

    /// Stable two-key counting sort of `tasks` into `sorted`, ordered by
    /// `(degree, node, emission order)` — LSD radix: a stable pass on the
    /// node id followed by a stable pass on the degree. Degree-major
    /// order is what amortizes per-degree table setup; the node-id minor
    /// key clusters every task against the same expansion into one run,
    /// which is what lets the executor use the broadcast (uniform-node)
    /// kernels for nearly all groups. Determinism: both keys are
    /// per-task properties, so each target's accumulation order is a
    /// function of its own interaction set only — independent of chunk
    /// width and of which other targets share the chunk.
    fn bucket_by_degree(&mut self, max_degree: usize, node_count: usize) {
        self.node_cursors.clear();
        self.node_cursors.resize(node_count, 0);
        for t in &self.tasks {
            self.node_cursors[t.node as usize] += 1;
        }
        let mut sum = 0u32;
        for c in &mut self.node_cursors {
            let count = *c;
            *c = sum;
            sum += count;
        }
        self.sorted.clear();
        self.sorted.resize(self.tasks.len(), M2pTask::default());
        for t in &self.tasks {
            let slot = &mut self.node_cursors[t.node as usize];
            self.sorted[*slot as usize] = *t;
            *slot += 1;
        }

        self.cursors.clear();
        self.cursors.resize(max_degree + 1, 0);
        for t in &self.sorted {
            self.cursors[t.degree as usize] += 1;
        }
        // Single-degree chunk (always true in `Fixed` mode): the
        // node-sorted pass already is the (degree, node) order.
        if self.cursors.iter().filter(|&&c| c > 0).count() <= 1 {
            return;
        }
        let mut sum = 0u32;
        for c in &mut self.cursors {
            let count = *c;
            *c = sum;
            sum += count;
        }
        self.tasks.clear();
        self.tasks.resize(self.sorted.len(), M2pTask::default());
        for t in &self.sorted {
            let slot = &mut self.cursors[t.degree as usize];
            self.tasks[*slot as usize] = *t;
            *slot += 1;
        }
        std::mem::swap(&mut self.tasks, &mut self.sorted);
    }
}

impl Treecode {
    /// Compiled-mode potential sweep. `points` selects external targets;
    /// `None` evaluates at the (sorted) source particles with
    /// self-exclusion. Writes into `out` (one slot per target, same
    /// order) and returns the merged counters, which match the scalar
    /// sweep's exactly — the lists are a reordering, not an
    /// approximation.
    pub(crate) fn compiled_potential_sweep(
        &self,
        points: Option<&[Vec3]>,
        out: &mut [f64],
        chunk: usize,
        precision: Precision,
    ) -> EvalStats {
        let sweep_start = std::time::Instant::now();
        let chunk = chunk.max(1);
        let max_degree = self.max_degree();
        let height = self.tree.height();
        let compile_ns = AtomicU64::new(0);
        let chunk_stats: Vec<EvalStats> = out
            .par_chunks_mut(chunk)
            .enumerate()
            .map(|(ci, out_chunk)| {
                let base = ci * chunk;
                let mut cs = CompiledScratch::new(height, out_chunk.len());
                let mut stats = EvalStats::for_targets(out_chunk.len() as u64);
                let compile_start = std::time::Instant::now();
                self.compile_chunk(
                    points,
                    base,
                    out_chunk.len(),
                    SweepKind::Potential,
                    &mut cs,
                    &mut stats,
                );
                cs.bucket_by_degree(max_degree, self.tree.nodes().len());
                // ordering: Relaxed — per-chunk timing accumulator; no data is published through it
                compile_ns.fetch_add(compile_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out_chunk.fill(0.0);
                self.exec_m2p_potential(&mut cs, out_chunk);
                self.exec_p2p_potential(&cs, points.is_none(), precision, out_chunk, &mut stats);
                stats
            })
            .collect(); // lint: allow(alloc, O(chunks) stats per sweep)
        let mut stats = EvalStats::default();
        for s in &chunk_stats {
            stats.merge(s);
        }
        // ordering: Relaxed — reading the timing total after the parallel loop joined
        record_compile_and_sweep(compile_ns.load(Ordering::Relaxed), sweep_start);
        stats
    }

    /// Compiled-mode field sweep — the potential-and-gradient analogue of
    /// [`Treecode::compiled_potential_sweep`].
    pub(crate) fn compiled_field_sweep(
        &self,
        points: Option<&[Vec3]>,
        out: &mut [(f64, Vec3)],
        chunk: usize,
        precision: Precision,
    ) -> EvalStats {
        let sweep_start = std::time::Instant::now();
        let chunk = chunk.max(1);
        let max_degree = self.max_degree();
        let height = self.tree.height();
        let compile_ns = AtomicU64::new(0);
        let chunk_stats: Vec<EvalStats> = out
            .par_chunks_mut(chunk)
            .enumerate()
            .map(|(ci, out_chunk)| {
                let base = ci * chunk;
                let mut cs = CompiledScratch::new(height, out_chunk.len());
                let mut stats = EvalStats::for_targets(out_chunk.len() as u64);
                let compile_start = std::time::Instant::now();
                self.compile_chunk(
                    points,
                    base,
                    out_chunk.len(),
                    SweepKind::Field,
                    &mut cs,
                    &mut stats,
                );
                cs.bucket_by_degree(max_degree, self.tree.nodes().len());
                // ordering: Relaxed — per-chunk timing accumulator; no data is published through it
                compile_ns.fetch_add(compile_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out_chunk.fill((0.0, Vec3::ZERO));
                self.exec_m2p_field(&mut cs, out_chunk);
                self.exec_p2p_field(&cs, precision, out_chunk, &mut stats);
                stats
            })
            .collect(); // lint: allow(alloc, O(chunks) stats per sweep)
        let mut stats = EvalStats::default();
        for s in &chunk_stats {
            stats.merge(s);
        }
        // ordering: Relaxed — reading the timing total after the parallel loop joined
        record_compile_and_sweep(compile_ns.load(Ordering::Relaxed), sweep_start);
        stats
    }

    /// Compiles one chunk of targets with a **shared** traversal: the
    /// chunk's targets are enclosed in a bounding sphere `(c, ρ)` and the
    /// tree is walked once, classifying each node with conservative
    /// chunk-wide MAC bounds:
    ///
    /// * **accept-all** — the α-test holds at the minimum possible target
    ///   distance `max(|c−center|−ρ, 0)`, that distance clears the
    ///   convergence radius, and the node's box is disjoint from the
    ///   chunk's box: every target individually passes [`mac`], so one
    ///   M2P task per target is emitted without per-target tests.
    /// * **open-all** — some MAC condition fails for every possible
    ///   target position (α-test fails at the maximum distance
    ///   `|c−center|+ρ`, or the whole chunk sits inside the convergence
    ///   radius or inside the node's box): every target individually
    ///   opens, so the traversal descends (or emits leaf spans) once.
    /// * otherwise the decision is **ambiguous** and the subtree is
    ///   resolved per target with the exact per-target MAC
    ///   ([`Treecode::compile_subtree`]).
    ///
    /// Because the conservative bounds imply the exact per-target
    /// decision, every target's emitted interaction set — and its DFS
    /// emission *order* — is identical to what its own scalar traversal
    /// produces, for any chunk width. Morton-ordered targets make ρ
    /// small, so the far field (the bulk of MAC tests) is classified
    /// once per chunk instead of once per target.
    fn compile_chunk(
        &self,
        points: Option<&[Vec3]>,
        base: usize,
        len: usize,
        sweep: SweepKind,
        cs: &mut CompiledScratch,
        stats: &mut EvalStats,
    ) {
        debug_assert!(cs.targets.is_empty());
        for k in 0..len {
            let x = match points {
                Some(ps) => ps[base + k],
                None => self.tree.particles()[base + k].position,
            };
            cs.targets.push(x);
        }
        if cs.targets.is_empty() {
            return;
        }
        let mut lo = cs.targets[0];
        let mut hi = cs.targets[0];
        for &x in &cs.targets[1..] {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let c = (lo + hi) * 0.5;
        let rho = (hi - lo).norm() * 0.5;
        let alpha2 = self.params.alpha * self.params.alpha;

        cs.stack.clear();
        cs.stack.push(self.tree.root());
        while let Some(id) = cs.stack.pop() {
            let node = self.tree.node(id);
            let d = node.edge();
            let dist = c.distance(node.center);
            let dist_min = (dist - rho).max(0.0);
            let dist_max = dist + rho;

            let accept_all = d * d <= alpha2 * (dist_min * dist_min)
                && dist_min * dist_min > node.radius * node.radius
                && (node.bbox.max.x < lo.x
                    || node.bbox.min.x > hi.x
                    || node.bbox.max.y < lo.y
                    || node.bbox.min.y > hi.y
                    || node.bbox.max.z < lo.z
                    || node.bbox.min.z > hi.z);
            if accept_all {
                for l in 0..cs.targets.len() {
                    let p = self.interaction_degree(id, cs.targets[l]);
                    cs.tasks.push(M2pTask {
                        target: l as u32,
                        node: id,
                        degree: p as u32,
                    });
                    stats.record_interaction(p);
                }
                continue;
            }

            let open_all = d * d > alpha2 * (dist_max * dist_max)
                || dist_max * dist_max <= node.radius * node.radius
                || (node.bbox.contains(lo) && node.bbox.contains(hi));
            if open_all {
                if node.is_leaf {
                    for l in 0..cs.targets.len() {
                        self.emit_leaf(id, l as u32, kind_of(points, base, l), sweep, cs, stats);
                    }
                } else {
                    cs.stack.extend(node.child_ids());
                }
                continue;
            }

            for l in 0..cs.targets.len() {
                self.compile_subtree(l as u32, kind_of(points, base, l), sweep, id, cs, stats);
            }
        }
    }

    /// Resolves one MAC-ambiguous subtree for one target with the exact
    /// per-target criterion — the same traversal as the scalar
    /// `eval_potential`/`eval_field`, emitting lists instead of
    /// evaluating. Far-field interactions are counted here, at emission;
    /// near-field pair counting follows the scalar loops' policy per
    /// [`SweepKind`].
    fn compile_subtree(
        &self,
        lane: u32,
        kind: TargetKind,
        sweep: SweepKind,
        from: NodeId,
        cs: &mut CompiledScratch,
        stats: &mut EvalStats,
    ) {
        let x = cs.targets[lane as usize];
        cs.substack.clear();
        cs.substack.push(from);
        while let Some(id) = cs.substack.pop() {
            let node = self.tree.node(id);
            match mac(node, x, self.params.alpha) {
                MacDecision::Accept => {
                    let p = self.interaction_degree(id, x);
                    cs.tasks.push(M2pTask {
                        target: lane,
                        node: id,
                        degree: p as u32,
                    });
                    stats.record_interaction(p);
                }
                MacDecision::Open => {
                    if node.is_leaf {
                        self.emit_leaf(id, lane, kind, sweep, cs, stats);
                    } else {
                        cs.substack.extend(node.child_ids());
                    }
                }
            }
        }
    }

    /// Emits one opened leaf's P2P span(s) for one target. A source
    /// target inside the leaf has its own index split out of the span so
    /// the self-interaction never reaches a kernel; the scalar potential
    /// loop counts source pairs unconditionally, so those are counted
    /// here at compile time, while external-point and field pairs are
    /// counted by the guarded kernels at execution.
    fn emit_leaf(
        &self,
        id: NodeId,
        lane: u32,
        kind: TargetKind,
        sweep: SweepKind,
        cs: &mut CompiledScratch,
        stats: &mut EvalStats,
    ) {
        let node = self.tree.node(id);
        let (start, end) = (node.start as usize, node.end as usize);
        match kind {
            TargetKind::SourceParticle(i) if (start..end).contains(&i) => {
                if i > start {
                    cs.spans.push(P2pSpan {
                        target: lane,
                        start: start as u32,
                        end: i as u32,
                    });
                }
                if i + 1 < end {
                    cs.spans.push(P2pSpan {
                        target: lane,
                        start: (i + 1) as u32,
                        end: end as u32,
                    });
                }
                if sweep == SweepKind::Potential {
                    stats.record_direct((end - start - 1) as u64);
                }
            }
            _ => {
                cs.spans.push(P2pSpan {
                    target: lane,
                    start: start as u32,
                    end: end as u32,
                });
                if sweep == SweepKind::Potential && matches!(kind, TargetKind::SourceParticle(_)) {
                    stats.record_direct((end - start) as u64);
                }
            }
        }
    }

    /// Executes the degree-bucketed M2P tasks in lane groups, accumulating
    /// potentials into `out`. The group width is the *dispatched* SIMD
    /// lane width (8 on AVX-512, otherwise the baseline [`M2P_LANES`]);
    /// lanes are arithmetically independent and every lane runs the same
    /// op sequence regardless of width, so the choice never changes
    /// results. Short trailing groups pad by replicating their last task;
    /// padded lanes are computed and discarded.
    fn exec_m2p_potential(&self, cs: &mut CompiledScratch, out: &mut [f64]) {
        match simd::m2p_lanes() {
            8 => self.exec_m2p_potential_lanes::<8>(cs, out),
            _ => self.exec_m2p_potential_lanes::<M2P_LANES>(cs, out),
        }
    }

    fn exec_m2p_potential_lanes<const L: usize>(&self, cs: &mut CompiledScratch, out: &mut [f64]) {
        let CompiledScratch {
            sorted,
            targets,
            bws,
            ..
        } = cs;
        let mut i = 0;
        while i < sorted.len() {
            let degree = sorted[i].degree as usize;
            let mut j = i;
            while j < sorted.len() && sorted[j].degree as usize == degree {
                j += 1;
            }
            bws.prepare_degree_lanes(degree, L);
            let bucket = &sorted[i..j];
            let mut g = 0;
            while g < bucket.len() {
                let take = (bucket.len() - g).min(L);
                let node = bucket[g].node;
                // Accept-all classification emits one task per chunk
                // target against the same node, so most groups land
                // inside a same-node run — those take the broadcast
                // kernel (bit-identical to the gather kernel per lane).
                let res = if bucket[g..g + take].iter().all(|t| t.node == node) {
                    let points = core::array::from_fn(|l| {
                        targets[bucket[g + l.min(take - 1)].target as usize]
                    });
                    m2p_potential_group_uniform::<L>(
                        self.tree.node(node).center,
                        self.arena.span(node as usize),
                        &points,
                        bws,
                    )
                } else {
                    let mut centers = [Vec3::ZERO; L];
                    let mut points = [Vec3::ZERO; L];
                    let mut coeffs: [&[Complex]; L] = [&[]; L];
                    for l in 0..L {
                        let t = bucket[g + l.min(take - 1)];
                        centers[l] = self.tree.node(t.node).center;
                        coeffs[l] = self.arena.span(t.node as usize);
                        points[l] = targets[t.target as usize];
                    }
                    let group = M2pGroup {
                        centers,
                        points,
                        coeffs,
                    };
                    m2p_potential_group(&group, bws)
                };
                for l in 0..take {
                    out[bucket[g + l].target as usize] += res[l];
                }
                g += take;
            }
            i = j;
        }
    }

    /// Field analogue of [`Treecode::exec_m2p_potential`].
    fn exec_m2p_field(&self, cs: &mut CompiledScratch, out: &mut [(f64, Vec3)]) {
        match simd::m2p_lanes() {
            8 => self.exec_m2p_field_lanes::<8>(cs, out),
            _ => self.exec_m2p_field_lanes::<M2P_LANES>(cs, out),
        }
    }

    fn exec_m2p_field_lanes<const L: usize>(
        &self,
        cs: &mut CompiledScratch,
        out: &mut [(f64, Vec3)],
    ) {
        let CompiledScratch {
            sorted,
            targets,
            bws,
            ..
        } = cs;
        let mut i = 0;
        while i < sorted.len() {
            let degree = sorted[i].degree as usize;
            let mut j = i;
            while j < sorted.len() && sorted[j].degree as usize == degree {
                j += 1;
            }
            bws.prepare_degree_lanes(degree, L);
            let bucket = &sorted[i..j];
            let mut g = 0;
            while g < bucket.len() {
                let take = (bucket.len() - g).min(L);
                let node = bucket[g].node;
                // Same-node run detection as in the potential executor.
                let (phis, grads) = if bucket[g..g + take].iter().all(|t| t.node == node) {
                    let points = core::array::from_fn(|l| {
                        targets[bucket[g + l.min(take - 1)].target as usize]
                    });
                    m2p_field_group_uniform::<L>(
                        self.tree.node(node).center,
                        self.arena.span(node as usize),
                        &points,
                        bws,
                    )
                } else {
                    let mut centers = [Vec3::ZERO; L];
                    let mut points = [Vec3::ZERO; L];
                    let mut coeffs: [&[Complex]; L] = [&[]; L];
                    for l in 0..L {
                        let t = bucket[g + l.min(take - 1)];
                        centers[l] = self.tree.node(t.node).center;
                        coeffs[l] = self.arena.span(t.node as usize);
                        points[l] = targets[t.target as usize];
                    }
                    let group = M2pGroup {
                        centers,
                        points,
                        coeffs,
                    };
                    m2p_field_group(&group, bws)
                };
                for l in 0..take {
                    let slot = &mut out[bucket[g + l].target as usize];
                    slot.0 += phis[l];
                    slot.1 += grads[l];
                }
                g += take;
            }
            i = j;
        }
    }

    /// Streams the P2P spans over the SoA particle mirror. `unguarded`
    /// selects the source-sweep kernel (self already excluded by span
    /// splitting, pairs counted at compile time); external sweeps use the
    /// guarded kernel and count surviving pairs here, matching the scalar
    /// external loop. With [`Precision::F32Near`] the spans stream over
    /// the tree's f32 mirror instead — admitted only when the far-field
    /// truncation bound already dominates f32 roundoff (DESIGN.md §12).
    fn exec_p2p_potential(
        &self,
        cs: &CompiledScratch,
        unguarded: bool,
        precision: Precision,
        out: &mut [f64],
        stats: &mut EvalStats,
    ) {
        let eps2 = self.params.softening * self.params.softening;
        if precision == Precision::F32Near {
            let soa = self.tree.particles_soa_f32();
            for sp in &cs.spans {
                let (s, e) = (sp.start as usize, sp.end as usize);
                let t = cs.targets[sp.target as usize];
                if unguarded {
                    out[sp.target as usize] += p2p_potential_span_f32(
                        &soa.x[s..e],
                        &soa.y[s..e],
                        &soa.z[s..e],
                        &soa.q[s..e],
                        t,
                        eps2,
                    );
                } else {
                    let (phi, pairs) = p2p_potential_span_guarded_f32(
                        &soa.x[s..e],
                        &soa.y[s..e],
                        &soa.z[s..e],
                        &soa.q[s..e],
                        t,
                        eps2,
                    );
                    out[sp.target as usize] += phi;
                    stats.record_direct(pairs);
                }
            }
            return;
        }
        let soa = self.tree.particles_soa();
        for sp in &cs.spans {
            let (s, e) = (sp.start as usize, sp.end as usize);
            let t = cs.targets[sp.target as usize];
            if unguarded {
                out[sp.target as usize] += p2p_potential_span(
                    &soa.x[s..e],
                    &soa.y[s..e],
                    &soa.z[s..e],
                    &soa.q[s..e],
                    t,
                    eps2,
                );
            } else {
                let (phi, pairs) = p2p_potential_span_guarded(
                    &soa.x[s..e],
                    &soa.y[s..e],
                    &soa.z[s..e],
                    &soa.q[s..e],
                    t,
                    eps2,
                );
                out[sp.target as usize] += phi;
                stats.record_direct(pairs);
            }
        }
    }

    /// Field P2P execution: always guarded (the scalar field loop guards
    /// both target kinds), with pairs counted here.
    fn exec_p2p_field(
        &self,
        cs: &CompiledScratch,
        precision: Precision,
        out: &mut [(f64, Vec3)],
        stats: &mut EvalStats,
    ) {
        let eps2 = self.params.softening * self.params.softening;
        if precision == Precision::F32Near {
            let soa = self.tree.particles_soa_f32();
            for sp in &cs.spans {
                let (s, e) = (sp.start as usize, sp.end as usize);
                let t = cs.targets[sp.target as usize];
                let (phi, grad, pairs) = p2p_field_span_guarded_f32(
                    &soa.x[s..e],
                    &soa.y[s..e],
                    &soa.z[s..e],
                    &soa.q[s..e],
                    t,
                    eps2,
                );
                let slot = &mut out[sp.target as usize];
                slot.0 += phi;
                slot.1 += grad;
                stats.record_direct(pairs);
            }
            return;
        }
        let soa = self.tree.particles_soa();
        for sp in &cs.spans {
            let (s, e) = (sp.start as usize, sp.end as usize);
            let t = cs.targets[sp.target as usize];
            let (phi, grad, pairs) = p2p_field_span_guarded(
                &soa.x[s..e],
                &soa.y[s..e],
                &soa.z[s..e],
                &soa.q[s..e],
                t,
                eps2,
            );
            let slot = &mut out[sp.target as usize];
            slot.0 += phi;
            slot.1 += grad;
            stats.record_direct(pairs);
        }
    }
}
