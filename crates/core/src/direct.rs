//! Exact `O(n²)` direct summation — the reference the treecode is measured
//! against. Parallel over targets.

use mbt_geometry::{Particle, Vec3};
use rayon::prelude::*;

/// Exact potentials `Φ(xᵢ) = Σ_{j≠i} q_j / |xᵢ − x_j|` at every particle.
#[must_use]
pub fn direct_potentials(particles: &[Particle]) -> Vec<f64> {
    particles
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut phi = 0.0;
            for (j, pj) in particles.iter().enumerate() {
                if i != j {
                    phi += pj.charge / pj.position.distance(pi.position);
                }
            }
            phi
        })
        .collect()
}

/// Exact potentials at arbitrary points (coincident sources skipped).
#[must_use]
pub fn direct_potentials_at(particles: &[Particle], points: &[Vec3]) -> Vec<f64> {
    points
        .par_iter()
        .map(|&x| {
            let mut phi = 0.0;
            for p in particles {
                let r = p.position.distance(x);
                if r > 0.0 {
                    phi += p.charge / r;
                }
            }
            phi
        })
        .collect()
}

/// Exact potentials and gradients at every particle.
#[must_use]
pub fn direct_fields(particles: &[Particle]) -> (Vec<f64>, Vec<Vec3>) {
    let pairs: Vec<(f64, Vec3)> = particles
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut phi = 0.0;
            let mut grad = Vec3::ZERO;
            for (j, pj) in particles.iter().enumerate() {
                if i != j {
                    let d = pi.position - pj.position;
                    let r2 = d.norm_sq();
                    let r = r2.sqrt();
                    phi += pj.charge / r;
                    grad += d * (-pj.charge / (r2 * r));
                }
            }
            (phi, grad)
        })
        .collect();
    pairs.into_iter().unzip()
}

/// Exact *softened* potentials `Φ(xᵢ) = Σ_{j≠i} q_j / √(|xᵢ−x_j|²+ε²)` —
/// the reference matching a treecode run with the same Plummer softening.
#[must_use]
pub fn direct_potentials_softened(particles: &[Particle], eps: f64) -> Vec<f64> {
    let eps2 = eps * eps;
    particles
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut phi = 0.0;
            for (j, pj) in particles.iter().enumerate() {
                if i != j {
                    phi += pj.charge / (pj.position.distance_sq(pi.position) + eps2).sqrt();
                }
            }
            phi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softened_potential_is_finite_at_overlap() {
        let ps = [
            Particle::new(Vec3::ZERO, 1.0),
            Particle::new(Vec3::ZERO, 1.0),
        ];
        let phi = direct_potentials_softened(&ps, 0.1);
        assert!((phi[0] - 10.0).abs() < 1e-12);
        // softened < exact for separated pairs
        let ps = [Particle::new(Vec3::ZERO, 1.0), Particle::new(Vec3::X, 1.0)];
        let soft = direct_potentials_softened(&ps, 0.5);
        let hard = direct_potentials(&ps);
        assert!(soft[0] < hard[0]);
    }

    #[test]
    fn two_body_closed_form() {
        let ps = [
            Particle::new(Vec3::ZERO, 2.0),
            Particle::new(Vec3::new(2.0, 0.0, 0.0), -1.0),
        ];
        let phi = direct_potentials(&ps);
        assert!((phi[0] - -0.5).abs() < 1e-15);
        assert!((phi[1] - 1.0).abs() < 1e-15);
        let (phis, grads) = direct_fields(&ps);
        assert_eq!(phis, phi);
        // force on particle 0 from charge -1 at x=2: ∇Φ = -q·d/r³ with
        // d = x0 - x1 = (-2,0,0): grad = -(-1)·(-2)/8 = -0.25 x̂
        assert!((grads[0].x - -0.25).abs() < 1e-15);
        assert!(grads[0].y == 0.0 && grads[0].z == 0.0);
    }

    #[test]
    fn potentials_at_skips_coincident() {
        let ps = [Particle::new(Vec3::ZERO, 5.0), Particle::new(Vec3::X, 1.0)];
        let v = direct_potentials_at(&ps, &[Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)]);
        assert!((v[0] - 1.0).abs() < 1e-15); // self skipped
        let expect = 5.0 + 1.0 / 2.0f64.sqrt();
        assert!((v[1] - expect).abs() < 1e-12);
    }

    #[test]
    fn gradient_is_antisymmetric_for_equal_charges() {
        let ps = [
            Particle::new(Vec3::new(-1.0, 0.5, 0.0), 1.0),
            Particle::new(Vec3::new(1.0, -0.5, 0.0), 1.0),
        ];
        let (_, grads) = direct_fields(&ps);
        assert!((grads[0] + grads[1]).norm() < 1e-15);
    }
}
