//! Dual-tree (cluster–cluster) evaluation.
//!
//! The classical Barnes–Hut traversal of [`crate::eval`] opens the tree
//! once **per target particle**; each admitted cluster is evaluated with
//! M2P for that one target. The dual-tree pass instead admits
//! **cluster pairs**: when a target cluster `T` and a source cluster `S`
//! are mutually well separated, `S`'s multipole expansion is converted
//! *once* into a local expansion about `T`'s center (M2L); local
//! expansions are then pushed down the tree (L2L) and evaluated per
//! particle at the leaves (L2P). This amortises the far field over whole
//! clusters — the structural idea of the FMM realised on the adaptive
//! octree, and a natural companion to the paper's per-cluster degrees
//! (each M2L uses the degrees Theorem 3 assigned to its endpoints).
//!
//! Pipeline:
//!
//! 1. pair traversal from `(root, root)` building the M2L and near-field
//!    lists (the larger box splits; a mutually admitted pair records an
//!    M2L, a leaf–leaf pair records a direct block),
//! 2. parallel M2L accumulation per target node,
//! 3. top-down L2L,
//! 4. parallel leaf evaluation: L2P plus the near-field blocks.

use mbt_geometry::Vec3;
use mbt_multipole::LocalExpansion;
use mbt_tree::NodeId;
use rayon::prelude::*;

use crate::eval::EvalResult;
use crate::stats::EvalStats;
use crate::upward::Treecode;

/// The mutual acceptance criterion for a cluster pair: admitted when the
/// combined box dimension passes the α-test against the center distance
/// and the enclosing spheres are separated (M2L convergence region).
#[inline]
fn dual_mac(
    edge_t: f64,
    radius_t: f64,
    center_t: Vec3,
    edge_s: f64,
    radius_s: f64,
    center_s: Vec3,
    alpha: f64,
) -> bool {
    let rho2 = center_t.distance_sq(center_s);
    let d = edge_t + edge_s;
    let sep = radius_t + radius_s;
    d * d <= alpha * alpha * rho2 && rho2 > sep * sep
}

impl Treecode {
    /// Potentials at all source particles via the dual-tree pass.
    ///
    /// Produces the same quantity as [`Treecode::potentials`] (self-
    /// excluded `Σ q_j/|xᵢ−x_j|`, caller order) with an independent
    /// far-field strategy; accuracy is governed by the same per-cluster
    /// degrees. Softening applies to the near field exactly as in the
    /// single-tree pass.
    #[must_use]
    pub fn potentials_dual(&self) -> EvalResult<f64> {
        let tree = &self.tree;
        let n_nodes = tree.len();
        let mut stats = EvalStats::for_targets(tree.particles().len() as u64);

        // ---- phase 1: pair traversal --------------------------------
        let mut m2l: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes]; // per target
        let mut near: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes]; // per target leaf
        let mut stack: Vec<(NodeId, NodeId)> = vec![(tree.root(), tree.root())];
        while let Some((t, s)) = stack.pop() {
            let nt = tree.node(t);
            let ns = tree.node(s);
            if t != s
                && dual_mac(
                    nt.edge(),
                    nt.radius,
                    nt.center,
                    ns.edge(),
                    ns.radius,
                    ns.center,
                    self.params.alpha,
                )
            {
                m2l[t as usize].push(s);
                continue;
            }
            match (nt.is_leaf, ns.is_leaf) {
                (true, true) => near[t as usize].push(s),
                (false, true) => {
                    for c in nt.child_ids() {
                        stack.push((c, s));
                    }
                }
                (true, false) => {
                    for c in ns.child_ids() {
                        stack.push((t, c));
                    }
                }
                (false, false) => {
                    // split the larger box (ties split the target)
                    if nt.edge() >= ns.edge() {
                        for c in nt.child_ids() {
                            stack.push((c, s));
                        }
                    } else {
                        for c in ns.child_ids() {
                            stack.push((t, c));
                        }
                    }
                }
            }
        }

        // ---- phase 2: M2L accumulation per target node ---------------
        let mut locals: Vec<LocalExpansion> = (0..n_nodes)
            .into_par_iter()
            .map(|t| {
                let node = tree.node(t as NodeId);
                let p_t = self.degrees[t];
                let mut local = LocalExpansion::zero(node.center, p_t);
                for &s in &m2l[t] {
                    local.accumulate(&self.expansion(s).to_local(node.center, p_t));
                }
                local
            })
            .collect();
        for (t, list) in m2l.iter().enumerate() {
            for &s in list {
                stats.record_interaction(self.degrees[s as usize].max(self.degrees[t]));
            }
        }

        // ---- phase 3: L2L downward (arena order: parents first) ------
        for id in 0..n_nodes {
            let node = tree.node(id as NodeId);
            if node.is_leaf {
                continue;
            }
            let parent_local = locals[id].clone();
            for c in node.child_ids() {
                let child = tree.node(c);
                let shifted = parent_local.translated(child.center, self.degrees[c as usize]);
                locals[c as usize].accumulate(&shifted);
            }
        }

        // ---- phase 4: leaf evaluation --------------------------------
        let particles = tree.particles();
        let eps2 = self.params.softening * self.params.softening;
        let leaf_results: Vec<(NodeId, Vec<f64>, u64)> = tree
            .leaf_ids()
            .into_par_iter()
            .map(|leaf| {
                let node = tree.node(leaf);
                let local = &locals[leaf as usize];
                let (start, end) = (node.start as usize, node.end as usize);
                let mut pairs = 0u64;
                let values: Vec<f64> = (start..end)
                    .map(|i| {
                        let x = particles[i].position;
                        let mut phi = local.potential_at(x);
                        for &s in &near[leaf as usize] {
                            let sn = tree.node(s);
                            for (j, p) in particles
                                .iter()
                                .enumerate()
                                .take(sn.end as usize)
                                .skip(sn.start as usize)
                            {
                                if j != i {
                                    phi += p.charge / (p.position.distance_sq(x) + eps2).sqrt();
                                    pairs += 1;
                                }
                            }
                        }
                        phi
                    })
                    .collect();
                (leaf, values, pairs)
            })
            .collect();

        let mut sorted_values = vec![0.0f64; particles.len()];
        for (leaf, values, pairs) in leaf_results {
            let node = tree.node(leaf);
            for (k, v) in values.into_iter().enumerate() {
                sorted_values[node.start as usize + k] = v;
            }
            stats.record_direct(pairs);
        }
        EvalResult {
            values: tree.unsort(&sorted_values),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_potentials;
    use crate::params::TreecodeParams;
    use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};
    use mbt_geometry::Particle;

    fn charges() -> ChargeModel {
        ChargeModel::RandomSign { magnitude: 1.0 }
    }

    fn rel(a: &[f64], b: &[f64]) -> f64 {
        crate::accuracy::relative_error(a, b)
    }

    #[test]
    fn dual_matches_direct_fixed_degree() {
        let ps = uniform_cube(2500, 1.0, charges(), 3);
        let exact = direct_potentials(&ps);
        let mut prev = f64::INFINITY;
        for p in [3usize, 6, 10] {
            let tc = Treecode::new(&ps, TreecodeParams::fixed(p, 0.5)).unwrap();
            let err = rel(&tc.potentials_dual().values, &exact);
            assert!(err < prev * 1.2, "p={p}: dual error {err} not improving");
            prev = err;
        }
        assert!(prev < 1e-5, "p=10 dual error {prev}");
    }

    #[test]
    fn dual_matches_single_tree() {
        let ps = gaussian(2000, mbt_geometry::Vec3::ZERO, 0.6, charges(), 7);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.5)).unwrap();
        let single = tc.potentials();
        let dual = tc.potentials_dual();
        // both approximate the same sum with comparable accuracy
        let exact = direct_potentials(&ps);
        let e_single = rel(&single.values, &exact);
        let e_dual = rel(&dual.values, &exact);
        assert!(
            e_dual < 20.0 * e_single.max(1e-9),
            "dual {e_dual} vs single {e_single}"
        );
    }

    #[test]
    fn dual_adaptive_beats_fixed() {
        let ps = uniform_cube(4000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 5);
        let exact = direct_potentials(&ps);
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
        let adaptive = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6)).unwrap();
        let e_fixed = rel(&fixed.potentials_dual().values, &exact);
        let e_adaptive = rel(&adaptive.potentials_dual().values, &exact);
        assert!(
            e_adaptive < e_fixed,
            "adaptive dual ({e_adaptive}) must beat fixed dual ({e_fixed})"
        );
    }

    #[test]
    fn dual_saves_interactions_over_single_tree() {
        let ps = uniform_cube(8000, 1.0, charges(), 9);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6)).unwrap();
        let single = tc.potentials();
        let dual = tc.potentials_dual();
        assert!(
            dual.stats.pc_interactions < single.stats.pc_interactions / 4,
            "dual-tree should amortise interactions: {} vs {}",
            dual.stats.pc_interactions,
            single.stats.pc_interactions
        );
    }

    #[test]
    fn dual_single_node_tree() {
        let ps = vec![
            Particle::new(mbt_geometry::Vec3::ZERO, 1.0),
            Particle::new(mbt_geometry::Vec3::X, -2.0),
        ];
        let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.5)).unwrap();
        let r = tc.potentials_dual();
        assert!((r.values[0] - -2.0).abs() < 1e-12);
        assert!((r.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dual_respects_softening() {
        let ps = uniform_cube(500, 1.0, charges(), 11);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(6, 0.4).with_softening(0.1)).unwrap();
        let single = tc.potentials();
        let dual = tc.potentials_dual();
        let err = rel(&dual.values, &single.values);
        assert!(err < 5e-3, "softened dual vs single differ by {err}");
    }
}
