//! Treecode evaluation: MAC-driven traversal, serial and parallel.
//!
//! The parallel formulation mirrors the paper's: "the parallel formulation
//! exploits the concurrency available in independent tree traversal of each
//! particle", with "force computation for sets of `w` particles aggregated
//! into a single thread [unit]" over proximity-ordered targets. Here each
//! rayon task evaluates one chunk of `w` consecutive Morton-ordered
//! targets; the tree is shared immutably so no synchronisation is needed,
//! and per-task [`EvalStats`] are merged by reduction.
//!
//! # Memory discipline
//!
//! The steady-state evaluation loop performs **zero heap allocations per
//! interaction**. Each parallel task owns one [`Scratch`] — a reusable
//! traversal stack plus a [`Workspace`] of kernel buffers (Legendre
//! tables, power tables, per-degree partial sums) sized to the tree's
//! maximum degree — and writes its chunk's results into a disjoint slice
//! of one pre-sized output buffer. Allocation count per sweep is
//! therefore `O(targets / w)` (one `Scratch` per chunk of `w` targets),
//! independent of how many MAC-accepted or near-field interactions the
//! traversals perform; `crates/core/tests/alloc_count.rs` pins this down
//! with a counting allocator. Accepted interactions read coefficient
//! spans straight out of the flat arena (see `upward.rs`), so the whole
//! sweep touches no per-node heap structures either.

use mbt_geometry::Vec3;
use mbt_multipole::{bounds::degree_for_tolerance_at, DegreeSelector, Workspace};
use mbt_tree::NodeId;
use rayon::prelude::*;

use crate::mac::{mac, MacDecision};
use crate::params::{EvalMode, Precision};
use crate::stats::EvalStats;
use crate::upward::Treecode;

/// Reusable per-task evaluation state: the explicit traversal stack and
/// the multipole kernel scratch. One `Scratch` serves every target in a
/// task's chunk — both buffers are cleared (not freed) between targets.
struct Scratch {
    stack: Vec<NodeId>,
    ws: Workspace,
}

impl Scratch {
    /// Scratch pre-sized so traversal and evaluation up to `max_degree`
    /// never reallocate. The DFS stack holds at most the 8 children of
    /// every opened ancestor on the current root-to-node path, so
    /// `8 · (height + 1)` bounds its depth for *any* tree shape —
    /// including pathological clustered distributions whose height far
    /// exceeds the old fixed 64-slot guess.
    fn new(max_degree: usize, height: usize) -> Scratch {
        Scratch {
            stack: Vec::with_capacity(8 * (height + 1)),
            ws: Workspace::with_capacity(max_degree),
        }
    }
}

/// Values plus instrumentation from one evaluation sweep.
#[derive(Debug, Clone)]
pub struct EvalResult<T> {
    /// Per-target values, in the order of the supplied targets.
    pub values: Vec<T>,
    /// Merged evaluation counters.
    pub stats: EvalStats,
}

/// Identifies a target during source-set evaluation so the traversal can
/// exclude self-interaction.
#[derive(Clone, Copy)]
pub(crate) enum TargetKind {
    /// Evaluation at source particle with this sorted index.
    SourceParticle(usize),
    /// Evaluation at an external point (no exclusion).
    External,
}

impl Treecode {
    /// Potentials at all source particles (`Φ(xᵢ) = Σ_{j≠i} q_j/|xᵢ−x_j|`),
    /// in the caller's original particle order. Parallel.
    #[must_use]
    pub fn potentials(&self) -> EvalResult<f64> {
        if self.params.eval_mode == EvalMode::Compiled {
            // lint: allow(alloc, one output buffer per sweep, not per interaction)
            let mut values = vec![0.0; self.tree.particles().len()];
            let stats = self.compiled_potential_sweep(
                None,
                &mut values,
                self.params.eval_chunk,
                self.params.near_precision,
            );
            return EvalResult {
                values: self.tree.unsort(&values),
                stats,
            };
        }
        let chunk = self.params.eval_chunk;
        let n = self.tree.particles().len();
        let (values, stats) = self.eval_chunks(n, chunk, |i, scratch, stats| {
            let x = self.tree.particles()[i].position;
            self.eval_potential(x, TargetKind::SourceParticle(i), scratch, stats)
        });
        EvalResult {
            values: self.tree.unsort(&values),
            stats,
        }
    }

    /// Potentials at arbitrary observation points (no self-exclusion).
    #[must_use]
    pub fn potentials_at(&self, points: &[Vec3]) -> EvalResult<f64> {
        // lint: allow(alloc, one output buffer per sweep, not per interaction)
        let mut values = vec![0.0; points.len()];
        let stats = self.potentials_at_into(points, &mut values);
        EvalResult { values, stats }
    }

    /// Potentials at arbitrary points, written into a caller-provided
    /// buffer (`out.len()` must equal `points.len()`).
    ///
    /// This is the batching entry point: a scheduler coalescing many
    /// requests against one plan evaluates them all as a single chunked
    /// sweep into one pre-sized output arena, allocating nothing here
    /// beyond the per-chunk [`Scratch`] state. Values are identical to
    /// [`Treecode::potentials_at`] — each target's traversal is
    /// independent, so batching and chunking cannot change results.
    pub fn potentials_at_into(&self, points: &[Vec3], out: &mut [f64]) -> EvalStats {
        self.potentials_at_into_with(
            points,
            out,
            self.params.eval_chunk,
            self.params.eval_mode,
            self.params.near_precision,
        )
    }

    /// [`Treecode::potentials_at_into`] with an explicit per-call
    /// evaluation configuration, overriding the plan's own `eval_chunk` /
    /// `eval_mode` / `near_precision`. Chunk width and mode are pure
    /// execution concerns —
    /// results are bit-invariant across chunk widths and within the
    /// documented summation-reorder tolerance across modes (DESIGN.md
    /// §10) — so a cached treecode can serve requests that differ only
    /// in these knobs.
    pub fn potentials_at_into_with(
        &self,
        points: &[Vec3],
        out: &mut [f64],
        chunk: usize,
        mode: EvalMode,
        precision: Precision,
    ) -> EvalStats {
        assert_eq!(
            points.len(),
            out.len(),
            "output buffer must match the number of points"
        );
        if mode == EvalMode::Compiled {
            return self.compiled_potential_sweep(Some(points), out, chunk, precision);
        }
        self.eval_chunks_into(out, chunk, |i, scratch, stats| {
            self.eval_potential(points[i], TargetKind::External, scratch, stats)
        })
    }

    /// Potential and gradient at all source particles, original order.
    #[must_use]
    pub fn fields(&self) -> EvalResult<(f64, Vec3)> {
        if self.params.eval_mode == EvalMode::Compiled {
            // lint: allow(alloc, one output buffer per sweep, not per interaction)
            let mut values = vec![(0.0, Vec3::ZERO); self.tree.particles().len()];
            let stats = self.compiled_field_sweep(
                None,
                &mut values,
                self.params.eval_chunk,
                self.params.near_precision,
            );
            return EvalResult {
                values: self.tree.unsort(&values),
                stats,
            };
        }
        let chunk = self.params.eval_chunk;
        let n = self.tree.particles().len();
        let (values, stats) = self.eval_chunks(n, chunk, |i, scratch, stats| {
            let x = self.tree.particles()[i].position;
            self.eval_field(x, TargetKind::SourceParticle(i), scratch, stats)
        });
        EvalResult {
            values: self.tree.unsort(&values),
            stats,
        }
    }

    /// Potential and gradient at arbitrary points.
    #[must_use]
    pub fn fields_at(&self, points: &[Vec3]) -> EvalResult<(f64, Vec3)> {
        // lint: allow(alloc, one output buffer per sweep, not per interaction)
        let mut values = vec![(0.0, Vec3::ZERO); points.len()];
        let stats = self.fields_at_into(points, &mut values);
        EvalResult { values, stats }
    }

    /// Potential and gradient at arbitrary points, written into a
    /// caller-provided buffer — the field-query analogue of
    /// [`Treecode::potentials_at_into`].
    pub fn fields_at_into(&self, points: &[Vec3], out: &mut [(f64, Vec3)]) -> EvalStats {
        self.fields_at_into_with(
            points,
            out,
            self.params.eval_chunk,
            self.params.eval_mode,
            self.params.near_precision,
        )
    }

    /// [`Treecode::fields_at_into`] with an explicit per-call evaluation
    /// configuration — the field-query analogue of
    /// [`Treecode::potentials_at_into_with`].
    pub fn fields_at_into_with(
        &self,
        points: &[Vec3],
        out: &mut [(f64, Vec3)],
        chunk: usize,
        mode: EvalMode,
        precision: Precision,
    ) -> EvalStats {
        assert_eq!(
            points.len(),
            out.len(),
            "output buffer must match the number of points"
        );
        if mode == EvalMode::Compiled {
            return self.compiled_field_sweep(Some(points), out, chunk, precision);
        }
        self.eval_chunks_into(out, chunk, |i, scratch, stats| {
            self.eval_field(points[i], TargetKind::External, scratch, stats)
        })
    }

    /// Potential at one external point (serial convenience).
    #[must_use]
    pub fn potential_at(&self, point: Vec3) -> f64 {
        let mut stats = EvalStats::default();
        let mut scratch = Scratch::new(self.max_degree(), self.tree.height());
        self.eval_potential(point, TargetKind::External, &mut scratch, &mut stats)
    }

    /// The largest degree any node stores — the size every per-task
    /// workspace is provisioned for up front.
    #[inline]
    pub(crate) fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Chunked parallel map with stats reduction. The chunk width is the
    /// paper's aggregation width `w`.
    ///
    /// Targets are mapped straight into a pre-sized output buffer split
    /// into disjoint per-chunk slices; each parallel task allocates
    /// exactly one [`Scratch`] and reuses it across its whole chunk, so
    /// the evaluation itself is allocation-free per target.
    fn eval_chunks<T: Send + Default + Clone>(
        &self,
        n: usize,
        chunk: usize,
        f: impl Fn(usize, &mut Scratch, &mut EvalStats) -> T + Sync,
    ) -> (Vec<T>, EvalStats) {
        // lint: allow(alloc, one output buffer per sweep, not per interaction)
        let mut values = vec![T::default(); n];
        let stats = self.eval_chunks_into(&mut values, chunk, f);
        (values, stats)
    }

    /// [`Treecode::eval_chunks`] writing into a caller-provided buffer:
    /// the shared core of every sweep, and the entry point batching layers
    /// use to evaluate coalesced requests into one output arena.
    fn eval_chunks_into<T: Send>(
        &self,
        values: &mut [T],
        chunk: usize,
        f: impl Fn(usize, &mut Scratch, &mut EvalStats) -> T + Sync,
    ) -> EvalStats {
        let sweep_start = std::time::Instant::now();
        let chunk = chunk.max(1);
        let max_degree = self.max_degree();
        let height = self.tree.height();
        let chunk_stats: Vec<EvalStats> = values
            .par_chunks_mut(chunk)
            .enumerate()
            .map(|(ci, out)| {
                let mut scratch = Scratch::new(max_degree, height);
                let mut stats = EvalStats::for_targets(out.len() as u64);
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = f(ci * chunk + k, &mut scratch, &mut stats);
                }
                stats
            })
            .collect(); // lint: allow(alloc, O(chunks) stats per sweep)
        let mut stats = EvalStats::default();
        for s in &chunk_stats {
            stats.merge(s);
        }
        mbt_obs::record_since(mbt_obs::Phase::Sweep, sweep_start);
        stats
    }

    /// One target's potential via iterative MAC traversal.
    fn eval_potential(
        &self,
        x: Vec3,
        kind: TargetKind,
        scratch: &mut Scratch,
        stats: &mut EvalStats,
    ) -> f64 {
        let mut phi = 0.0;
        let Scratch { stack, ws } = scratch;
        stack.clear();
        stack.push(self.tree.root());
        while let Some(id) = stack.pop() {
            let node = self.tree.node(id);
            match mac(node, x, self.params.alpha) {
                MacDecision::Accept => {
                    let p = self.interaction_degree(id, x);
                    phi += self.expansion(id).potential_at_degree_with(x, p, ws);
                    stats.record_interaction(p);
                }
                MacDecision::Open => {
                    if node.is_leaf {
                        phi += self.direct_leaf_potential(id, x, kind, stats);
                    } else {
                        stack.extend(node.child_ids());
                    }
                }
            }
        }
        phi
    }

    /// One target's potential and gradient.
    fn eval_field(
        &self,
        x: Vec3,
        kind: TargetKind,
        scratch: &mut Scratch,
        stats: &mut EvalStats,
    ) -> (f64, Vec3) {
        let mut phi = 0.0;
        let mut grad = Vec3::ZERO;
        let Scratch { stack, ws } = scratch;
        stack.clear();
        stack.push(self.tree.root());
        while let Some(id) = stack.pop() {
            let node = self.tree.node(id);
            match mac(node, x, self.params.alpha) {
                MacDecision::Accept => {
                    let p = self.interaction_degree(id, x);
                    let (f, g) = self.expansion(id).field_at_degree_with(x, p, ws);
                    phi += f;
                    grad += g;
                    stats.record_interaction(p);
                }
                MacDecision::Open => {
                    if node.is_leaf {
                        let (f, g) = self.direct_leaf_field(id, x, kind, stats);
                        phi += f;
                        grad += g;
                    } else {
                        stack.extend(node.child_ids());
                    }
                }
            }
        }
        (phi, grad)
    }

    /// The degree one accepted interaction evaluates: the stored node
    /// degree, truncated further in `Tolerance` mode to the smallest
    /// degree meeting the budget at the target's actual distance.
    #[inline]
    pub(crate) fn interaction_degree(&self, id: NodeId, x: Vec3) -> usize {
        let stored = self.degrees[id as usize];
        match self.params.degree {
            DegreeSelector::Tolerance { tol, p_min, .. } => {
                let node = self.tree.node(id);
                let r = x.distance(node.center);
                degree_for_tolerance_at(node.abs_charge, node.radius, r, tol, stored)
                    .max(p_min)
                    .min(stored)
            }
            _ => stored,
        }
    }

    #[inline]
    fn direct_leaf_potential(
        &self,
        id: NodeId,
        x: Vec3,
        kind: TargetKind,
        stats: &mut EvalStats,
    ) -> f64 {
        let node = self.tree.node(id);
        let (start, end) = (node.start as usize, node.end as usize);
        let particles = &self.tree.particles()[start..end];
        let eps2 = self.params.softening * self.params.softening;
        let mut phi = 0.0;
        let mut pairs = 0u64;
        match kind {
            TargetKind::SourceParticle(i) => {
                for (j, p) in particles.iter().enumerate() {
                    if start + j == i {
                        continue;
                    }
                    phi += p.charge / (p.position.distance_sq(x) + eps2).sqrt();
                    pairs += 1;
                }
            }
            TargetKind::External => {
                for p in particles {
                    let r2 = p.position.distance_sq(x) + eps2;
                    if r2 > 0.0 {
                        phi += p.charge / r2.sqrt();
                        pairs += 1;
                    }
                }
            }
        }
        stats.record_direct(pairs);
        phi
    }

    #[inline]
    fn direct_leaf_field(
        &self,
        id: NodeId,
        x: Vec3,
        kind: TargetKind,
        stats: &mut EvalStats,
    ) -> (f64, Vec3) {
        let node = self.tree.node(id);
        let (start, end) = (node.start as usize, node.end as usize);
        let particles = &self.tree.particles()[start..end];
        let mut phi = 0.0;
        let mut grad = Vec3::ZERO;
        let mut pairs = 0u64;
        let skip = match kind {
            TargetKind::SourceParticle(i) => i as isize - start as isize,
            TargetKind::External => -1,
        };
        let eps2 = self.params.softening * self.params.softening;
        for (j, p) in particles.iter().enumerate() {
            if j as isize == skip {
                continue;
            }
            let d = x - p.position;
            let r2 = d.norm_sq() + eps2;
            if r2 > 0.0 {
                let r = r2.sqrt();
                phi += p.charge / r;
                grad += d * (-p.charge / (r2 * r));
                pairs += 1;
            }
        }
        stats.record_direct(pairs);
        (phi, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::{direct_fields, direct_potentials};
    use crate::params::TreecodeParams;
    use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};
    use mbt_geometry::Particle;

    fn charges() -> ChargeModel {
        ChargeModel::RandomSign { magnitude: 1.0 }
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = b.iter().map(|y| y * y).sum();
        (num / den).sqrt()
    }

    #[test]
    fn potentials_match_direct_sum_fixed_degree() {
        let ps = uniform_cube(1200, 1.0, charges(), 3);
        let exact = direct_potentials(&ps);
        let mut prev = f64::INFINITY;
        for p in [2usize, 4, 8] {
            let tc = Treecode::new(&ps, TreecodeParams::fixed(p, 0.5)).unwrap();
            let approx = tc.potentials();
            let err = rel_err(&approx.values, &exact);
            assert!(
                err < prev,
                "error must decrease with degree: p={p} err={err}"
            );
            prev = err;
        }
        assert!(prev < 1e-5, "p=8 error too large: {prev}");
    }

    #[test]
    fn adaptive_beats_fixed_at_same_p_min() {
        let ps = uniform_cube(4000, 1.0, charges(), 5);
        let exact = direct_potentials(&ps);
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(3, 0.7))
            .unwrap()
            .potentials();
        let adaptive = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.7))
            .unwrap()
            .potentials();
        let e_fixed = rel_err(&fixed.values, &exact);
        let e_adaptive = rel_err(&adaptive.values, &exact);
        assert!(
            e_adaptive < e_fixed,
            "adaptive ({e_adaptive}) must beat fixed ({e_fixed})"
        );
    }

    #[test]
    fn gaussian_distribution_accuracy() {
        let ps = gaussian(1500, Vec3::ZERO, 0.5, charges(), 7);
        let exact = direct_potentials(&ps);
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(4, 0.5)).unwrap();
        let approx = tc.potentials();
        assert!(rel_err(&approx.values, &exact) < 1e-4);
    }

    #[test]
    fn fields_match_direct() {
        let ps = uniform_cube(800, 1.0, charges(), 13);
        let (exact_phi, exact_grad) = direct_fields(&ps);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.4)).unwrap();
        let result = tc.fields();
        let phi: Vec<f64> = result.values.iter().map(|v| v.0).collect();
        assert!(rel_err(&phi, &exact_phi) < 1e-5);
        let num: f64 = result
            .values
            .iter()
            .zip(&exact_grad)
            .map(|(v, g)| v.1.distance_sq(*g))
            .sum();
        let den: f64 = exact_grad.iter().map(|g| g.norm_sq()).sum();
        assert!(
            (num / den).sqrt() < 1e-4,
            "gradient error {}",
            (num / den).sqrt()
        );
    }

    #[test]
    fn potentials_at_external_points() {
        let ps = uniform_cube(600, 1.0, charges(), 17);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.4)).unwrap();
        let points = [
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(-2.0, 2.0, -2.0),
        ];
        let result = tc.potentials_at(&points);
        for (i, &pt) in points.iter().enumerate() {
            let exact: f64 = ps.iter().map(|p| p.charge / p.position.distance(pt)).sum();
            assert!(
                (result.values[i] - exact).abs() < 1e-4 * exact.abs().max(1.0),
                "point {pt:?}: {} vs {exact}",
                result.values[i]
            );
        }
        assert_eq!(result.stats.targets, 3);
    }

    #[test]
    fn external_point_coincident_with_source_is_skipped() {
        // evaluating at a source position must not divide by zero
        let ps = [Particle::new(Vec3::ZERO, 1.0), Particle::new(Vec3::X, 1.0)];
        let tc = Treecode::new(&ps, TreecodeParams::fixed(2, 0.5)).unwrap();
        let r = tc.potentials_at(&[Vec3::ZERO]);
        assert!((r.values[0] - 1.0).abs() < 1e-12); // only the other charge
    }

    #[test]
    fn stats_are_collected_and_consistent() {
        let ps = uniform_cube(3000, 1.0, charges(), 23);
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.7)).unwrap();
        let r = tc.potentials();
        assert_eq!(r.stats.targets, 3000);
        assert!(r.stats.pc_interactions > 0);
        assert!(r.stats.direct_pairs > 0);
        assert!(r.stats.terms >= r.stats.pc_interactions * 16); // p >= 3
        assert_eq!(
            r.stats.by_degree.iter().sum::<u64>(),
            r.stats.pc_interactions
        );
    }

    #[test]
    fn chunk_width_does_not_change_values() {
        let ps = uniform_cube(1000, 1.0, charges(), 29);
        let a = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6).with_eval_chunk(1))
            .unwrap()
            .potentials();
        let b = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6).with_eval_chunk(512))
            .unwrap()
            .potentials();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x, y, "chunking changed results");
        }
        assert_eq!(a.stats.terms, b.stats.terms);
    }

    #[test]
    fn alpha_zero_limit_is_all_direct() {
        // tiny alpha: nothing is accepted, evaluation degenerates to exact
        let ps = uniform_cube(300, 1.0, charges(), 31);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(2, 1e-9)).unwrap();
        let r = tc.potentials();
        let exact = direct_potentials(&ps);
        assert!(rel_err(&r.values, &exact) < 1e-12);
        assert_eq!(r.stats.pc_interactions, 0);
    }

    /// Reference evaluation: identical traversal, but every accepted
    /// interaction goes through an owned expansion copied out of the arena
    /// and the allocating wrapper kernels (fresh scratch per call) —
    /// the pre-workspace evaluation path, kept as the oracle.
    fn reference_potentials(tc: &Treecode) -> Vec<f64> {
        let owned: Vec<mbt_multipole::MultipoleExpansion> = (0..tc.tree.len())
            .map(|i| tc.expansion(i as u32).to_expansion())
            .collect();
        let vals: Vec<f64> = (0..tc.tree.particles().len())
            .map(|i| {
                let x = tc.tree.particles()[i].position;
                let mut stats = EvalStats::default();
                let mut phi = 0.0;
                let mut stack = vec![tc.tree.root()];
                while let Some(id) = stack.pop() {
                    let node = tc.tree.node(id);
                    match mac(node, x, tc.params.alpha) {
                        MacDecision::Accept => {
                            let p = tc.interaction_degree(id, x);
                            phi += owned[id as usize].potential_at_degree(x, p);
                        }
                        MacDecision::Open => {
                            if node.is_leaf {
                                phi += tc.direct_leaf_potential(
                                    id,
                                    x,
                                    TargetKind::SourceParticle(i),
                                    &mut stats,
                                );
                            } else {
                                stack.extend(node.child_ids());
                            }
                        }
                    }
                }
                phi
            })
            .collect();
        tc.tree.unsort(&vals)
    }

    #[test]
    fn workspace_path_is_bit_exact_across_degree_modes() {
        // The allocation-free path (arena spans + per-chunk workspaces)
        // must reproduce the allocating reference path bit for bit in all
        // three degree-selection modes.
        let ps = uniform_cube(1500, 1.0, charges(), 37);
        for (name, params) in [
            ("fixed", TreecodeParams::fixed(6, 0.6)),
            ("adaptive", TreecodeParams::adaptive(3, 0.6)),
            ("tolerance", TreecodeParams::tolerance(1e-6, 0.6)),
        ] {
            let tc = Treecode::new(&ps, params).unwrap();
            let fast = tc.potentials();
            let reference = reference_potentials(&tc);
            for (i, (a, b)) in fast.values.iter().zip(&reference).enumerate() {
                assert_eq!(a, b, "{name} mode: target {i} diverged from reference");
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_variants_bitwise() {
        let ps = uniform_cube(900, 1.0, charges(), 41);
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6)).unwrap();
        let points: Vec<Vec3> = ps.iter().step_by(3).map(|p| p.position * 1.5).collect();

        let a = tc.potentials_at(&points);
        let mut buf = vec![0.0; points.len()];
        let stats = tc.potentials_at_into(&points, &mut buf);
        assert_eq!(a.values, buf);
        assert_eq!(a.stats, stats);

        let f = tc.fields_at(&points);
        let mut fbuf = vec![(0.0, Vec3::ZERO); points.len()];
        let fstats = tc.fields_at_into(&points, &mut fbuf);
        assert_eq!(f.values, fbuf);
        assert_eq!(f.stats, fstats);
    }

    #[test]
    fn scratch_stack_sized_for_pathological_cluster_depth() {
        // Geometrically nested particle pairs force an octree whose height
        // blows far past what the old fixed 64-slot stack guess assumed.
        // The `8·(height+1)` sizing must cover the sweep without the stack
        // ever reallocating mid-traversal.
        let mut ps = Vec::new();
        let mut s = 1.0f64;
        for k in 0..30 {
            let q = if k % 2 == 0 { 1.0 } else { -1.0 };
            ps.push(Particle::new(Vec3::new(s, s * 0.9, s * 0.8), q));
            ps.push(Particle::new(Vec3::new(s * 0.9, s * 0.3, s * 0.2), -q));
            s *= 0.5;
        }
        ps.push(Particle::new(Vec3::ZERO, 1.0));
        let params = TreecodeParams::fixed(3, 0.7).with_leaf_capacity(1);
        let tc = Treecode::new(&ps, params).unwrap();
        let height = tc.tree.height();
        assert!(
            8 * (height + 1) > 64,
            "distribution too shallow to exercise the regression (height {height})"
        );

        let mut scratch = Scratch::new(tc.max_degree(), height);
        let cap = scratch.stack.capacity();
        let mut stats = EvalStats::default();
        for i in 0..ps.len() {
            let x = tc.tree.particles()[i].position;
            tc.eval_potential(x, TargetKind::SourceParticle(i), &mut scratch, &mut stats);
            assert!(
                scratch.stack.capacity() == cap,
                "stack reallocated mid-sweep (target {i}): {} -> {}",
                cap,
                scratch.stack.capacity()
            );
        }
    }

    #[test]
    fn compiled_mode_matches_scalar_mode() {
        use crate::params::EvalMode;
        let ps = uniform_cube(2000, 1.0, charges(), 43);
        for (name, params) in [
            ("fixed", TreecodeParams::fixed(5, 0.6)),
            ("adaptive", TreecodeParams::adaptive(3, 0.6)),
            ("tolerance", TreecodeParams::tolerance(1e-6, 0.6)),
        ] {
            let scalar = Treecode::new(&ps, params).unwrap().potentials();
            let compiled = Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled))
                .unwrap()
                .potentials();
            assert_eq!(
                scalar.stats, compiled.stats,
                "{name} mode: counters diverged"
            );
            for (i, (a, b)) in scalar.values.iter().zip(&compiled.values).enumerate() {
                let tol = 1e-12 * a.abs().max(1.0);
                assert!(
                    (a - b).abs() <= tol,
                    "{name} mode: target {i}: scalar {a} vs compiled {b}"
                );
            }
        }
    }

    #[test]
    fn two_particle_system_exact() {
        let ps = [
            Particle::new(Vec3::ZERO, 2.0),
            Particle::new(Vec3::new(1.0, 0.0, 0.0), -3.0),
        ];
        let tc = Treecode::new(&ps, TreecodeParams::default()).unwrap();
        let r = tc.potentials();
        assert!((r.values[0] - -3.0).abs() < 1e-12);
        assert!((r.values[1] - 2.0).abs() < 1e-12);
    }
}
