//! Barnes–Hut treecode with analyzed error bounds and adaptive multipole
//! degree selection — the primary contribution of *Analyzing the Error
//! Bounds of Multipole-Based Treecodes* (Sarin, Grama & Sameh, SC 1998).
//!
//! # The method
//!
//! The classical Barnes–Hut method approximates the potential at a point by
//! truncated multipole expansions of every cluster admitted by the
//! α-criterion (the multipole acceptance criterion, MAC). The paper shows
//! that the error of one such interaction grows **linearly with the cluster
//! charge** `A = Σ|qᵢ|` (Theorem 2), so with a fixed expansion degree the
//! aggregate error grows with the system charge — `O(n)` for uniform charge
//! density.
//!
//! The improved method selects the expansion degree **per cluster**
//! (Theorem 3): clusters with larger weight get proportionally higher
//! degree so every admitted interaction carries the same error, which drops
//! the aggregate error to `O(log n)` while increasing the number of
//! evaluated series terms only by a small constant factor (Theorem 4).
//!
//! # Quick start
//!
//! ```
//! use mbt_geometry::distribution::{uniform_cube, ChargeModel};
//! use mbt_treecode::{Treecode, TreecodeParams};
//!
//! let particles = uniform_cube(2_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
//! // the paper's improved method: adaptive degree with p_min = 3, α = 0.6
//! let params = TreecodeParams::adaptive(3, 0.6);
//! let tc = Treecode::new(&particles, params).unwrap();
//! let eval = tc.potentials();
//! assert_eq!(eval.values.len(), particles.len());
//! // instrumentation mirrors the paper's Table 1 "Terms" column
//! assert!(eval.stats.terms > 0);
//! ```

#![forbid(unsafe_code)]

pub mod accuracy;
mod compile;
pub mod direct;
pub mod dual;
pub mod eval;
pub mod mac;
pub mod params;
pub mod stats;
pub mod upward;

pub use accuracy::{relative_error, sampled_relative_error, SampledError};
pub use eval::EvalResult;
pub use mbt_multipole::bounds::f32_near_admissible;
pub use mbt_multipole::{DegreeSelector, DegreeWeighting};
pub use params::{EvalMode, Precision, RefWeight, TreecodeError, TreecodeParams};
pub use stats::EvalStats;
pub use upward::{upward_pass_count, Treecode};
