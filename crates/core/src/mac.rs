//! The multipole acceptance criterion (α-criterion).
//!
//! A particle–cluster interaction is admitted when the ratio of the
//! distance `r` (target to the cluster's center of charge) to the enclosing
//! box dimension `d` exceeds `1/α`, i.e. `d ≤ α·r`. Two safety conditions
//! accompany it:
//!
//! * the target must lie outside the cluster's box (a box can pass the
//!   ratio test while containing the target, when the center of charge
//!   sits far from the target's corner), and
//! * `r` must exceed the cluster's tight radius `a` (Theorem 1's region of
//!   convergence).

use mbt_geometry::Vec3;
use mbt_tree::Node;

/// Result of testing a node against a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacDecision {
    /// Approximate the cluster by its multipole expansion.
    Accept,
    /// Descend into the children (or direct-sum a leaf).
    Open,
}

/// Applies the α-criterion for target `x` against cluster `node`.
#[inline]
#[must_use]
pub fn mac(node: &Node, x: Vec3, alpha: f64) -> MacDecision {
    let d = node.edge();
    let r2 = x.distance_sq(node.center);
    // ratio test in squared form (avoids the sqrt on the hot path)
    if d * d <= alpha * alpha * r2 && r2 > node.radius * node.radius && !node.bbox.contains(x) {
        MacDecision::Accept
    } else {
        MacDecision::Open
    }
}

/// Lemma 1's sandwich: for an interaction admitted at a box of edge `d`
/// (whose parent of edge `2d` was rejected), the distance obeys
/// `d/α ≤ r ≤ d(2/α + √3)`. Returns `(r_min, r_max)`.
#[must_use]
pub fn lemma1_distance_bounds(d: f64, alpha: f64) -> (f64, f64) {
    (d / alpha, d * (2.0 / alpha + 3.0f64.sqrt()))
}

/// Lemma 2's constant: an upper bound on the number of same-size boxes that
/// can interact with one target — the volume of the Lemma-1 annulus over
/// the box volume.
#[must_use]
pub fn lemma2_interaction_bound(alpha: f64) -> f64 {
    let (r_lo, r_hi) = lemma1_distance_bounds(1.0, alpha);
    // boxes lie fully inside the annulus grown by one circumradius
    let pad = 3.0f64.sqrt() / 2.0;
    let outer = r_hi + pad;
    let inner = (r_lo - pad).max(0.0);
    (4.0 / 3.0) * std::f64::consts::PI * (outer.powi(3) - inner.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::{Aabb, Particle};
    use mbt_tree::{Octree, OctreeParams};

    fn leaf_node(center: Vec3, edge: f64) -> Node {
        // build a tiny tree and take its root as a representative node
        let ps = [
            Particle::new(center + Vec3::splat(-edge * 0.25), 1.0),
            Particle::new(center + Vec3::splat(edge * 0.25), 1.0),
        ];
        let t = Octree::build(&ps, OctreeParams { leaf_capacity: 4 }).unwrap();
        t.node(t.root()).clone()
    }

    #[test]
    fn far_target_accepted_near_target_opened() {
        let n = leaf_node(Vec3::ZERO, 1.0);
        let d = n.edge();
        let alpha = 0.5;
        assert_eq!(
            mac(&n, Vec3::new(10.0 * d, 0.0, 0.0), alpha),
            MacDecision::Accept
        );
        assert_eq!(
            mac(&n, Vec3::new(1.01 * d, 0.0, 0.0), alpha),
            MacDecision::Open
        );
    }

    #[test]
    fn threshold_is_d_over_alpha() {
        let n = leaf_node(Vec3::ZERO, 1.0);
        let d = n.edge();
        let alpha = 0.5;
        // r slightly above d/α accepted; slightly below opened (center of
        // charge is the box center here by symmetry)
        let c = n.center;
        assert_eq!(
            mac(&n, c + Vec3::X * (d / alpha * 1.001), alpha),
            MacDecision::Accept
        );
        assert_eq!(
            mac(&n, c + Vec3::X * (d / alpha * 0.999), alpha),
            MacDecision::Open
        );
    }

    #[test]
    fn containing_box_is_never_accepted() {
        // center of charge in one corner, target in the opposite corner:
        // the ratio test could pass, the containment guard must refuse
        let ps = [
            Particle::new(Vec3::new(-0.49, -0.49, -0.49), 5.0),
            Particle::new(Vec3::new(0.49, 0.49, 0.49), 0.001),
        ];
        let t = Octree::build(&ps, OctreeParams { leaf_capacity: 4 }).unwrap();
        let root = t.node(t.root());
        let target = Vec3::new(0.49, 0.49, 0.49);
        assert!(root.bbox.contains(target));
        assert_eq!(mac(root, target, 0.9), MacDecision::Open);
    }

    #[test]
    fn larger_alpha_accepts_more() {
        let n = leaf_node(Vec3::ZERO, 1.0);
        // place the target so d/r = 0.5: opened at α = 0.3, accepted at 0.9
        let x = n.center + Vec3::X * (2.0 * n.edge());
        assert_eq!(mac(&n, x, 0.3), MacDecision::Open);
        assert_eq!(mac(&n, x, 0.9), MacDecision::Accept);
    }

    #[test]
    fn lemma1_bounds_ordered() {
        for alpha in [0.3, 0.5, 0.8, 1.0] {
            let (lo, hi) = lemma1_distance_bounds(1.0, alpha);
            assert!(lo > 0.0 && hi > lo);
            // bound tightens (ratio hi/lo shrinks) as alpha shrinks
        }
        let (lo1, hi1) = lemma1_distance_bounds(1.0, 0.2);
        let (lo2, hi2) = lemma1_distance_bounds(1.0, 0.9);
        assert!(hi1 / lo1 < hi2 / lo2);
    }

    #[test]
    fn lemma2_bound_positive_and_growing_in_alpha_tail() {
        let k_small = lemma2_interaction_bound(0.3);
        let k_large = lemma2_interaction_bound(0.9);
        assert!(k_small > 0.0 && k_large > 0.0);
        // smaller alpha admits interactions only farther out, where more
        // same-size boxes fit: the constant grows as alpha decreases
        assert!(k_small > k_large);
    }

    #[test]
    fn accept_region_is_outside_bbox() {
        let n = leaf_node(Vec3::new(2.0, 2.0, 2.0), 1.0);
        let inside = n.bbox.center();
        assert!(Aabb::contains(&n.bbox, inside));
        assert_eq!(mac(&n, inside, 0.99), MacDecision::Open);
    }
}
