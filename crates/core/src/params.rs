//! Treecode run parameters.

use mbt_multipole::{DegreeSelector, MAX_DEGREE};
use mbt_tree::TreeError;

/// How the adaptive rule's reference weight `w_ref` (the paper's
/// "threshold value" that receives the minimum degree) is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RefWeight {
    /// The smallest positive leaf-cluster weight. Most conservative: every
    /// heavier cluster is boosted, maximising accuracy (and cost).
    MinLeaf,
    /// The median leaf-cluster weight (default). Clusters at or below a
    /// typical leaf get `p_min`; only genuinely heavier clusters are
    /// boosted — this is the paper's thresholding, and keeps the term-count
    /// overhead within the small constant of Theorem 4.
    #[default]
    MedianLeaf,
    /// A caller-supplied threshold weight.
    Explicit(f64),
}

/// Which execution strategy an evaluation sweep uses. Both modes run the
/// identical α-MAC traversal and account identical interaction counts;
/// they differ only in how the arithmetic is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// One target at a time, interleaved with traversal — the bit-exact
    /// reference path (and the default, so existing results are
    /// reproducible bit for bit).
    #[default]
    Scalar,
    /// Two-phase: compile per-chunk traversals into flat, degree-bucketed
    /// interaction lists, then execute them with batched SoA kernels
    /// (`mbt-multipole::batch`). Per interaction the arithmetic is
    /// bit-identical to the scalar path; per-target totals differ only by
    /// a documented summation reordering (DESIGN.md §10).
    Compiled,
}

/// Arithmetic precision of the near-field (P2P) kernels in compiled
/// evaluation sweeps.
///
/// The far field (M2P) always runs in f64 — truncation error there is
/// governed by the paper's Theorems 1/2 and would be swamped by f32
/// roundoff at useful degrees. The near field has no truncation error at
/// all, so its precision can be lowered whenever the *far-field* bound
/// already exceeds the near-field roundoff budget
/// ([`mbt_multipole::bounds::f32_near_admissible`] states the inequality).
/// The engine's accuracy resolver applies that test automatically;
/// setting `F32Near` here opts a hand-built parameter set in directly.
///
/// Scalar-mode sweeps ignore the knob: they are the bit-exact f64
/// reference path by definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full double precision everywhere (default; bit-exact reference).
    #[default]
    F64,
    /// Single-precision near field over the tree's f32 particle mirror;
    /// far field stays f64. Sound only when the truncation bound
    /// dominates f32 roundoff — see the admission rule above.
    F32Near,
}

/// Parameters of a treecode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreecodeParams {
    /// Multipole acceptance parameter: a cluster in a box of edge `d` at
    /// distance `r` from the target is admitted when `d ≤ α·r`. Must be
    /// positive; guaranteed convergence of the error bounds requires
    /// `α < 2/√3 ≈ 1.1547` (the paper uses `α < 1`).
    pub alpha: f64,
    /// Degree policy: `Fixed(p)` is the original Barnes–Hut method,
    /// `Adaptive {..}` the paper's improved method.
    pub degree: DegreeSelector,
    /// Maximum particles per leaf (32–64 recommended by the paper for
    /// cache behaviour).
    pub leaf_capacity: usize,
    /// Aggregation width `w`: number of consecutive (proximity-ordered)
    /// targets evaluated per parallel work unit.
    pub eval_chunk: usize,
    /// Reference-weight policy for the adaptive rule (ignored by
    /// `Fixed(_)`).
    pub ref_weight: RefWeight,
    /// Plummer softening length ε: near-field pair interactions use
    /// `1/√(r²+ε²)` instead of `1/r`. Zero (default) is the exact kernel.
    /// Standard in gravitational N-body work to regularise close
    /// encounters; the far field is unchanged because the α-criterion
    /// admits clusters only at distances far beyond any sensible ε.
    pub softening: f64,
    /// Execution strategy of evaluation sweeps (default: [`EvalMode::Scalar`]).
    pub eval_mode: EvalMode,
    /// Near-field arithmetic precision for compiled sweeps (default:
    /// [`Precision::F64`]; ignored in scalar mode).
    pub near_precision: Precision,
}

impl TreecodeParams {
    /// Original Barnes–Hut: fixed degree `p` for every cluster.
    #[must_use]
    pub fn fixed(p: usize, alpha: f64) -> Self {
        TreecodeParams {
            alpha,
            degree: DegreeSelector::Fixed(p),
            leaf_capacity: 32,
            eval_chunk: 64,
            ref_weight: RefWeight::default(),
            softening: 0.0,
            eval_mode: EvalMode::Scalar,
            near_precision: Precision::F64,
        }
    }

    /// The paper's improved method with defaults (`ChargeOverDistance`
    /// weighting, `p_max = MAX_DEGREE`).
    #[must_use]
    pub fn adaptive(p_min: usize, alpha: f64) -> Self {
        TreecodeParams {
            alpha,
            degree: DegreeSelector::adaptive(p_min, alpha),
            leaf_capacity: 32,
            eval_chunk: 64,
            ref_weight: RefWeight::default(),
            softening: 0.0,
            eval_mode: EvalMode::Scalar,
            near_precision: Precision::F64,
        }
    }

    /// Tolerance-driven degrees: each interaction meets an absolute error
    /// budget `tol` at its actual distance (per-interaction truncation of
    /// series stored at the worst-case degree).
    #[must_use]
    pub fn tolerance(tol: f64, alpha: f64) -> Self {
        TreecodeParams {
            alpha,
            degree: DegreeSelector::tolerance(tol),
            leaf_capacity: 32,
            eval_chunk: 64,
            ref_weight: RefWeight::default(),
            softening: 0.0,
            eval_mode: EvalMode::Scalar,
            near_precision: Precision::F64,
        }
    }

    /// Sets the Plummer softening length.
    #[must_use]
    pub fn with_softening(mut self, softening: f64) -> Self {
        self.softening = softening.max(0.0);
        self
    }

    /// Sets the reference-weight policy.
    #[must_use]
    pub fn with_ref_weight(mut self, ref_weight: RefWeight) -> Self {
        self.ref_weight = ref_weight;
        self
    }

    /// Sets the leaf capacity.
    #[must_use]
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Sets the aggregation width.
    #[must_use]
    pub fn with_eval_chunk(mut self, eval_chunk: usize) -> Self {
        self.eval_chunk = eval_chunk.max(1);
        self
    }

    /// Sets the evaluation execution strategy.
    #[must_use]
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }

    /// Sets the near-field arithmetic precision (compiled sweeps only).
    #[must_use]
    pub fn with_near_precision(mut self, near_precision: Precision) -> Self {
        self.near_precision = near_precision;
        self
    }

    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), TreecodeError> {
        if self.alpha.is_nan() || self.alpha <= 0.0 || !self.alpha.is_finite() {
            return Err(TreecodeError::InvalidAlpha(self.alpha));
        }
        let max_p = self.degree.max_degree();
        if max_p > MAX_DEGREE {
            return Err(TreecodeError::DegreeTooLarge(max_p));
        }
        if let DegreeSelector::Tolerance { tol, .. } = self.degree {
            if tol.is_nan() || tol <= 0.0 || !tol.is_finite() {
                return Err(TreecodeError::InvalidTolerance(tol));
            }
        }
        if self.leaf_capacity == 0 {
            return Err(TreecodeError::Tree(TreeError::ZeroLeafCapacity));
        }
        if let RefWeight::Explicit(w) = self.ref_weight {
            // w_ref divides inside Theorem 3's log(w_j / w_ref): zero,
            // negative, or non-finite thresholds yield garbage degrees
            if w.is_nan() || w <= 0.0 || !w.is_finite() {
                return Err(TreecodeError::InvalidRefWeight(w));
            }
        }
        // `softening` is a pub field, so literal construction (and
        // engine-supplied `Accuracy::Params`) can bypass `with_softening`'s
        // clamp; a NaN/∞/negative ε poisons every 1/√(r²+ε²) kernel
        if self.softening.is_nan() || self.softening < 0.0 || !self.softening.is_finite() {
            return Err(TreecodeError::InvalidSoftening(self.softening));
        }
        Ok(())
    }
}

impl Default for TreecodeParams {
    /// The paper's improved method at `p_min = 4, α = 0.5`.
    fn default() -> Self {
        TreecodeParams::adaptive(4, 0.5)
    }
}

/// Treecode construction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TreecodeError {
    /// Underlying octree construction failed.
    Tree(TreeError),
    /// `alpha` was zero, negative, or non-finite.
    InvalidAlpha(f64),
    /// Requested degree exceeds the table limit [`MAX_DEGREE`].
    DegreeTooLarge(usize),
    /// A tolerance-driven run was configured with a non-positive or
    /// non-finite tolerance.
    InvalidTolerance(f64),
    /// `RefWeight::Explicit` carried a zero, negative, or non-finite
    /// reference weight.
    InvalidRefWeight(f64),
    /// The Plummer softening length was negative or non-finite.
    InvalidSoftening(f64),
}

impl std::fmt::Display for TreecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreecodeError::Tree(e) => write!(f, "tree construction failed: {e}"),
            TreecodeError::InvalidAlpha(a) => write!(f, "invalid MAC parameter alpha = {a}"),
            TreecodeError::DegreeTooLarge(p) => {
                write!(f, "degree {p} exceeds the supported maximum {MAX_DEGREE}")
            }
            TreecodeError::InvalidTolerance(t) => {
                write!(f, "invalid interaction tolerance {t}")
            }
            TreecodeError::InvalidRefWeight(w) => {
                write!(f, "invalid explicit reference weight w_ref = {w}")
            }
            TreecodeError::InvalidSoftening(eps) => {
                write!(f, "invalid softening length epsilon = {eps}")
            }
        }
    }
}

impl std::error::Error for TreecodeError {}

impl From<TreeError> for TreecodeError {
    fn from(e: TreeError) -> Self {
        TreecodeError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_validation() {
        assert!(TreecodeParams::fixed(5, 0.7).validate().is_ok());
        assert!(TreecodeParams::adaptive(3, 0.5).validate().is_ok());
        assert!(TreecodeParams::default().validate().is_ok());
        assert!(matches!(
            TreecodeParams::fixed(5, 0.0).validate(),
            Err(TreecodeError::InvalidAlpha(_))
        ));
        assert!(matches!(
            TreecodeParams::fixed(5, f64::NAN).validate(),
            Err(TreecodeError::InvalidAlpha(_))
        ));
        assert!(matches!(
            TreecodeParams::fixed(99, 0.5).validate(),
            Err(TreecodeError::DegreeTooLarge(99))
        ));
        assert!(matches!(
            TreecodeParams::fixed(5, 0.5)
                .with_leaf_capacity(0)
                .validate(),
            Err(TreecodeError::Tree(TreeError::ZeroLeafCapacity))
        ));
    }

    #[test]
    fn explicit_ref_weight_is_validated() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = TreecodeParams::adaptive(3, 0.5).with_ref_weight(RefWeight::Explicit(w));
            assert!(
                matches!(p.validate(), Err(TreecodeError::InvalidRefWeight(_))),
                "w_ref = {w} accepted"
            );
        }
        let ok = TreecodeParams::adaptive(3, 0.5).with_ref_weight(RefWeight::Explicit(2.5));
        assert!(ok.validate().is_ok());
        // the policy choices carry no caller value and stay unchecked
        for policy in [RefWeight::MinLeaf, RefWeight::MedianLeaf] {
            assert!(TreecodeParams::adaptive(3, 0.5)
                .with_ref_weight(policy)
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn softening_is_validated() {
        // the pub field bypasses with_softening's clamp
        for eps in [-1e-3, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut p = TreecodeParams::fixed(4, 0.6);
            p.softening = eps;
            assert!(
                matches!(p.validate(), Err(TreecodeError::InvalidSoftening(_))),
                "softening = {eps} accepted"
            );
        }
        let mut p = TreecodeParams::fixed(4, 0.6);
        p.softening = 1e-3;
        assert!(p.validate().is_ok());
        // with_softening clamps negatives to the valid range
        assert!(TreecodeParams::fixed(4, 0.6)
            .with_softening(-5.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn builder_setters() {
        let p = TreecodeParams::fixed(4, 0.6)
            .with_leaf_capacity(8)
            .with_eval_chunk(0);
        assert_eq!(p.leaf_capacity, 8);
        assert_eq!(p.eval_chunk, 1); // clamped
    }

    #[test]
    fn near_precision_defaults_to_f64() {
        for p in [
            TreecodeParams::fixed(4, 0.6),
            TreecodeParams::adaptive(3, 0.5),
            TreecodeParams::tolerance(1e-6, 0.5),
            TreecodeParams::default(),
        ] {
            assert_eq!(p.near_precision, Precision::F64);
        }
        let p = TreecodeParams::fixed(4, 0.7).with_near_precision(Precision::F32Near);
        assert_eq!(p.near_precision, Precision::F32Near);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn error_display() {
        let e = TreecodeError::InvalidAlpha(-1.0);
        assert!(format!("{e}").contains("alpha"));
        let e = TreecodeError::DegreeTooLarge(99);
        assert!(format!("{e}").contains("99"));
    }
}
