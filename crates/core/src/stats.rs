//! Evaluation instrumentation.
//!
//! The paper's serial-complexity comparison (Table 1, Figure 2) counts the
//! number of multipole terms evaluated — "an excellent indication of the
//! serial computation time" that is independent of parallel efficiency and
//! machine load. [`EvalStats`] collects exactly that, plus the breakdowns
//! needed for the Theorem-4 cost analysis.

/// Counters accumulated during a treecode evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalStats {
    /// Number of evaluation targets.
    pub targets: u64,
    /// Particle–cluster interactions (expansion evaluations).
    pub pc_interactions: u64,
    /// Direct particle–particle pairs evaluated.
    pub direct_pairs: u64,
    /// Total multipole terms evaluated: `Σ (p+1)²` over all accepted
    /// interactions — the paper's "Terms" column.
    pub terms: u64,
    /// Interactions per expansion degree (`by_degree[p]`).
    pub by_degree: Vec<u64>,
}

impl EvalStats {
    /// An empty accumulator expecting `targets` evaluation targets.
    #[must_use]
    pub fn for_targets(targets: u64) -> EvalStats {
        EvalStats {
            targets,
            ..EvalStats::default()
        }
    }

    /// Records one accepted particle–cluster interaction of degree `p`.
    #[inline]
    pub fn record_interaction(&mut self, p: usize) {
        self.pc_interactions += 1;
        self.terms += ((p + 1) * (p + 1)) as u64;
        if self.by_degree.len() <= p {
            self.by_degree.resize(p + 1, 0);
        }
        self.by_degree[p] += 1;
    }

    /// Records `pairs` direct particle–particle evaluations.
    #[inline]
    pub fn record_direct(&mut self, pairs: u64) {
        self.direct_pairs += pairs;
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &EvalStats) {
        self.targets += other.targets;
        self.pc_interactions += other.pc_interactions;
        self.direct_pairs += other.direct_pairs;
        self.terms += other.terms;
        if self.by_degree.len() < other.by_degree.len() {
            self.by_degree.resize(other.by_degree.len(), 0);
        }
        for (a, b) in self.by_degree.iter_mut().zip(&other.by_degree) {
            *a += *b;
        }
    }

    /// The largest degree used.
    #[must_use]
    pub fn max_degree_used(&self) -> usize {
        self.by_degree.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean interactions per target.
    #[must_use]
    pub fn interactions_per_target(&self) -> f64 {
        self.pc_interactions as f64 / self.targets.max(1) as f64
    }

    /// Total floating work proxy: terms plus direct pairs (a direct pair
    /// counts as one term).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.terms + self.direct_pairs
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "targets={} pc={} direct={} terms={} max_p={}",
            self.targets,
            self.pc_interactions,
            self.direct_pairs,
            self.terms,
            self.max_degree_used()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = EvalStats::for_targets(2);
        a.record_interaction(3); // 16 terms
        a.record_interaction(5); // 36 terms
        a.record_direct(10);
        assert_eq!(a.pc_interactions, 2);
        assert_eq!(a.terms, 52);
        assert_eq!(a.by_degree[3], 1);
        assert_eq!(a.by_degree[5], 1);
        assert_eq!(a.max_degree_used(), 5);
        assert_eq!(a.work(), 62);

        let mut b = EvalStats::for_targets(1);
        b.record_interaction(7);
        b.merge(&a);
        assert_eq!(b.targets, 3);
        assert_eq!(b.pc_interactions, 3);
        assert_eq!(b.terms, 52 + 64);
        assert_eq!(b.by_degree[3], 1);
        assert_eq!(b.by_degree[7], 1);
        assert!((b.interactions_per_target() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = EvalStats::default();
        assert_eq!(s.max_degree_used(), 0);
        assert_eq!(s.work(), 0);
        assert_eq!(s.interactions_per_target(), 0.0);
        assert!(format!("{s}").contains("targets=0"));
    }
}
