//! Treecode construction: tree build, per-cluster degree selection, and the
//! upward (expansion construction) pass.

use std::sync::atomic::{AtomicU64, Ordering};

use mbt_geometry::{Particle, Vec3};
use mbt_multipole::{p2m_into, tri_len, Complex, ExpansionRef, Workspace};
use mbt_tree::{Octree, OctreeParams};
use rayon::prelude::*;

use crate::params::{TreecodeError, TreecodeParams};

/// Process-wide count of completed upward passes (expansion
/// constructions). Mirrors [`mbt_tree::build_count`]: caching layers read
/// the counter around a code path to prove it rebuilt nothing.
static UPWARD_PASSES: AtomicU64 = AtomicU64::new(0);

/// The number of upward passes this process has run so far.
#[must_use]
pub fn upward_pass_count() -> u64 {
    // ordering: Relaxed — independent monotonic counter; no data is published through it
    UPWARD_PASSES.load(Ordering::Relaxed)
}

/// How many node expansions one parallel P2M task builds with a single
/// reused [`Workspace`] — allocations per upward pass are `O(tasks)`, not
/// `O(nodes × particles)`.
const P2M_CHUNK: usize = 64;

/// Flat coefficient storage for every node expansion in the tree.
///
/// One contiguous `Vec<Complex>` holds all coefficient spans back to back
/// in node order; `offsets[id]..offsets[id + 1]` is node `id`'s triangular
/// array (its length encodes the node's degree). Compared to a
/// `Vec<MultipoleExpansion>` this removes one heap allocation per node,
/// and — because octree node order is a depth-first layout where siblings
/// are adjacent — makes the upward and evaluation passes walk memory
/// almost sequentially instead of chasing per-node pointers.
pub(crate) struct CoeffArena {
    /// Prefix sums of span lengths; `len = nodes + 1`.
    offsets: Vec<usize>,
    /// All coefficients, node `id` at `offsets[id]..offsets[id + 1]`.
    data: Vec<Complex>,
}

impl CoeffArena {
    /// A zeroed arena sized for the given per-node degrees.
    fn zeroed(degrees: &[usize]) -> CoeffArena {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &p in degrees {
            total += tri_len(p);
            offsets.push(total);
        }
        CoeffArena {
            offsets,
            // lint: allow(alloc, the arena itself — one allocation per build)
            data: vec![Complex::ZERO; total],
        }
    }

    /// Arena layout contracts, checked after every upward pass when the
    /// `validate` feature is enabled: offsets start at zero, grow
    /// monotonically (spans pairwise disjoint), cover `data` exactly, and
    /// every span holds the triangular array for its node's degree.
    ///
    /// Violations indicate a construction bug, never bad user input.
    #[cfg(feature = "validate")]
    fn validate_contracts(&self, degrees: &[usize]) {
        assert_eq!(
            self.offsets.len(),
            degrees.len() + 1,
            "validate: arena must carry one offset per node plus a sentinel"
        );
        assert_eq!(
            self.offsets.first().copied(),
            Some(0),
            "validate: arena offsets must start at zero"
        );
        assert!(
            self.offsets.windows(2).all(|w| w[0] <= w[1]),
            "validate: arena offsets must be monotone (disjoint spans)"
        );
        assert_eq!(
            self.offsets.last().copied(),
            Some(self.data.len()),
            "validate: arena spans must cover the buffer exactly"
        );
        for (id, &p) in degrees.iter().enumerate() {
            assert_eq!(
                self.offsets[id + 1] - self.offsets[id],
                tri_len(p),
                "validate: span of node {id} must be the triangular array for its degree"
            );
        }
    }

    /// Node `id`'s coefficient span.
    #[inline]
    pub(crate) fn span(&self, id: usize) -> &[Complex] {
        &self.data[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Resident heap footprint of the arena in bytes (offsets + data).
    fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.data.len() * std::mem::size_of::<Complex>()
    }

    /// Splits the whole arena into per-node mutable spans (for the
    /// parallel upward pass: the spans are disjoint by construction).
    fn split_mut(&mut self) -> Vec<&mut [Complex]> {
        let mut spans = Vec::with_capacity(self.offsets.len() - 1);
        let mut rest = self.data.as_mut_slice();
        for w in self.offsets.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            spans.push(head);
            rest = tail;
        }
        spans
    }
}

/// A fully built treecode, ready to evaluate potentials and fields.
///
/// Construction performs:
///
/// 1. octree build over the particle set,
/// 2. degree selection per cluster — fixed (original method) or by the
///    paper's Theorem-3 rule relative to the smallest leaf-cluster weight,
/// 3. the upward pass: a multipole expansion per node, each computed
///    directly from the node's particles at the node's own degree ("the
///    multipole series are computed a priori to the maximum required
///    degree" — all degree inputs are available at tree-construction time),
///    written into one flat [`CoeffArena`] shared by every node.
pub struct Treecode {
    pub(crate) tree: Octree,
    pub(crate) params: TreecodeParams,
    pub(crate) degrees: Vec<usize>,
    pub(crate) arena: CoeffArena,
    pub(crate) ref_weight: f64,
}

impl Treecode {
    /// Builds the treecode over a particle set.
    pub fn new(particles: &[Particle], params: TreecodeParams) -> Result<Treecode, TreecodeError> {
        params.validate()?;
        let tree = Octree::build(
            particles,
            OctreeParams {
                leaf_capacity: params.leaf_capacity,
            },
        )?;
        Ok(Self::from_tree(tree, params))
    }

    /// Builds the treecode over an already-constructed octree.
    pub fn from_tree(tree: Octree, params: TreecodeParams) -> Treecode {
        let selector = params.degree;
        let ref_weight = {
            let w = match params.ref_weight {
                crate::params::RefWeight::MinLeaf => {
                    tree.min_leaf_weight(|n| selector.weight(n.abs_charge, n.edge()))
                }
                crate::params::RefWeight::MedianLeaf => {
                    let mut ws: Vec<f64> = tree
                        .nodes()
                        .iter()
                        .filter(|n| n.is_leaf && !n.is_empty())
                        .map(|n| selector.weight(n.abs_charge, n.edge()))
                        .filter(|&w| w > 0.0)
                        .collect(); // lint: allow(alloc, once per tree build)
                    if ws.is_empty() {
                        f64::INFINITY
                    } else {
                        let mid = ws.len() / 2;
                        *ws.select_nth_unstable_by(mid, f64::total_cmp).1
                    }
                }
                crate::params::RefWeight::Explicit(w) => w,
            };
            if w.is_finite() && w > 0.0 {
                w
            } else {
                1.0 // all-zero charges: any reference works, degrees = p_min
            }
        };
        let degrees: Vec<usize> = tree
            .nodes()
            .iter()
            .map(|n| {
                selector.degree_for_node(n.abs_charge, n.radius, n.edge(), params.alpha, ref_weight)
            })
            .collect(); // lint: allow(alloc, per-node degrees, once per build)
        let arena = Self::upward_pass(&tree, &degrees);
        #[cfg(feature = "validate")]
        arena.validate_contracts(&degrees);
        Treecode {
            tree,
            params,
            degrees,
            arena,
            ref_weight,
        }
    }

    /// The upward pass.
    ///
    /// When every node carries the same degree (the original fixed-degree
    /// method), expansions are built bottom-up: P2M at the leaves, M2M to
    /// the parents — exact, because an M2M to an equal-or-lower target
    /// degree loses nothing, and cheaper than re-expanding all particles
    /// at every level. With per-cluster degrees (the improved method) a
    /// parent's degree exceeds its children's, so its high-order
    /// coefficients are not recoverable from the children; those nodes are
    /// expanded directly from their particles ("the multipole series are
    /// computed a priori to the maximum required degree").
    ///
    /// Both paths write straight into the flat arena: the parallel P2M
    /// phase splits it into disjoint per-node spans (chunks of
    /// [`P2M_CHUNK`] nodes share one scratch [`Workspace`]), and the
    /// fixed-degree M2M phase walks the node order in reverse,
    /// accumulating each child span into its parent span in place.
    fn upward_pass(tree: &Octree, degrees: &[usize]) -> CoeffArena {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        UPWARD_PASSES.fetch_add(1, Ordering::Relaxed);
        let uniform = degrees.windows(2).all(|w| w[0] == w[1]);
        let mut arena = CoeffArena::zeroed(degrees);
        {
            let mut spans = arena.split_mut();
            // P2M: every node directly when degrees vary (a parent's extra
            // coefficients are not recoverable from its children), leaves
            // only in the uniform case
            spans
                .par_chunks_mut(P2M_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let mut ws = Workspace::new();
                    for (k, out) in chunk.iter_mut().enumerate() {
                        let id = (ci * P2M_CHUNK + k) as u32;
                        let n = tree.node(id);
                        if uniform && !n.is_leaf {
                            continue; // already zero; filled by M2M below
                        }
                        p2m_into(
                            out,
                            n.center,
                            degrees[id as usize],
                            tree.particles_of(id),
                            &mut ws,
                        );
                    }
                });
        }
        if !uniform {
            return arena;
        }
        // fixed degree: M2M upward (node order reversed: children always
        // have larger indices than parents, so splitting the arena at the
        // parent's end yields the parent span and all child spans)
        for id in (0..tree.len()).rev() {
            let node = tree.node(id as u32);
            if node.is_leaf {
                continue;
            }
            let end = arena.offsets[id + 1];
            let (head, tail) = arena.data.split_at_mut(end);
            let parent = &mut head[arena.offsets[id]..];
            for c in node.child_ids() {
                let c = c as usize;
                let child = ExpansionRef::new(
                    tree.node(c as u32).center,
                    degrees[c],
                    &tail[arena.offsets[c] - end..arena.offsets[c + 1] - end],
                );
                child.m2m_accumulate_into(node.center, degrees[id], parent);
            }
        }
        arena
    }

    /// Rebuilds the expansions for a new charge vector (caller's original
    /// order) while keeping every geometric quantity — expansion centers,
    /// cluster radii, and per-node degrees — exactly as built.
    ///
    /// The returned treecode is therefore an **exactly linear** map of the
    /// charge vector, which is what an iterative solver needs from a
    /// repeated matvec over fixed geometry (the paper's BEM use case: the
    /// Gauss points never move; only the density iterates).
    #[must_use]
    pub fn with_charges(&self, charges: &[f64]) -> Treecode {
        // lint: allow(alloc, once per solver matvec, not per interaction)
        let mut tree = self.tree.clone();
        tree.set_charges_only(charges);
        let degrees = self.degrees.clone(); // lint: allow(alloc, once per matvec)
        let arena = Self::upward_pass(&tree, &degrees);
        Treecode {
            tree,
            params: self.params,
            degrees,
            arena,
            ref_weight: self.ref_weight,
        }
    }

    /// The underlying octree.
    #[inline]
    #[must_use]
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// The run parameters.
    #[inline]
    #[must_use]
    pub fn params(&self) -> &TreecodeParams {
        &self.params
    }

    /// The expansion degree assigned to each node.
    #[inline]
    #[must_use]
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// The reference weight `w_ref` used by the adaptive rule.
    #[inline]
    #[must_use]
    pub fn ref_weight(&self) -> f64 {
        self.ref_weight
    }

    /// The expansion of a node, viewed directly over its arena span (no
    /// per-node storage exists to return a reference to).
    #[inline]
    #[must_use]
    pub fn expansion(&self, id: mbt_tree::NodeId) -> ExpansionRef<'_> {
        let i = id as usize;
        ExpansionRef::new(
            self.tree.node(id).center,
            self.degrees[i],
            self.arena.span(i),
        )
    }

    /// The source particles in tree (Morton) order.
    #[inline]
    #[must_use]
    pub fn particles(&self) -> &[Particle] {
        self.tree.particles()
    }

    /// Resident heap footprint of the whole built plan in bytes: the
    /// octree (nodes, sorted particles, keys, permutation), the flat
    /// coefficient arena, and the per-node degree table. This is the
    /// quantity a plan cache charges against its byte budget — the
    /// treecode is exactly the expensive reusable artifact such a cache
    /// stores.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
            + self.arena.heap_bytes()
            + self.degrees.len() * std::mem::size_of::<usize>()
    }

    /// Total coefficient storage (complex numbers) across all expansions —
    /// the memory-side cost of the adaptive method.
    #[must_use]
    pub fn coefficient_count(&self) -> u64 {
        self.degrees
            .iter()
            .map(|&p| ((p + 1) * (p + 2) / 2) as u64)
            .sum()
    }

    /// The positions of the source particles in the caller's original
    /// order.
    #[must_use]
    pub fn original_positions(&self) -> Vec<Vec3> {
        // lint: allow(alloc, diagnostic accessor, not on the evaluation path)
        let sorted: Vec<Vec3> = self.tree.particles().iter().map(|p| p.position).collect();
        self.tree.unsort(&sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreecodeParams;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_multipole::MultipoleExpansion;

    fn particles(n: usize) -> Vec<Particle> {
        uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 11)
    }

    #[test]
    fn m2m_upward_matches_direct_p2m() {
        // the fixed-degree fast path (P2M at leaves + M2M up) must produce
        // the same coefficients as expanding every node's particles
        // directly — the translation identity, checked end to end
        let ps = particles(3000);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(6, 0.5)).unwrap();
        for (i, n) in tc.tree().nodes().iter().enumerate() {
            let direct =
                MultipoleExpansion::from_particles(n.center, 6, tc.tree().particles_of(i as u32));
            let fast = tc.expansion(i as u32);
            for deg in 0..=6usize {
                for m in 0..=deg as i64 {
                    let a = fast.coeff(deg, m);
                    let b = direct.coeff(deg, m);
                    assert!(
                        (a - b).norm() <= 1e-9 * (1.0 + b.norm()),
                        "node {i} coeff ({deg},{m}): {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_degrees_are_uniform() {
        let tc = Treecode::new(&particles(2000), TreecodeParams::fixed(5, 0.6)).unwrap();
        assert!(tc.degrees().iter().all(|&p| p == 5));
    }

    #[test]
    fn adaptive_degrees_grow_toward_root() {
        let tc = Treecode::new(
            &particles(8000),
            TreecodeParams::adaptive(3, 0.6).with_leaf_capacity(16),
        )
        .unwrap();
        let root_p = tc.degrees()[0];
        let leaf_p: Vec<usize> = tc
            .tree()
            .leaf_ids()
            .iter()
            .map(|&id| tc.degrees()[id as usize])
            .collect();
        let max_leaf_p = *leaf_p.iter().max().unwrap();
        assert!(
            root_p > max_leaf_p,
            "root degree {root_p} should exceed leaf degrees (max {max_leaf_p})"
        );
        // every node's degree >= p_min
        assert!(tc.degrees().iter().all(|&p| p >= 3));
        // monotone along every parent-child edge (parents have >= weight)
        for (i, n) in tc.tree().nodes().iter().enumerate() {
            for c in n.child_ids() {
                assert!(
                    tc.degrees()[c as usize] <= tc.degrees()[i],
                    "child degree exceeds parent degree"
                );
            }
        }
    }

    #[test]
    fn expansion_centers_match_nodes() {
        let tc = Treecode::new(&particles(500), TreecodeParams::fixed(4, 0.5)).unwrap();
        for (i, n) in tc.tree().nodes().iter().enumerate() {
            let e = tc.expansion(i as u32);
            assert_eq!(e.center(), n.center);
            assert_eq!(e.degree(), tc.degrees()[i]);
        }
    }

    #[test]
    fn zero_charges_fall_back_gracefully() {
        let ps: Vec<Particle> = particles(100)
            .into_iter()
            .map(|p| Particle::new(p.position, 0.0))
            .collect();
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(2, 0.5)).unwrap();
        assert!(tc.degrees().iter().all(|&p| p == 2));
        assert!(tc.ref_weight().is_finite());
    }

    #[test]
    fn coefficient_count_larger_for_adaptive() {
        let ps = particles(4000);
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
        let adaptive = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6)).unwrap();
        assert!(adaptive.coefficient_count() > fixed.coefficient_count());
    }

    #[test]
    fn heap_bytes_accounts_tree_and_arena() {
        let ps = particles(2000);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6)).unwrap();
        let bytes = tc.heap_bytes();
        // at least the particle storage and the coefficient arena
        let coeffs: usize = tc
            .degrees()
            .iter()
            .map(|&p| mbt_multipole::coeff_bytes(p))
            .sum();
        assert!(bytes >= ps.len() * std::mem::size_of::<Particle>() + coeffs);
        // a higher degree must cost more memory
        let big = Treecode::new(&ps, TreecodeParams::fixed(8, 0.6)).unwrap();
        assert!(big.heap_bytes() > bytes);
    }

    #[test]
    fn upward_pass_counter_advances_per_build() {
        let ps = particles(300);
        let before = upward_pass_count();
        let tc = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
        let _rebuilt = tc.with_charges(&vec![1.0; ps.len()]);
        // other tests run concurrently in this process, so the counter may
        // advance by more than our two passes — never fewer
        assert!(upward_pass_count() >= before + 2);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Treecode::new(&particles(10), TreecodeParams::fixed(4, -1.0)).is_err());
        assert!(Treecode::new(&[], TreecodeParams::default()).is_err());
    }
}
