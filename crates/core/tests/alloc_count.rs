//! Pins down the evaluation memory discipline: one full `potentials()`
//! sweep may allocate proportionally to the number of *chunks* (each
//! parallel task owns one `Scratch`), never proportionally to the number
//! of accepted or near-field *interactions*. A counting global allocator
//! measures the real thing — no inspection arguments, just numbers.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_treecode::{EvalMode, Treecode, TreecodeParams};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the atomic counter has no effect on layout or
// pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: trait-mandated `unsafe fn`; the body only counts and delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, who
        // guarantees it has non-zero size per the GlobalAlloc contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: trait-mandated `unsafe fn`; the body only delegates.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our caller, who guarantees the
        // block was allocated by this allocator with this layout — and
        // `alloc`/`realloc` above always return `System` blocks.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: trait-mandated `unsafe fn`; the body only counts and delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: arguments are forwarded unchanged; the caller guarantees
        // `ptr` is live with `layout` and `new_size` is non-zero.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn potentials_allocate_per_chunk_not_per_interaction() {
    const N: usize = 3000;
    const CHUNK: usize = 64;
    let ps = uniform_cube(N, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 19);
    let tc = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.7).with_eval_chunk(CHUNK)).unwrap();

    // warm-up so lazily initialised globals (normalisation tables, thread
    // state) don't count against the measured sweep
    let warm = tc.potentials();
    assert!(warm.stats.pc_interactions > 0 && warm.stats.direct_pairs > 0);

    let mut stats = None;
    let allocs = allocations_during(|| {
        stats = Some(tc.potentials());
    });
    let stats = stats.unwrap().stats;
    let chunks = N.div_ceil(CHUNK) as u64;
    let interactions = stats.pc_interactions + stats.direct_pairs;

    // Per chunk: one Scratch (stack + workspace buffers), one EvalStats
    // with its by_degree growth, plus the sweep's O(1) output/collect
    // vectors and per-thread state. 32 allocations per chunk is a roomy
    // ceiling for all of that; per-interaction costs would blow past it
    // by orders of magnitude (interactions/chunks is ~10³ here).
    let budget = 32 * chunks + 256;
    assert!(
        allocs <= budget,
        "potentials() made {allocs} allocations for {chunks} chunks \
         (budget {budget}) — something allocates per interaction again \
         ({interactions} interactions this sweep)"
    );
    assert!(
        interactions > 100 * chunks,
        "workload too small to distinguish per-chunk from per-interaction \
         allocation: {interactions} interactions vs {chunks} chunks"
    );
    // and the sweep must be far below one allocation per interaction
    assert!(
        allocs * 10 < interactions,
        "{allocs} allocations vs {interactions} interactions"
    );
}

#[test]
fn compiled_sweep_allocates_per_chunk_not_per_task() {
    const N: usize = 3000;
    const CHUNK: usize = 64;
    let ps = uniform_cube(N, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 19);
    let params = TreecodeParams::adaptive(3, 0.7)
        .with_eval_chunk(CHUNK)
        .with_eval_mode(EvalMode::Compiled);
    let tc = Treecode::new(&ps, params).unwrap();

    let warm = tc.potentials();
    assert!(warm.stats.pc_interactions > 0 && warm.stats.direct_pairs > 0);

    let mut stats = None;
    let allocs = allocations_during(|| {
        stats = Some(tc.potentials());
    });
    let stats = stats.unwrap().stats;
    let chunks = N.div_ceil(CHUNK) as u64;
    let interactions = stats.pc_interactions + stats.direct_pairs;

    // Per chunk: one CompiledScratch (two stacks, task/span/sort buffers,
    // the BatchWorkspace lane arrays) plus one EvalStats — each a handful
    // of allocations up front, with task-list growth doubling a few times
    // on top. The lists themselves must be *reused growth*, never
    // per-task boxes: a per-task cost would exceed this budget a
    // hundredfold (tasks/chunks is ~10² here and each task would bring
    // at least one allocation).
    let budget = 48 * chunks + 256;
    assert!(
        allocs <= budget,
        "compiled potentials() made {allocs} allocations for {chunks} chunks \
         (budget {budget}) — something allocates per task again \
         ({interactions} interactions this sweep)"
    );
    assert!(
        interactions > 100 * chunks,
        "workload too small to distinguish per-chunk from per-task \
         allocation: {interactions} interactions vs {chunks} chunks"
    );
    assert!(
        allocs * 10 < interactions,
        "{allocs} allocations vs {interactions} interactions"
    );
}
