//! Property tests pinning the compiled (interaction-list + SoA batch
//! kernel) evaluation mode to the scalar reference.
//!
//! The compiled mode is a *reordering* of the identical interaction set,
//! not an approximation: for every degree mode, target kind, and sweep,
//! the two modes must agree to 1e-12 relative per target and report
//! **exactly** equal [`EvalStats`] — the list compiler emits the same
//! interactions the scalar traversal evaluates, interaction for
//! interaction.

use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_multipole::bounds::f32_near_roundoff_rel;
use mbt_multipole::simd::{self, SimdLevel};
use mbt_treecode::{EvalMode, Precision, Treecode, TreecodeParams};
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (
            -5.0f64..5.0,
            -5.0f64..5.0,
            -5.0f64..5.0,
            prop::sample::select(vec![-1.0f64, 1.0]),
        )
            .prop_map(|(x, y, z, q)| Particle::new(Vec3::new(x, y, z), q)),
        2..max_n,
    )
}

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-6.0f64..6.0, -6.0f64..6.0, -6.0f64..6.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max_n,
    )
}

/// The three degree-selection modes the treecode supports, at moderate
/// accuracy so adaptive/tolerance runs mix several degrees per sweep.
fn modes(alpha: f64) -> [TreecodeParams; 3] {
    [
        TreecodeParams::fixed(5, alpha),
        TreecodeParams::adaptive(3, alpha),
        TreecodeParams::tolerance(1e-6, alpha),
    ]
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Source-particle potential sweeps: values to 1e-12, counters exact,
    /// in every degree mode.
    #[test]
    fn potentials_match_scalar(ps in arb_particles(150), alpha in 0.3f64..0.9) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.potentials();
            let rc = compiled.potentials();
            prop_assert_eq!(&rs.stats, &rc.stats, "stats diverged: {:?}", params.degree);
            for (i, (a, b)) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*a, *b), "target {i}: scalar {a} vs compiled {b}");
            }
        }
    }

    /// Source-particle field sweeps: potential and gradient to 1e-12,
    /// counters exact.
    #[test]
    fn fields_match_scalar(ps in arb_particles(120), alpha in 0.3f64..0.9) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.fields();
            let rc = compiled.fields();
            prop_assert_eq!(&rs.stats, &rc.stats);
            for (i, ((pa, ga), (pb, gb))) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*pa, *pb), "target {i}: potential {pa} vs {pb}");
                prop_assert!(
                    ga.distance(*gb) <= 1e-12 * ga.norm().max(1.0),
                    "target {i}: gradient {ga:?} vs {gb:?}"
                );
            }
        }
    }

    /// External-point sweeps (no self-exclusion), both potentials and
    /// fields, plus **per-target** counter equality: each point evaluated
    /// as its own single-point sweep must report the same stats in both
    /// modes, so the aggregate equality cannot hide compensating
    /// miscounts between targets.
    #[test]
    fn external_points_match_scalar(
        ps in arb_particles(100),
        pts in arb_points(40),
        alpha in 0.3f64..0.9,
    ) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.potentials_at(&pts);
            let rc = compiled.potentials_at(&pts);
            prop_assert_eq!(&rs.stats, &rc.stats);
            for (i, (a, b)) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*a, *b), "point {i}: scalar {a} vs compiled {b}");
            }
            let fs = scalar.fields_at(&pts);
            let fc = compiled.fields_at(&pts);
            prop_assert_eq!(&fs.stats, &fc.stats);
            for (i, ((pa, ga), (pb, gb))) in fs.values.iter().zip(&fc.values).enumerate() {
                prop_assert!(close(*pa, *pb), "point {i}: potential {pa} vs {pb}");
                prop_assert!(
                    ga.distance(*gb) <= 1e-12 * ga.norm().max(1.0),
                    "point {i}: gradient {ga:?} vs {gb:?}"
                );
            }
            for (i, &pt) in pts.iter().enumerate() {
                let one_s = scalar.potentials_at(std::slice::from_ref(&pt));
                let one_c = compiled.potentials_at(std::slice::from_ref(&pt));
                prop_assert_eq!(
                    &one_s.stats, &one_c.stats,
                    "per-target stats diverged at point {}", i
                );
            }
        }
    }

    /// Chunk width is an execution detail in compiled mode too: values
    /// are bit-identical across widths (each chunk's conservative
    /// classification resolves to the same per-target interaction
    /// sequence) and counters stay exactly equal to the scalar sweep's.
    #[test]
    fn compiled_chunk_width_is_invariant(
        ps in arb_particles(120),
        chunk in 1usize..48,
    ) {
        let base = TreecodeParams::adaptive(3, 0.6).with_eval_mode(EvalMode::Compiled);
        let scalar_stats = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6))
            .unwrap()
            .potentials()
            .stats;
        let wide = Treecode::new(&ps, base).unwrap().potentials();
        let narrow = Treecode::new(&ps, base.with_eval_chunk(chunk)).unwrap().potentials();
        prop_assert_eq!(&wide.stats, &scalar_stats);
        prop_assert_eq!(&wide.stats, &narrow.stats);
        for (i, (a, b)) in wide.values.iter().zip(&narrow.values).enumerate() {
            prop_assert_eq!(a, b, "target {} changed with chunk width {}", i, chunk);
        }
    }
}

/// Tolerance the f32 near-field tier must stay inside, scaled to the
/// sweep's largest potential: half the 16x margin that
/// [`mbt_treecode::f32_near_admissible`] reserves over the accumulation
/// bound, leaving the other half to the f32 rounding of the mirrored
/// positions and charges.
fn f32_budget(n: usize, leaf_capacity: usize, phi_inf: f64) -> f64 {
    8.0 * f32_near_roundoff_rel(n, leaf_capacity) * phi_inf.max(1.0)
}

/// Runs the f32-tier pins for one particle set: counters exactly equal
/// to the f64 compiled sweep, potentials and field gradients inside the
/// Theorem-style roundoff budget.
fn assert_f32_tier_within_budget(ps: &[Particle], label: &str) {
    let base = TreecodeParams::fixed(6, 0.7).with_eval_mode(EvalMode::Compiled);
    let tc64 = Treecode::new(ps, base).unwrap();
    let tc32 = Treecode::new(ps, base.with_near_precision(Precision::F32Near)).unwrap();

    let r64 = tc64.potentials();
    let r32 = tc32.potentials();
    assert_eq!(r64.stats, r32.stats, "{label}: f32 tier changed counters");
    let phi_inf = r64.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let tol = f32_budget(ps.len(), base.leaf_capacity, phi_inf);
    for (i, (a, b)) in r64.values.iter().zip(&r32.values).enumerate() {
        assert!(
            (a - b).abs() <= tol,
            "{label} target {i}: f32 {b} vs f64 {a} exceeds budget {tol:e}"
        );
    }

    let f64s = tc64.fields();
    let f32s = tc32.fields();
    assert_eq!(f64s.stats, f32s.stats, "{label}: f32 field counters");
    let g_inf = f64s
        .values
        .iter()
        .fold(0.0_f64, |m, (_, g)| m.max(g.norm()));
    let gtol = f32_budget(ps.len(), base.leaf_capacity, g_inf);
    for (i, ((pa, ga), (pb, gb))) in f64s.values.iter().zip(&f32s.values).enumerate() {
        assert!(
            (pa - pb).abs() <= tol,
            "{label} target {i}: f32 field potential {pb} vs {pa}"
        );
        assert!(
            ga.distance(*gb) <= gtol,
            "{label} target {i}: f32 gradient {gb:?} vs {ga:?} exceeds {gtol:e}"
        );
    }
}

/// Uniform cube: the distribution the admission budget is calibrated
/// against (near-field neighborhoods capped at 27 leaves).
#[test]
fn f32_near_tier_within_budget_uniform() {
    let ps = uniform_cube(4_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7);
    assert_f32_tier_within_budget(&ps, "uniform");
}

/// Clustered (overlapped Gaussians): dense leaves push near-field spans
/// to their worst case, so this is the pin that would catch an
/// accumulation-order regression in the f32 kernels.
#[test]
fn f32_near_tier_within_budget_clustered() {
    let ps = overlapped_gaussians(
        4_000,
        4,
        2.0,
        0.35,
        ChargeModel::RandomSign { magnitude: 1.0 },
        11,
    );
    assert_f32_tier_within_budget(&ps, "clustered");
}

/// The dispatched SIMD level is pure codegen: forcing the scalar
/// fallback and the widest probed level must produce bit-identical f64
/// sweeps (M2P lanes are arithmetically independent; the P2P spans run a
/// fixed logical width at every level). Safe under parallel test
/// execution for the same reason — a concurrent sweep that observes
/// either level computes identical bits.
#[test]
fn simd_dispatch_level_is_bit_invariant() {
    let ps = uniform_cube(3_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 19);
    let detected = simd::detect();
    for params in [
        TreecodeParams::fixed(5, 0.7).with_eval_mode(EvalMode::Compiled),
        TreecodeParams::adaptive(3, 0.6).with_eval_mode(EvalMode::Compiled),
    ] {
        let tc = Treecode::new(&ps, params).unwrap();
        simd::set_level(SimdLevel::Scalar);
        let narrow = tc.potentials();
        let narrow_fields = tc.fields();
        simd::set_level(detected);
        let wide = tc.potentials();
        let wide_fields = tc.fields();
        assert_eq!(narrow.stats, wide.stats);
        for (i, (a, b)) in narrow.values.iter().zip(&wide.values).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "target {i}: dispatch level changed the potential"
            );
        }
        for (i, ((pa, ga), (pb, gb))) in narrow_fields
            .values
            .iter()
            .zip(&wide_fields.values)
            .enumerate()
        {
            assert_eq!(pa.to_bits(), pb.to_bits(), "target {i}: field potential");
            for (a, b) in [(ga.x, gb.x), (ga.y, gb.y), (ga.z, gb.z)] {
                assert_eq!(a.to_bits(), b.to_bits(), "target {i}: gradient component");
            }
        }
    }
}
