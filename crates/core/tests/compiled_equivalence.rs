//! Property tests pinning the compiled (interaction-list + SoA batch
//! kernel) evaluation mode to the scalar reference.
//!
//! The compiled mode is a *reordering* of the identical interaction set,
//! not an approximation: for every degree mode, target kind, and sweep,
//! the two modes must agree to 1e-12 relative per target and report
//! **exactly** equal [`EvalStats`] — the list compiler emits the same
//! interactions the scalar traversal evaluates, interaction for
//! interaction.

use mbt_geometry::{Particle, Vec3};
use mbt_treecode::{EvalMode, Treecode, TreecodeParams};
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (
            -5.0f64..5.0,
            -5.0f64..5.0,
            -5.0f64..5.0,
            prop::sample::select(vec![-1.0f64, 1.0]),
        )
            .prop_map(|(x, y, z, q)| Particle::new(Vec3::new(x, y, z), q)),
        2..max_n,
    )
}

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-6.0f64..6.0, -6.0f64..6.0, -6.0f64..6.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max_n,
    )
}

/// The three degree-selection modes the treecode supports, at moderate
/// accuracy so adaptive/tolerance runs mix several degrees per sweep.
fn modes(alpha: f64) -> [TreecodeParams; 3] {
    [
        TreecodeParams::fixed(5, alpha),
        TreecodeParams::adaptive(3, alpha),
        TreecodeParams::tolerance(1e-6, alpha),
    ]
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Source-particle potential sweeps: values to 1e-12, counters exact,
    /// in every degree mode.
    #[test]
    fn potentials_match_scalar(ps in arb_particles(150), alpha in 0.3f64..0.9) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.potentials();
            let rc = compiled.potentials();
            prop_assert_eq!(&rs.stats, &rc.stats, "stats diverged: {:?}", params.degree);
            for (i, (a, b)) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*a, *b), "target {i}: scalar {a} vs compiled {b}");
            }
        }
    }

    /// Source-particle field sweeps: potential and gradient to 1e-12,
    /// counters exact.
    #[test]
    fn fields_match_scalar(ps in arb_particles(120), alpha in 0.3f64..0.9) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.fields();
            let rc = compiled.fields();
            prop_assert_eq!(&rs.stats, &rc.stats);
            for (i, ((pa, ga), (pb, gb))) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*pa, *pb), "target {i}: potential {pa} vs {pb}");
                prop_assert!(
                    ga.distance(*gb) <= 1e-12 * ga.norm().max(1.0),
                    "target {i}: gradient {ga:?} vs {gb:?}"
                );
            }
        }
    }

    /// External-point sweeps (no self-exclusion), both potentials and
    /// fields, plus **per-target** counter equality: each point evaluated
    /// as its own single-point sweep must report the same stats in both
    /// modes, so the aggregate equality cannot hide compensating
    /// miscounts between targets.
    #[test]
    fn external_points_match_scalar(
        ps in arb_particles(100),
        pts in arb_points(40),
        alpha in 0.3f64..0.9,
    ) {
        for params in modes(alpha) {
            let scalar = Treecode::new(&ps, params).unwrap();
            let compiled =
                Treecode::new(&ps, params.with_eval_mode(EvalMode::Compiled)).unwrap();
            let rs = scalar.potentials_at(&pts);
            let rc = compiled.potentials_at(&pts);
            prop_assert_eq!(&rs.stats, &rc.stats);
            for (i, (a, b)) in rs.values.iter().zip(&rc.values).enumerate() {
                prop_assert!(close(*a, *b), "point {i}: scalar {a} vs compiled {b}");
            }
            let fs = scalar.fields_at(&pts);
            let fc = compiled.fields_at(&pts);
            prop_assert_eq!(&fs.stats, &fc.stats);
            for (i, ((pa, ga), (pb, gb))) in fs.values.iter().zip(&fc.values).enumerate() {
                prop_assert!(close(*pa, *pb), "point {i}: potential {pa} vs {pb}");
                prop_assert!(
                    ga.distance(*gb) <= 1e-12 * ga.norm().max(1.0),
                    "point {i}: gradient {ga:?} vs {gb:?}"
                );
            }
            for (i, &pt) in pts.iter().enumerate() {
                let one_s = scalar.potentials_at(std::slice::from_ref(&pt));
                let one_c = compiled.potentials_at(std::slice::from_ref(&pt));
                prop_assert_eq!(
                    &one_s.stats, &one_c.stats,
                    "per-target stats diverged at point {}", i
                );
            }
        }
    }

    /// Chunk width is an execution detail in compiled mode too: values
    /// are bit-identical across widths (each chunk's conservative
    /// classification resolves to the same per-target interaction
    /// sequence) and counters stay exactly equal to the scalar sweep's.
    #[test]
    fn compiled_chunk_width_is_invariant(
        ps in arb_particles(120),
        chunk in 1usize..48,
    ) {
        let base = TreecodeParams::adaptive(3, 0.6).with_eval_mode(EvalMode::Compiled);
        let scalar_stats = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6))
            .unwrap()
            .potentials()
            .stats;
        let wide = Treecode::new(&ps, base).unwrap().potentials();
        let narrow = Treecode::new(&ps, base.with_eval_chunk(chunk)).unwrap().potentials();
        prop_assert_eq!(&wide.stats, &scalar_stats);
        prop_assert_eq!(&wide.stats, &narrow.stats);
        for (i, (a, b)) in wide.values.iter().zip(&narrow.values).enumerate() {
            prop_assert_eq!(a, b, "target {} changed with chunk width {}", i, chunk);
        }
    }
}
