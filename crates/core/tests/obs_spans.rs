//! Observability span hooks: inert while no recorder is installed, and
//! emitting `Sweep` (plus `Compile`, in compiled mode) spans once a ring
//! recorder is.
//!
//! Deliberately a single `#[test]` in its own integration binary: the
//! recorder hook is process-global, so the disabled half and the enabled
//! half must run in a controlled order inside one process that no other
//! test shares.

use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_obs::{Phase, RingRecorder};
use mbt_treecode::{EvalMode, Treecode, TreecodeParams};

#[test]
fn hooks_are_inert_until_a_recorder_is_installed() {
    let ps = uniform_cube(400, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7);
    let scalar = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
    let compiled = Treecode::new(
        &ps,
        TreecodeParams::fixed(3, 0.6).with_eval_mode(EvalMode::Compiled),
    )
    .unwrap();

    // Disabled: sweeps run, hooks cost one atomic load, nothing recorded.
    assert!(!mbt_obs::enabled());
    let base = scalar.potentials();
    let _ = compiled.potentials();

    // Install the ring recorder; from here on every sweep emits spans.
    let rec: &'static RingRecorder = Box::leak(Box::new(RingRecorder::new(64)));
    assert!(mbt_obs::install_global(rec));
    assert!(mbt_obs::enabled());
    assert!(
        !mbt_obs::install_global(rec),
        "second installation must be rejected"
    );
    assert_eq!(
        rec.recorded(),
        0,
        "spans were recorded while the hook was disabled"
    );

    let after = scalar.potentials();
    let spans = rec.spans();
    assert!(
        spans.iter().any(|s| s.phase == Phase::Sweep),
        "scalar sweep emitted no Sweep span: {spans:?}"
    );
    assert!(
        !spans.iter().any(|s| s.phase == Phase::Compile),
        "scalar sweep must not emit Compile spans"
    );
    // instrumentation must not perturb results
    assert_eq!(base.values, after.values);
    assert_eq!(base.stats, after.stats);

    let before_compiled = rec.recorded();
    let _ = compiled.potentials();
    assert!(rec.recorded() > before_compiled);
    let spans = rec.spans();
    assert!(
        spans.iter().any(|s| s.phase == Phase::Compile),
        "compiled sweep emitted no Compile span: {spans:?}"
    );

    // clock sanity: spans sit on the process-epoch timeline
    for s in &spans {
        assert!(s.dur_ns < 60_000_000_000, "absurd duration: {s:?}");
        assert!(s.start_ns < 600_000_000_000, "absurd start: {s:?}");
    }
    assert_eq!(rec.dropped(), 0);
}
