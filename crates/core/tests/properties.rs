//! Property-based tests of the treecode's end-to-end invariants.

use mbt_geometry::{Particle, Vec3};
use mbt_treecode::{
    direct::direct_potentials, relative_error, RefWeight, Treecode, TreecodeParams,
};
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (
            -5.0f64..5.0,
            -5.0f64..5.0,
            -5.0f64..5.0,
            prop::sample::select(vec![-1.0f64, 1.0]),
        )
            .prop_map(|(x, y, z, q)| Particle::new(Vec3::new(x, y, z), q)),
        2..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The treecode converges toward the direct sum as p grows, for
    /// arbitrary inputs and MAC parameters.
    #[test]
    fn converges_with_degree(
        ps in arb_particles(120),
        alpha in 0.3f64..0.9,
    ) {
        let exact = direct_potentials(&ps);
        let lo = Treecode::new(&ps, TreecodeParams::fixed(2, alpha)).unwrap();
        let hi = Treecode::new(&ps, TreecodeParams::fixed(12, alpha)).unwrap();
        let e_lo = relative_error(&lo.potentials().values, &exact);
        let e_hi = relative_error(&hi.potentials().values, &exact);
        prop_assert!(e_hi <= e_lo * 1.05 + 1e-12, "p=12 ({e_hi}) worse than p=2 ({e_lo})");
        prop_assert!(e_hi < 1e-3, "p=12 error too large: {e_hi}");
    }

    /// Evaluation is linear in the charges when geometry is frozen
    /// (`with_charges`).
    #[test]
    fn frozen_geometry_linearity(ps in arb_particles(80), s in 0.5f64..3.0) {
        let tc = Treecode::new(&ps, TreecodeParams::fixed(5, 0.6)).unwrap();
        let base = tc.potentials().values;
        let scaled_charges: Vec<f64> = ps.iter().map(|p| p.charge * s).collect();
        let scaled = tc.with_charges(&scaled_charges).potentials().values;
        for (b, v) in base.iter().zip(&scaled) {
            prop_assert!((v - s * b).abs() <= 1e-9 * (1.0 + v.abs()));
        }
    }

    /// Fixed- and adaptive-degree runs evaluate the same direct pairs (the
    /// MAC is degree-independent) — the adaptive method changes only the
    /// expansion degrees.
    #[test]
    fn mac_is_degree_independent(ps in arb_particles(150)) {
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
        let adaptive = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6)).unwrap();
        let rf = fixed.potentials();
        let ra = adaptive.potentials();
        prop_assert_eq!(rf.stats.direct_pairs, ra.stats.direct_pairs);
        prop_assert_eq!(rf.stats.pc_interactions, ra.stats.pc_interactions);
        prop_assert!(ra.stats.terms >= rf.stats.terms);
    }

    /// Stats bookkeeping: `terms = Σ_p by_degree[p]·(p+1)²`.
    #[test]
    fn stats_self_consistent(ps in arb_particles(150), alpha in 0.4f64..0.9) {
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(2, alpha)).unwrap();
        let r = tc.potentials();
        let recomputed: u64 = r
            .stats
            .by_degree
            .iter()
            .enumerate()
            .map(|(p, &c)| c * ((p as u64 + 1) * (p as u64 + 1)))
            .sum();
        prop_assert_eq!(recomputed, r.stats.terms);
        prop_assert_eq!(r.stats.targets as usize, ps.len());
    }

    /// Explicit huge reference weight reduces the adaptive method to the
    /// fixed method exactly.
    #[test]
    fn huge_threshold_degenerates_to_fixed(ps in arb_particles(100)) {
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6)).unwrap();
        let degenerate = Treecode::new(
            &ps,
            TreecodeParams::adaptive(4, 0.6).with_ref_weight(RefWeight::Explicit(1e30)),
        )
        .unwrap();
        let a = fixed.potentials();
        let b = degenerate.potentials();
        prop_assert_eq!(a.stats.terms, b.stats.terms);
        for (x, y) in a.values.iter().zip(&b.values) {
            prop_assert_eq!(x, y);
        }
    }

    /// Self-exclusion: a particle never contributes to its own potential —
    /// doubling a particle's charge changes every potential except via
    /// that particle's own row only through other entries.
    #[test]
    fn self_exclusion(ps in arb_particles(60)) {
        let tc = Treecode::new(&ps, TreecodeParams::fixed(10, 0.3)).unwrap();
        let base = tc.potentials().values;
        // perturb particle 0's charge with frozen geometry
        let mut charges: Vec<f64> = ps.iter().map(|p| p.charge).collect();
        charges[0] += 100.0;
        let bumped = tc.with_charges(&charges).potentials().values;
        // particle 0's own potential must not change (it excludes itself)
        prop_assert!(
            (bumped[0] - base[0]).abs() <= 1e-7 * (1.0 + base[0].abs()),
            "self-interaction leaked: {} -> {}", base[0], bumped[0]
        );
    }
}
