//! Tests of the tolerance-driven degree mode: series stored at the
//! worst-case degree per cluster, truncated per interaction to the actual
//! distance's requirement.

use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};
use mbt_geometry::Vec3;
use mbt_treecode::{direct::direct_potentials, Treecode, TreecodeParams};

fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn per_target_error_respects_budget() {
    // absolute per-interaction budget tol; a target sees ≤ K·log n
    // interactions, so the per-target error is bounded by that multiple —
    // in practice errors partially cancel and land well under it.
    let ps = uniform_cube(3000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 3);
    let exact = direct_potentials(&ps);
    for tol in [1e-2, 1e-4, 1e-6] {
        let tc = Treecode::new(&ps, TreecodeParams::tolerance(tol, 0.7)).unwrap();
        let r = tc.potentials();
        let err = max_abs_err(&r.values, &exact);
        let budget = tol * r.stats.interactions_per_target().max(1.0) * 4.0;
        assert!(
            err <= budget,
            "tol {tol}: max per-target error {err} exceeds budget {budget}"
        );
    }
}

#[test]
fn tighter_tolerance_costs_more_and_errs_less() {
    let ps = gaussian(
        4000,
        Vec3::ZERO,
        0.7,
        ChargeModel::RandomSign { magnitude: 1.0 },
        7,
    );
    let exact = direct_potentials(&ps);
    let mut last_terms = 0u64;
    let mut last_err = f64::INFINITY;
    for tol in [1e-1, 1e-3, 1e-5] {
        let tc = Treecode::new(&ps, TreecodeParams::tolerance(tol, 0.6)).unwrap();
        let r = tc.potentials();
        let err = max_abs_err(&r.values, &exact);
        assert!(
            r.stats.terms >= last_terms,
            "terms must grow as tol tightens"
        );
        assert!(
            err <= last_err * 1.5,
            "error must (weakly) fall as tol tightens"
        );
        last_terms = r.stats.terms;
        last_err = err;
    }
}

#[test]
fn per_interaction_truncation_saves_terms_over_stored_degrees() {
    // compare a tolerance run against a run forced to evaluate every
    // interaction at the stored (worst-case) degree by mimicking the
    // stored degrees with huge tolerance floor... instead, compare against
    // Fixed at the maximum stored degree: the tolerance run must use
    // strictly fewer terms while being comparably accurate.
    let ps = uniform_cube(4000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 13);
    let tol_tc = Treecode::new(&ps, TreecodeParams::tolerance(1e-5, 0.7)).unwrap();
    let tol_run = tol_tc.potentials();
    let p_max_stored = *tol_tc.degrees().iter().max().unwrap();
    let fixed_tc = Treecode::new(&ps, TreecodeParams::fixed(p_max_stored, 0.7)).unwrap();
    let fixed_run = fixed_tc.potentials();
    assert!(
        tol_run.stats.terms < fixed_run.stats.terms,
        "truncation must save terms: {} vs {}",
        tol_run.stats.terms,
        fixed_run.stats.terms
    );
    let exact = direct_potentials(&ps);
    let e_tol = max_abs_err(&tol_run.values, &exact);
    // comparably accurate: within two orders of the all-max-degree run
    let e_fixed = max_abs_err(&fixed_run.values, &exact);
    assert!(
        e_tol <= (e_fixed * 100.0).max(1e-5 * 100.0),
        "{e_tol} vs {e_fixed}"
    );
}

#[test]
fn degrees_vary_across_interactions() {
    let ps = uniform_cube(6000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 21);
    let tc = Treecode::new(&ps, TreecodeParams::tolerance(1e-4, 0.7)).unwrap();
    let r = tc.potentials();
    let used: Vec<usize> = r
        .stats
        .by_degree
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(p, _)| p)
        .collect();
    assert!(
        used.len() >= 3,
        "tolerance mode should spread interactions over degrees, got {used:?}"
    );
}

#[test]
fn invalid_tolerance_rejected() {
    let ps = uniform_cube(10, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 1);
    assert!(Treecode::new(&ps, TreecodeParams::tolerance(0.0, 0.5)).is_err());
    assert!(Treecode::new(&ps, TreecodeParams::tolerance(f64::NAN, 0.5)).is_err());
    assert!(Treecode::new(&ps, TreecodeParams::tolerance(-1.0, 0.5)).is_err());
}
