//! Admission control: a bounded in-flight gate with deadline-based
//! shedding.
//!
//! The engine admits at most `max_in_flight` requests into planning and
//! evaluation at once. Beyond that, requests wait in a bounded queue:
//! a full queue sheds new arrivals immediately ([`EngineError::Overloaded`]
//! — queueing behind work they cannot overtake would only add latency to
//! a system already past saturation), and a queued request whose deadline
//! expires before a slot frees is shed as [`EngineError::DeadlineExceeded`]
//! without ever costing an evaluation.

use mbt_check::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::EngineError;
use crate::stats::StatsCollector;

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    queued: usize,
}

/// The bounded gate. One per engine.
#[derive(Debug)]
pub struct AdmissionGate {
    max_in_flight: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// An admitted request's slot; releasing (dropping) it wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl AdmissionGate {
    /// A gate admitting `max_in_flight` concurrent requests and queueing
    /// at most `max_queued` more.
    #[must_use]
    pub fn new(max_in_flight: usize, max_queued: usize) -> AdmissionGate {
        AdmissionGate {
            max_in_flight: max_in_flight.max(1),
            max_queued,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// `(in_flight, queued)` right now.
    pub fn depth(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (st.in_flight, st.queued)
    }

    /// Admits the request, blocking in the queue while the gate is full.
    ///
    /// Sheds with [`EngineError::Overloaded`] when the queue itself is
    /// full, and with [`EngineError::DeadlineExceeded`] when `deadline`
    /// passes before a slot frees. A request with no deadline waits
    /// indefinitely (admission order among waiters follows the platform's
    /// condvar wakeup order, not strict FIFO).
    pub fn admit(
        &self,
        deadline: Option<Instant>,
        stats: &StatsCollector,
    ) -> Result<Permit<'_>, EngineError> {
        let arrived = Instant::now();
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            stats.record_admitted();
            stats.record_admission_wait(Duration::ZERO);
            return Ok(Permit { gate: self });
        }
        if st.queued >= self.max_queued {
            stats.record_shed_overload();
            return Err(EngineError::Overloaded {
                in_flight: st.in_flight,
                queued: st.queued,
            });
        }
        st.queued += 1;
        stats.observe_queue_depth(st.queued);
        loop {
            if st.in_flight < self.max_in_flight {
                st.queued -= 1;
                st.in_flight += 1;
                stats.record_admitted();
                stats.record_admission_wait(arrived.elapsed());
                return Ok(Permit { gate: self });
            }
            match deadline {
                None => {
                    st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.queued -= 1;
                        stats.record_shed_deadline();
                        return Err(EngineError::DeadlineExceeded);
                    }
                    let (guard, _timed_out) = self
                        .freed
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            }
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        // wake every waiter: whichever one wins the lock takes the slot,
        // and any whose deadline has meanwhile expired must get a chance
        // to notice and shed itself
        self.freed.notify_all();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity() {
        let gate = AdmissionGate::new(2, 0);
        let stats = StatsCollector::default();
        let p1 = gate.admit(None, &stats).unwrap();
        let _p2 = gate.admit(None, &stats).unwrap();
        assert_eq!(gate.depth(), (2, 0));
        // gate full, queue size 0 → immediate overload
        assert!(matches!(
            gate.admit(None, &stats),
            Err(EngineError::Overloaded {
                in_flight: 2,
                queued: 0
            })
        ));
        drop(p1);
        assert_eq!(gate.depth(), (1, 0));
        let _p3 = gate.admit(None, &stats).unwrap();
    }

    #[test]
    fn queued_request_sheds_on_deadline() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let _held = gate.admit(None, &stats).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let t0 = Instant::now();
        let res = gate.admit(Some(deadline), &stats);
        assert_eq!(res.unwrap_err(), EngineError::DeadlineExceeded);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(gate.depth(), (1, 0)); // the shed request left the queue
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let held = gate.admit(None, &stats).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                gate.admit(Some(Instant::now() + Duration::from_secs(5)), &stats)
                    .map(|_p| ())
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert!(waiter.join().unwrap().is_ok());
        });
        assert_eq!(gate.depth(), (0, 0));
        // both admissions fed the wait histogram: the holder at ~0, the
        // waiter at ≥ the 20 ms it spent queued
        let s = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(s.admission_wait.count, 2);
        assert!(s.admission_wait.max_ms >= 15.0, "{:?}", s.admission_wait);
    }

    #[test]
    fn expired_deadline_sheds_immediately_when_queued() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let _held = gate.admit(None, &stats).unwrap();
        let past = Instant::now()
            .checked_sub(Duration::from_millis(1))
            .unwrap();
        assert_eq!(
            gate.admit(Some(past), &stats).unwrap_err(),
            EngineError::DeadlineExceeded
        );
    }
}
