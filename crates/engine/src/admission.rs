//! Admission control: the engine-facing wrapper around the weighted-fair
//! gate.
//!
//! The engine admits at most `max_in_flight` requests into planning and
//! evaluation at once. Beyond that, requests wait in per-tenant fair
//! queues (see [`crate::FairGate`] for the virtual-time WFQ math and the
//! no-barging hand-off): a full queue sheds new arrivals immediately
//! ([`EngineError::Overloaded`] — queueing behind work they cannot
//! overtake would only add latency to a system already past saturation),
//! and a queued request whose deadline expires before its slot is handed
//! over is shed as [`EngineError::DeadlineExceeded`] without ever costing
//! an evaluation.
//!
//! This wrapper owns everything the policy-free core does not: mapping
//! [`Admission`] outcomes to stats counters and typed errors, and the
//! RAII [`Permit`] that returns the slot.

use std::time::Instant;

use crate::error::EngineError;
use crate::stats::StatsCollector;
use crate::tenant::TenantId;
use crate::wfq::{Admission, FairGate};

/// The bounded weighted-fair gate. One per engine.
#[derive(Debug)]
pub struct AdmissionGate {
    gate: FairGate,
}

/// An admitted request's slot; releasing (dropping) it hands the slot to
/// the scheduled queue head.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl AdmissionGate {
    /// A gate admitting `max_in_flight` concurrent requests and queueing
    /// at most `max_queued` more (across all tenants).
    #[must_use]
    pub fn new(max_in_flight: usize, max_queued: usize) -> AdmissionGate {
        AdmissionGate {
            gate: FairGate::new(max_in_flight, max_queued),
        }
    }

    /// `(in_flight, queued)` right now.
    pub fn depth(&self) -> (usize, usize) {
        self.gate.depth()
    }

    /// Admits the request at `tenant`'s fair-share `weight`, blocking in
    /// its queue while the gate is full.
    ///
    /// Sheds with [`EngineError::Overloaded`] when the queue itself is
    /// full, and with [`EngineError::DeadlineExceeded`] when `deadline`
    /// passes before a slot is handed over. A request with no deadline
    /// waits indefinitely; admission order among waiters is the WFQ
    /// schedule, never condvar wake-up luck.
    pub fn admit(
        &self,
        tenant: TenantId,
        weight: u32,
        deadline: Option<Instant>,
        stats: &StatsCollector,
    ) -> Result<Permit<'_>, EngineError> {
        let outcome = self.gate.admit_observed(tenant, weight, deadline, |depth| {
            stats.observe_queue_depth(depth);
        });
        match outcome {
            Admission::Admitted { waited } => {
                stats.record_admitted();
                stats.record_admission_wait(waited);
                Ok(Permit { gate: self })
            }
            Admission::Overloaded { in_flight, queued } => {
                stats.record_shed_overload();
                Err(EngineError::Overloaded { in_flight, queued })
            }
            Admission::DeadlineExpired => {
                stats.record_shed_deadline();
                Err(EngineError::DeadlineExceeded)
            }
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity() {
        let gate = AdmissionGate::new(2, 0);
        let stats = StatsCollector::default();
        let p1 = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
        let _p2 = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
        assert_eq!(gate.depth(), (2, 0));
        // gate full, queue size 0 → immediate overload
        assert!(matches!(
            gate.admit(TenantId::DEFAULT, 1, None, &stats),
            Err(EngineError::Overloaded {
                in_flight: 2,
                queued: 0
            })
        ));
        drop(p1);
        assert_eq!(gate.depth(), (1, 0));
        let _p3 = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
    }

    #[test]
    fn queued_request_sheds_on_deadline() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let _held = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let t0 = Instant::now();
        let res = gate.admit(TenantId::DEFAULT, 1, Some(deadline), &stats);
        assert_eq!(res.unwrap_err(), EngineError::DeadlineExceeded);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(gate.depth(), (1, 0)); // the shed request left the queue
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let held = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                gate.admit(
                    TenantId(1),
                    1,
                    Some(Instant::now() + Duration::from_secs(5)),
                    &stats,
                )
                .map(|_p| ())
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert!(waiter.join().unwrap().is_ok());
        });
        assert_eq!(gate.depth(), (0, 0));
        // both admissions fed the wait histogram: the holder at ~0, the
        // waiter at ≥ the 20 ms it spent queued
        let s = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(s.admission_wait.count, 2);
        assert!(s.admission_wait.max_ms >= 15.0, "{:?}", s.admission_wait);
        assert_eq!(s.queue_peak, 1, "the waiter's enqueue fed the peak");
    }

    #[test]
    fn expired_deadline_sheds_immediately_when_queued() {
        let gate = AdmissionGate::new(1, 4);
        let stats = StatsCollector::default();
        let _held = gate.admit(TenantId::DEFAULT, 1, None, &stats).unwrap();
        let past = Instant::now()
            .checked_sub(Duration::from_millis(1))
            .unwrap();
        assert_eq!(
            gate.admit(TenantId::DEFAULT, 1, Some(past), &stats)
                .unwrap_err(),
            EngineError::DeadlineExceeded
        );
        let s = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(s.shed_deadline, 1);
    }
}
