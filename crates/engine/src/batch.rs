//! The hot batch-evaluation path.
//!
//! A drained batch of coalesced requests against one plan becomes a
//! **single** chunked sweep: all points are packed into one arena, the
//! treecode's `*_at_into` kernels evaluate them with PR 1's per-chunk
//! `Scratch`/workspace machinery, and the output arena is split back per
//! request. Allocation discipline (enforced by `cargo xtask lint`): one
//! point arena + one value arena per drained batch and one result buffer
//! per request handed to its caller — never an allocation per point or
//! per interaction.
//!
//! Because every target's traversal is independent, packing requests
//! together is **bit-exact**: each request's values are identical to what
//! a lone `potentials_at`/`fields_at` call on the same plan would return.

use std::time::Instant;

use mbt_fmm::CompiledFmm;
use mbt_geometry::Vec3;
use mbt_obs::Phase;
use mbt_treecode::{EvalStats, Treecode};

use crate::plan::{EvalConfig, Plan, PlanArtifact};

/// What a query computes at each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Potential `Φ(x)`.
    Potential,
    /// Potential and gradient `(Φ(x), ∇Φ(x))`.
    Field,
}

/// Values of one request, in its point order.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Per-point potentials (for [`QueryKind::Potential`]).
    Potentials(Vec<f64>),
    /// Per-point potential–gradient pairs (for [`QueryKind::Field`]).
    Fields(Vec<(f64, Vec3)>),
}

impl QueryOutput {
    /// Number of evaluated points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Potentials(v) => v.len(),
            QueryOutput::Fields(v) => v.len(),
        }
    }

    /// Whether the request had no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The potentials, when this is a potential-query output.
    #[must_use]
    pub fn potentials(&self) -> Option<&[f64]> {
        match self {
            QueryOutput::Potentials(v) => Some(v),
            QueryOutput::Fields(_) => None,
        }
    }

    /// The potential–gradient pairs, when this is a field-query output.
    #[must_use]
    pub fn fields(&self) -> Option<&[(f64, Vec3)]> {
        match self {
            QueryOutput::Fields(v) => Some(v),
            QueryOutput::Potentials(_) => None,
        }
    }
}

/// Evaluates one drained batch against one plan's treecode under the
/// treecode's **own** execution configuration. See
/// [`evaluate_batch_with`] for the engine path, where the configuration
/// travels with the request rather than the plan.
#[must_use]
pub fn evaluate_batch(
    treecode: &Treecode,
    kind: QueryKind,
    requests: &[&[Vec3]],
) -> (Vec<QueryOutput>, EvalStats) {
    evaluate_batch_with(treecode, kind, requests, EvalConfig::of(treecode.params()))
}

/// Evaluates one drained batch against one plan's treecode: `requests`
/// are the per-request point slices; returns per-request outputs in the
/// same order plus the merged sweep counters. The sweep runs under
/// `cfg`, not the parameters the treecode was built with — plan identity
/// excludes execution knobs ([`crate::plan::PlanKey`]), so one cached
/// plan serves requests at any chunk width or mode, bit-identically.
#[must_use]
pub fn evaluate_batch_with(
    treecode: &Treecode,
    kind: QueryKind,
    requests: &[&[Vec3]],
    cfg: EvalConfig,
) -> (Vec<QueryOutput>, EvalStats) {
    let total: usize = requests.iter().map(|r| r.len()).sum();
    // lint: allow(alloc, one packed point arena per drained batch)
    let mut points: Vec<Vec3> = Vec::with_capacity(total);
    for r in requests {
        points.extend_from_slice(r);
    }
    // lint: allow(alloc, O(batch) split of the output arena)
    let mut outputs: Vec<QueryOutput> = Vec::with_capacity(requests.len());
    let stats = match kind {
        QueryKind::Potential => {
            // lint: allow(alloc, one value arena per drained batch)
            let mut values = vec![0.0f64; total];
            let stats = treecode.potentials_at_into_with(
                &points,
                &mut values,
                cfg.chunk,
                cfg.mode,
                cfg.precision,
            );
            let mut offset = 0;
            for r in requests {
                let slice = &values[offset..offset + r.len()];
                // lint: allow(alloc, per-request result buffer handed to its caller)
                outputs.push(QueryOutput::Potentials(slice.to_vec()));
                offset += r.len();
            }
            stats
        }
        QueryKind::Field => {
            // lint: allow(alloc, one value arena per drained batch)
            let mut values = vec![(0.0f64, Vec3::ZERO); total];
            let stats = treecode.fields_at_into_with(
                &points,
                &mut values,
                cfg.chunk,
                cfg.mode,
                cfg.precision,
            );
            let mut offset = 0;
            for r in requests {
                let slice = &values[offset..offset + r.len()];
                // lint: allow(alloc, per-request result buffer handed to its caller)
                outputs.push(QueryOutput::Fields(slice.to_vec()));
                offset += r.len();
            }
            stats
        }
    };
    (outputs, stats)
}

/// Evaluates one drained batch against whichever artifact the plan
/// holds: treecode plans run [`evaluate_batch_with`] under `cfg`, FMM
/// plans run [`evaluate_fmm_batch`] (the FMM's execution shape is baked
/// into its compiled arenas, so `cfg` only applies to the treecode
/// tier).
#[must_use]
pub fn evaluate_plan_batch(
    plan: &Plan,
    kind: QueryKind,
    requests: &[&[Vec3]],
    cfg: EvalConfig,
) -> (Vec<QueryOutput>, EvalStats) {
    match &plan.artifact {
        PlanArtifact::Treecode(tc) => evaluate_batch_with(tc, kind, requests, cfg),
        PlanArtifact::Fmm(fmm) => evaluate_fmm_batch(fmm, kind, requests),
    }
}

/// Evaluates one drained batch against a compiled FMM: packs the
/// per-request point slices into one arena, runs a single L2P + near
/// field sweep, and splits the output arena back per request — the same
/// shape as [`evaluate_batch_with`], recorded as [`Phase::FmmSweep`].
#[must_use]
pub fn evaluate_fmm_batch(
    fmm: &CompiledFmm,
    kind: QueryKind,
    requests: &[&[Vec3]],
) -> (Vec<QueryOutput>, EvalStats) {
    let t0 = Instant::now();
    let total: usize = requests.iter().map(|r| r.len()).sum();
    // lint: allow(alloc, one packed point arena per drained batch)
    let mut points: Vec<Vec3> = Vec::with_capacity(total);
    for r in requests {
        points.extend_from_slice(r);
    }
    // lint: allow(alloc, O(batch) split of the output arena)
    let mut outputs: Vec<QueryOutput> = Vec::with_capacity(requests.len());
    let stats = match kind {
        QueryKind::Potential => {
            // lint: allow(alloc, one value arena per drained batch)
            let mut values = vec![0.0f64; total];
            let stats = fmm.potentials_at_into(&points, &mut values);
            let mut offset = 0;
            for r in requests {
                let slice = &values[offset..offset + r.len()];
                // lint: allow(alloc, per-request result buffer handed to its caller)
                outputs.push(QueryOutput::Potentials(slice.to_vec()));
                offset += r.len();
            }
            stats
        }
        QueryKind::Field => {
            // lint: allow(alloc, one value arena per drained batch)
            let mut values = vec![(0.0f64, Vec3::ZERO); total];
            let stats = fmm.fields_at_into(&points, &mut values);
            let mut offset = 0;
            for r in requests {
                let slice = &values[offset..offset + r.len()];
                // lint: allow(alloc, per-request result buffer handed to its caller)
                outputs.push(QueryOutput::Fields(slice.to_vec()));
                offset += r.len();
            }
            stats
        }
    };
    mbt_obs::record_since(Phase::FmmSweep, t0);
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_treecode::TreecodeParams;

    #[test]
    fn batched_eval_matches_individual_calls_bitwise() {
        let ps = uniform_cube(700, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 3);
        let tc = Treecode::new(&ps, TreecodeParams::adaptive(3, 0.6)).unwrap();
        let a: Vec<Vec3> = ps.iter().take(40).map(|p| p.position * 1.3).collect();
        let b: Vec<Vec3> = ps
            .iter()
            .skip(40)
            .take(25)
            .map(|p| p.position * 0.5)
            .collect();
        let c: Vec<Vec3> = vec![Vec3::new(2.0, -1.0, 0.5)];

        let (out, stats) = evaluate_batch(&tc, QueryKind::Potential, &[&a, &b, &c]);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.targets as usize, a.len() + b.len() + c.len());
        for (points, got) in [(&a, &out[0]), (&b, &out[1]), (&c, &out[2])] {
            let lone = tc.potentials_at(points);
            assert_eq!(got.potentials().unwrap(), lone.values.as_slice());
            assert_eq!(got.len(), points.len());
        }

        let (fout, fstats) = evaluate_batch(&tc, QueryKind::Field, &[&a, &b]);
        assert_eq!(fstats.targets as usize, a.len() + b.len());
        for (points, got) in [(&a, &fout[0]), (&b, &fout[1])] {
            let lone = tc.fields_at(points);
            assert_eq!(got.fields().unwrap(), lone.values.as_slice());
        }
    }

    #[test]
    fn eval_config_changes_execution_not_values() {
        use mbt_treecode::EvalMode;
        let ps = uniform_cube(400, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 11);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6)).unwrap();
        let pts: Vec<Vec3> = ps.iter().take(30).map(|p| p.position * 1.4).collect();
        let (base, base_stats) = evaluate_batch(&tc, QueryKind::Potential, &[&pts]);
        // scalar sweeps are bit-invariant across chunk widths
        for chunk in [1usize, 7, 256] {
            let cfg = EvalConfig {
                chunk,
                mode: EvalMode::Scalar,
                precision: mbt_treecode::Precision::F64,
            };
            let (out, stats) = evaluate_batch_with(&tc, QueryKind::Potential, &[&pts], cfg);
            assert_eq!(out, base, "chunk {chunk} changed values");
            assert_eq!(stats, base_stats, "chunk {chunk} changed stats");
        }
        // the compiled mode agrees to round-off with identical accounting
        let cfg = EvalConfig {
            chunk: 64,
            mode: EvalMode::Compiled,
            precision: mbt_treecode::Precision::F64,
        };
        let (out, stats) = evaluate_batch_with(&tc, QueryKind::Potential, &[&pts], cfg);
        assert_eq!(stats, base_stats);
        for (a, b) in out[0]
            .potentials()
            .unwrap()
            .iter()
            .zip(base[0].potentials().unwrap())
        {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn empty_requests_are_fine() {
        let ps = uniform_cube(100, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 5);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6)).unwrap();
        let empty: Vec<Vec3> = Vec::new();
        let (out, stats) = evaluate_batch(&tc, QueryKind::Potential, &[&empty]);
        assert!(out[0].is_empty());
        assert_eq!(stats.targets, 0);
        let (none, _) = evaluate_batch(&tc, QueryKind::Field, &[]);
        assert!(none.is_empty());
    }

    #[test]
    fn fmm_batch_splits_requests_and_agrees_with_the_treecode() {
        use mbt_fmm::FmmParams;
        let ps = uniform_cube(3000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 17);
        let fmm = CompiledFmm::new(&ps, FmmParams::fixed(8)).unwrap();
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.5)).unwrap();
        let a: Vec<Vec3> = ps.iter().take(50).map(|p| p.position).collect();
        let b: Vec<Vec3> = ps.iter().skip(50).take(30).map(|p| p.position).collect();
        let (out, stats) = evaluate_fmm_batch(&fmm, QueryKind::Potential, &[&a, &b]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 50);
        assert_eq!(out[1].len(), 30);
        assert_eq!(stats.targets, 80);
        let reference = tc.potentials_at(&a);
        for (got, want) in out[0].potentials().unwrap().iter().zip(&reference.values) {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "fmm {got} vs treecode {want}"
            );
        }
        let (fields, fstats) = evaluate_fmm_batch(&fmm, QueryKind::Field, &[&a]);
        assert_eq!(fstats.targets, 50);
        for (phi, g) in fields[0].fields().unwrap() {
            assert!(phi.is_finite() && g.is_finite());
        }
    }

    #[test]
    fn output_accessors() {
        let p = QueryOutput::Potentials(vec![1.0, 2.0]);
        assert!(p.fields().is_none());
        let f = QueryOutput::Fields(vec![(1.0, Vec3::ZERO)]);
        assert!(f.potentials().is_none());
        assert_eq!(f.len(), 1);
    }
}
