//! The plan cache: byte-budgeted cost-aware residency plus single-flight
//! construction.
//!
//! [`ByteLru`] is the pure residency policy — a map whose entries carry a
//! byte size, evicted against a fixed budget in order of a **cost-aware
//! score**: `rebuild_cost_ns × (1 + hits)`, ties broken by recency. An
//! entry inserted with zero cost scores zero, so a cache populated through
//! plain [`ByteLru::insert`] degenerates to *exactly* strict LRU (the
//! property tests pin this against a reference model); the engine inserts
//! plans with their measured build time ([`ByteLru::insert_with_cost`]),
//! so a cheap-to-rebuild plan is sacrificed before an expensive, hot one.
//! Victim selection is O(log n) via an ordered index — the old
//! full-scan `min_by_key` was quadratic under churn.
//!
//! The policy is deliberately lock-free and side-effect-free so property
//! tests can drive it directly against a model. [`PlanCache`] wraps it
//! with the concurrency the engine needs: one mutex around the residency
//! state, and a ticket table guaranteeing that N concurrent misses on one
//! key run **one** build while the other N−1 wait for its result.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::time::{Duration, Instant};

use mbt_check::sync::Arc;

use crate::error::EngineError;
use crate::flight::{Flight, SingleFlight};
use crate::plan::{Plan, PlanKey};
use crate::stats::StatsCollector;

/// One resident entry.
#[derive(Debug)]
struct LruEntry<V> {
    value: V,
    bytes: usize,
    last_used: u64,
    /// Measured cost of rebuilding this entry, in nanoseconds (zero for
    /// plain inserts — score 0 means pure LRU among them).
    cost_ns: u64,
    /// Lookups served since insertion.
    hits: u64,
}

impl<V> LruEntry<V> {
    /// The eviction score: rebuild cost amplified by observed hit rate.
    /// Lower scores evict first; zero-cost entries all score zero and
    /// fall back to recency order.
    fn score(&self) -> u64 {
        self.cost_ns.saturating_mul(1 + self.hits)
    }

    /// This entry's key in the ordered eviction index.
    fn rank(&self) -> (u64, u64) {
        (self.score(), self.last_used)
    }
}

/// Outcome of a [`ByteLru::insert`].
#[derive(Debug)]
pub struct Inserted<K, V> {
    /// Whether the new entry is resident (an entry larger than the whole
    /// budget is refused rather than cached — it would evict everything
    /// and still violate the budget).
    pub admitted: bool,
    /// Entries evicted to make room, least-recently-used first.
    pub evicted: Vec<(K, usize, V)>,
}

/// A byte-budgeted map with cost-aware eviction (strict LRU for entries
/// inserted without a cost).
///
/// Invariant (checked by [`ByteLru::check_invariants`], enforced under
/// the `validate` feature): the sum of resident entry sizes never
/// exceeds the budget, `total_bytes` always equals that sum, and the
/// ordered eviction index mirrors the entry map one-to-one.
#[derive(Debug)]
pub struct ByteLru<K, V> {
    budget: usize,
    entries: HashMap<K, LruEntry<V>>,
    /// Eviction order: `(score, last_used) → key`, victims from the
    /// front. `last_used` ticks are unique, so the composite key is too.
    index: BTreeMap<(u64, u64), K>,
    total: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> ByteLru<K, V> {
    /// An empty cache with the given byte budget.
    #[must_use]
    pub fn new(budget: usize) -> ByteLru<K, V> {
        ByteLru {
            budget,
            entries: HashMap::new(),
            index: BTreeMap::new(),
            total: 0,
            tick: 0,
        }
    }

    /// The byte budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, marks it most-recently-used, and counts the hit
    /// toward its eviction score.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                self.index.remove(&e.rank());
                e.last_used = tick;
                e.hits += 1;
                self.index.insert(e.rank(), key.clone());
                Some(&e.value)
            }
            None => None,
        }
    }

    /// Inserts `key → value` accounted at `bytes` with zero rebuild
    /// cost: among such entries eviction is exactly strict LRU.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> Inserted<K, V> {
        self.insert_with_cost(key, value, bytes, Duration::ZERO)
    }

    /// Inserts `key → value` accounted at `bytes`, carrying the measured
    /// `cost` of rebuilding it. Entries are evicted in ascending
    /// `cost × (1 + hits)` score (recency breaks ties) until the budget
    /// holds. Re-inserting an existing key replaces it (the old entry is
    /// reported evicted first).
    pub fn insert_with_cost(
        &mut self,
        key: K,
        value: V,
        bytes: usize,
        cost: Duration,
    ) -> Inserted<K, V> {
        let mut evicted = Vec::new();
        if let Some(old) = self.entries.remove(&key) {
            self.index.remove(&old.rank());
            self.total -= old.bytes;
            evicted.push((key.clone(), old.bytes, old.value));
        }
        if bytes > self.budget {
            return Inserted {
                admitted: false,
                evicted,
            };
        }
        while self.total + bytes > self.budget {
            // victim: the front of the ordered index — lowest score,
            // least recent among equals. O(log n), not a full scan.
            match self.index.pop_first() {
                Some((_, k)) => {
                    if let Some(e) = self.entries.remove(&k) {
                        self.total -= e.bytes;
                        evicted.push((k, e.bytes, e.value));
                    }
                }
                None => break, // unreachable: bytes <= budget and map empty
            }
        }
        self.tick += 1;
        let entry = LruEntry {
            value,
            bytes,
            last_used: self.tick,
            cost_ns: u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX),
            hits: 0,
        };
        self.total += bytes;
        self.index.insert(entry.rank(), key.clone());
        self.entries.insert(key, entry);
        Inserted {
            admitted: true,
            evicted,
        }
    }

    /// Verifies the accounting invariants, returning a description of the
    /// first violation. Called after every mutation when the `validate`
    /// feature is on; always available to tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: usize = self.entries.values().map(|e| e.bytes).sum();
        if sum != self.total {
            return Err(format!(
                "byte accounting drifted: tracked {} vs actual {sum}",
                self.total
            ));
        }
        if self.total > self.budget {
            return Err(format!(
                "budget violated: {} resident > {} budget",
                self.total, self.budget
            ));
        }
        if self.entries.values().any(|e| e.last_used > self.tick) {
            return Err("entry recency is ahead of the clock".to_string());
        }
        if self.index.len() != self.entries.len() {
            return Err(format!(
                "eviction index out of step: {} indexed vs {} resident",
                self.index.len(),
                self.entries.len()
            ));
        }
        for (rank, key) in &self.index {
            let matches = self.entries.get(key).is_some_and(|e| e.rank() == *rank);
            if !matches {
                return Err("eviction index rank disagrees with its entry".to_string());
            }
        }
        Ok(())
    }
}

/// How a plan lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident plan — no build, no upward pass.
    Hit,
    /// This caller built the plan.
    Built,
    /// Another caller was already building it; this one waited
    /// (single-flight coalescing).
    Coalesced,
    /// The request never touched the cache: the routed backend has no
    /// artifact worth caching (direct summation builds nothing).
    Bypassed,
}

/// Concurrent plan cache: LRU + byte budget + single-flight builds.
///
/// The concurrency itself lives in [`SingleFlight`] — a policy-free core
/// the `mbt-check` model suite explores exhaustively. This type wires in
/// the engine's policy: the [`ByteLru`] as flight state, stats recording
/// at the probe/classify points (still under the flight lock, so counts
/// are exact), and [`EngineError::BuildPanicked`] as the substitute a
/// panicking builder leaves for its coalesced waiters.
#[derive(Debug)]
pub struct PlanCache {
    flight: PlanFlight,
}

/// The cache's flight core: [`ByteLru`] residency as flight state, keyed
/// by [`PlanKey`], landing a shareable build result per flight.
type PlanFlight =
    SingleFlight<ByteLru<PlanKey, Arc<Plan>>, PlanKey, Result<Arc<Plan>, EngineError>>;

impl PlanCache {
    /// An empty cache with the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> PlanCache {
        PlanCache {
            flight: SingleFlight::new(ByteLru::new(budget_bytes)),
        }
    }

    /// `(resident plans, resident bytes)`.
    pub fn residency(&self) -> (usize, usize) {
        self.flight.with_state(|lru| (lru.len(), lru.total_bytes()))
    }

    /// Returns the plan for `key`, building it with `build` on a miss.
    ///
    /// Concurrent calls with the same cold key run `build` exactly once:
    /// the first caller becomes the builder, the rest park on its ticket
    /// and receive the same `Arc<Plan>` (or the same error). Build errors
    /// are not cached — the next request retries. A builder that
    /// *panics* answers its waiters [`EngineError::BuildPanicked`]
    /// (they never hang on the dead flight) and the panic propagates to
    /// the building caller alone.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        stats: &StatsCollector,
        build: impl FnOnce() -> Result<Plan, EngineError>,
    ) -> Result<(Arc<Plan>, CacheOutcome), EngineError> {
        let flight = self.flight.run(
            key,
            |lru| {
                lru.get(&key).map(|plan| {
                    stats.record_hit();
                    Arc::clone(plan)
                })
            },
            |leads| {
                if leads {
                    stats.record_miss();
                } else {
                    stats.record_coalesced();
                }
            },
            || {
                let t0 = Instant::now();
                let built = build().map(Arc::new);
                if built.is_ok() {
                    stats.record_build(key, t0.elapsed());
                }
                built
            },
            || Err(EngineError::BuildPanicked),
            |lru, built| {
                if let Ok(plan) = built {
                    // residency is cost-aware: the plan's measured build
                    // time (the same duration `record_build` charged)
                    // makes expensive plans the last to go
                    let ins =
                        lru.insert_with_cost(key, Arc::clone(plan), plan.bytes, plan.build_time);
                    for (_, bytes, _) in &ins.evicted {
                        stats.record_eviction(*bytes);
                    }
                }
                #[cfg(feature = "validate")]
                if let Err(why) = lru.check_invariants() {
                    // validate-mode contract: accounting bugs are engine bugs
                    panic!("plan cache invariant violated: {why}"); // lint: allow(panic, validate-feature contract check, disabled in production builds)
                }
            },
        );
        match flight {
            Flight::Hit(plan) => Ok((plan, CacheOutcome::Hit)),
            Flight::Led(result) => result.map(|p| (p, CacheOutcome::Built)),
            Flight::Joined(result) => result.map(|p| (p, CacheOutcome::Coalesced)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_get_bumps_recency() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        assert!(lru.insert(1, 10, 40).admitted);
        assert!(lru.insert(2, 20, 40).admitted);
        assert_eq!(lru.get(&1), Some(&10)); // 2 is now LRU
        let ins = lru.insert(3, 30, 40);
        assert!(ins.admitted);
        assert_eq!(ins.evicted.len(), 1);
        assert_eq!(ins.evicted[0].0, 2);
        assert!(lru.check_invariants().is_ok());
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.total_bytes(), 80);
        assert!(!lru.is_empty());
        assert_eq!(lru.budget(), 100);
    }

    #[test]
    fn oversized_entry_refused() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        lru.insert(1, 10, 60);
        let ins = lru.insert(2, 20, 101);
        assert!(!ins.admitted);
        assert!(ins.evicted.is_empty());
        // the resident entry was not disturbed
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.total_bytes(), 60);
        assert!(lru.check_invariants().is_ok());
    }

    #[test]
    fn reinsert_replaces() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        lru.insert(1, 10, 60);
        let ins = lru.insert(1, 11, 30);
        assert!(ins.admitted);
        assert_eq!(ins.evicted.len(), 1); // the old value comes back out
        assert_eq!(ins.evicted[0].2, 10);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.total_bytes(), 30);
        assert!(lru.check_invariants().is_ok());
    }

    #[test]
    fn panicking_builder_answers_followers_with_typed_error() {
        use crate::plan::PlanKey;
        use crate::registry::DatasetId;
        use mbt_treecode::TreecodeParams;

        let cache = PlanCache::new(1 << 20);
        let stats = StatsCollector::default();
        let params = TreecodeParams::fixed(4, 0.6);
        let key = PlanKey::new(DatasetId(0), &params);

        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                cache.get_or_build(key, &stats, || {
                    // hold the flight open until the follower has
                    // coalesced, so the panic demonstrably lands on a
                    // parked waiter rather than an empty ticket
                    while stats
                        .snapshot(crate::stats::Gauges::default())
                        .coalesced_misses
                        == 0
                    {
                        std::thread::yield_now();
                    }
                    panic!("builder died mid-flight")
                })
            });
            // wait until the leader owns the flight, then coalesce onto it
            while stats.snapshot(crate::stats::Gauges::default()).cache_misses == 0 {
                std::thread::yield_now();
            }
            let got =
                cache.get_or_build(key, &stats, || panic!("follower must coalesce, not build"));
            // liveness: we woke with the typed substitute, not a hang
            assert_eq!(got.unwrap_err(), EngineError::BuildPanicked);
            // the panic itself reached the leader's caller alone
            assert!(leader.join().is_err());
        });
        // the dead flight was retired and nothing was published
        assert_eq!(cache.residency(), (0, 0));
    }

    #[test]
    fn cache_recovers_after_builder_panic() {
        use crate::plan::PlanKey;
        use crate::registry::DatasetId;
        use mbt_geometry::distribution::{uniform_cube, ChargeModel};
        use mbt_treecode::TreecodeParams;

        let cache = PlanCache::new(1 << 26);
        let stats = StatsCollector::default();
        let params = TreecodeParams::fixed(4, 0.6);
        let key = PlanKey::new(DatasetId(0), &params);

        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(key, &stats, || panic!("first build dies"))
        }));
        assert!(boom.is_err());
        assert_eq!(cache.residency(), (0, 0));

        // the key is not wedged: the next caller leads a fresh flight
        let ps = uniform_cube(300, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 3);
        let (plan, outcome) = cache
            .get_or_build(key, &stats, || Plan::build(key, &ps, params))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Built);
        assert_eq!(plan.key, key);
        assert_eq!(cache.residency().0, 1);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        for k in 0..4 {
            lru.insert(k, k, 25);
        }
        lru.get(&0); // order now 1, 2, 3, 0
        let ins = lru.insert(9, 9, 75);
        assert!(ins.admitted);
        let order: Vec<u32> = ins.evicted.iter().map(|e| e.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(lru.check_invariants().is_ok());
    }

    #[test]
    fn cheap_entries_evict_before_expensive_ones() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        // the expensive plan is *older* — pure LRU would sacrifice it
        assert!(
            lru.insert_with_cost(1, 10, 50, Duration::from_millis(500))
                .admitted
        );
        assert!(
            lru.insert_with_cost(2, 20, 50, Duration::from_millis(1))
                .admitted
        );
        let ins = lru.insert_with_cost(3, 30, 50, Duration::from_millis(50));
        assert!(ins.admitted);
        let order: Vec<u32> = ins.evicted.iter().map(|e| e.0).collect();
        assert_eq!(order, vec![2], "the cheap rebuild goes first");
        assert!(lru.check_invariants().is_ok());
    }

    #[test]
    fn hits_amplify_an_entrys_score() {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        // equal rebuild cost; key 1 is hot (3 hits → score x4), key 2 cold
        lru.insert_with_cost(1, 10, 50, Duration::from_millis(10));
        lru.insert_with_cost(2, 20, 50, Duration::from_millis(10));
        for _ in 0..3 {
            assert_eq!(lru.get(&1), Some(&10));
        }
        let ins = lru.insert_with_cost(3, 30, 60, Duration::from_millis(10));
        let order: Vec<u32> = ins.evicted.iter().map(|e| e.0).collect();
        assert_eq!(order, vec![2, 1], "cold entry first despite equal cost");
        assert!(lru.check_invariants().is_ok());
    }

    #[test]
    fn zero_cost_inserts_stay_strict_lru_after_hits() {
        // hits multiply a zero cost into a zero score: plain inserts keep
        // the exact strict-LRU order the property tests model
        let mut lru: ByteLru<u32, u32> = ByteLru::new(100);
        for k in 0..4 {
            lru.insert(k, k, 25);
        }
        lru.get(&1);
        lru.get(&1);
        lru.get(&0);
        let ins = lru.insert(9, 9, 100);
        let order: Vec<u32> = ins.evicted.iter().map(|e| e.0).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
        assert!(lru.check_invariants().is_ok());
    }
}
