//! The direct-summation backend (tiny-n routed queries).
//!
//! Below [`crate::route::DIRECT_MAX_SOURCES`] sources, a guarded SIMD
//! direct sum beats either tree build even on a cold cache — and it is
//! *exact*, so it trivially meets any requested accuracy (its Theorem
//! bound is zero). Direct sweeps bypass the plan cache entirely: there
//! is no artifact worth caching, the particle SoA gather below is the
//! whole "build".

use std::time::Instant;

use mbt_geometry::{Particle, Vec3};
use mbt_obs::Phase;
use mbt_treecode::EvalStats;

use crate::batch::{QueryKind, QueryOutput};

/// Evaluates one batch of requests by guarded direct summation over
/// `particles`, mirroring [`crate::batch::evaluate_batch_with`]'s shape:
/// per-request outputs in request order plus merged sweep counters.
///
/// The `r = 0` guard skips self-pairs when a target coincides with a
/// source, matching the treecode's own near-field convention;
/// `softening` is the Plummer term `ε` of the resolved parameters.
#[must_use]
pub fn evaluate_direct(
    particles: &[Particle],
    softening: f64,
    kind: QueryKind,
    requests: &[&[Vec3]],
) -> (Vec<QueryOutput>, EvalStats) {
    let t0 = Instant::now();
    let eps2 = softening * softening;
    // one SoA gather per sweep, shared by every request in the batch
    // lint: allow(alloc, one particle SoA per drained batch)
    let mut xs = Vec::with_capacity(particles.len());
    let mut ys = Vec::with_capacity(particles.len());
    let mut zs = Vec::with_capacity(particles.len());
    let mut qs = Vec::with_capacity(particles.len());
    for p in particles {
        xs.push(p.position.x);
        ys.push(p.position.y);
        zs.push(p.position.z);
        qs.push(p.charge);
    }

    let mut stats = EvalStats::default();
    // lint: allow(alloc, O(batch) split of the output arena)
    let mut outputs: Vec<QueryOutput> = Vec::with_capacity(requests.len());
    for r in requests {
        stats.targets += r.len() as u64;
        match kind {
            QueryKind::Potential => {
                // lint: allow(alloc, per-request result buffer handed to its caller)
                let mut vals = Vec::with_capacity(r.len());
                for &pt in *r {
                    let (phi, pairs) =
                        mbt_multipole::p2p_potential_span_guarded(&xs, &ys, &zs, &qs, pt, eps2);
                    stats.record_direct(pairs);
                    vals.push(phi);
                }
                outputs.push(QueryOutput::Potentials(vals));
            }
            QueryKind::Field => {
                // lint: allow(alloc, per-request result buffer handed to its caller)
                let mut vals = Vec::with_capacity(r.len());
                for &pt in *r {
                    let (phi, grad, pairs) =
                        mbt_multipole::p2p_field_span_guarded(&xs, &ys, &zs, &qs, pt, eps2);
                    stats.record_direct(pairs);
                    vals.push((phi, grad));
                }
                outputs.push(QueryOutput::Fields(vals));
            }
        }
    }
    mbt_obs::record_since(Phase::DirectSweep, t0);
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};

    #[test]
    fn direct_matches_naive_summation() {
        let ps = uniform_cube(90, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 3);
        let pts: Vec<Vec3> = (0..7)
            .map(|i| Vec3::new(0.3 * f64::from(i) - 1.0, 0.2, -0.4))
            .collect();
        let (out, stats) = evaluate_direct(&ps, 0.0, QueryKind::Potential, &[&pts]);
        let got = out[0].potentials().unwrap();
        for (x, phi) in pts.iter().zip(got) {
            let exact: f64 = ps.iter().map(|p| p.charge / p.position.distance(*x)).sum();
            assert!((phi - exact).abs() <= 1e-12 * exact.abs().max(1.0));
        }
        assert_eq!(stats.targets, 7);
        assert_eq!(stats.direct_pairs, 7 * 90);
        assert_eq!(stats.pc_interactions, 0);
    }

    #[test]
    fn self_pairs_are_guarded_and_fields_have_gradients() {
        let ps = uniform_cube(40, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 5);
        // targets AT the sources: the r = 0 guard must drop each self pair
        let pts: Vec<Vec3> = ps.iter().map(|p| p.position).collect();
        let (out, stats) = evaluate_direct(&ps, 0.0, QueryKind::Field, &[&pts]);
        assert_eq!(stats.direct_pairs, 40 * 39);
        for (phi, g) in out[0].fields().unwrap() {
            assert!(phi.is_finite() && g.is_finite());
        }
    }

    #[test]
    fn softening_regularises_coincident_targets() {
        let ps = vec![Particle::new(Vec3::ZERO, 1.0)];
        let pt = [Vec3::new(1e-12, 0.0, 0.0)];
        let (out, _) = evaluate_direct(&ps, 0.1, QueryKind::Potential, &[&pt]);
        let phi = out[0].potentials().unwrap()[0];
        assert!((phi - 1.0 / 0.1f64.hypot(1e-12)).abs() < 1e-9);
    }

    #[test]
    fn multiple_requests_split_in_order() {
        let ps = uniform_cube(30, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 9);
        let a = [Vec3::new(2.0, 0.0, 0.0)];
        let b = [Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 2.0)];
        let (out, stats) = evaluate_direct(&ps, 0.0, QueryKind::Potential, &[&a, &b]);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[1].len(), 2);
        assert_eq!(stats.targets, 3);
    }
}
