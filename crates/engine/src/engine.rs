//! The engine facade: registry → plan cache → batched scheduler →
//! admission control, behind one thread-safe object.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mbt_geometry::{Particle, Vec3};
use mbt_shard::Skeleton;
use mbt_treecode::{EvalStats, Treecode, TreecodeParams};
use rayon::prelude::*;

use mbt_obs::{SlowQuery, Span};

use crate::admission::AdmissionGate;
use crate::batch::{evaluate_plan_batch, QueryKind, QueryOutput};
use crate::cache::{CacheOutcome, PlanCache};
use crate::direct::evaluate_direct;
use crate::error::EngineError;
use crate::fanout::{evaluate_sharded, FanoutBreakdown};
use crate::plan::{Accuracy, EvalConfig, Plan, PlanKey};
use crate::registry::{Dataset, DatasetId, DatasetRegistry};
use crate::route::{route, Backend};
use crate::scheduler::Batcher;
use crate::stats::{EngineStats, Gauges, StatsCollector};
use crate::tenant::{TenantConfig, TenantId, TenantTable};

/// Engine-wide settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Default MAC parameter α applied when resolving [`Accuracy`]
    /// shorthands (requests using [`Accuracy::Params`] bypass it).
    pub alpha: f64,
    /// Default leaf capacity for resolved plans.
    pub leaf_capacity: usize,
    /// Default aggregation width `w` for resolved plans.
    pub eval_chunk: usize,
    /// Plan-cache byte budget (built trees + coefficient arenas).
    pub cache_budget_bytes: usize,
    /// Maximum requests in planning/evaluation at once.
    pub max_in_flight: usize,
    /// Maximum requests waiting for an evaluation slot; a full queue
    /// sheds new arrivals immediately.
    pub max_queued: usize,
    /// Extra coalescing wait a batch leader performs before draining its
    /// group. Zero (default) relies on natural batching: requests
    /// arriving while a sweep runs are drained by the next one.
    pub batch_window: Duration,
    /// Requests slower than this (admission → response) land in the
    /// bounded slow-query log ([`Engine::slow_queries`]).
    pub slow_query_threshold: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            alpha: 0.6,
            leaf_capacity: 32,
            eval_chunk: 64,
            cache_budget_bytes: 256 << 20,
            max_in_flight: 32,
            max_queued: 1024,
            batch_window: Duration::ZERO,
            slow_query_threshold: Duration::from_millis(250),
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), EngineError> {
        if !self.alpha.is_finite() || self.alpha <= 0.0 {
            return Err(EngineError::InvalidConfig("alpha must be finite and > 0"));
        }
        if self.leaf_capacity == 0 {
            return Err(EngineError::InvalidConfig("leaf_capacity must be >= 1"));
        }
        if self.max_in_flight == 0 {
            return Err(EngineError::InvalidConfig("max_in_flight must be >= 1"));
        }
        if self.cache_budget_bytes == 0 {
            return Err(EngineError::InvalidConfig(
                "cache_budget_bytes must be >= 1 (an engine without plan storage cannot serve)",
            ));
        }
        Ok(())
    }
}

/// One query: where, what, how accurately, and by when.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The registered dataset to evaluate against.
    pub dataset: DatasetId,
    /// Per-request accuracy, resolved against the engine defaults.
    pub accuracy: Accuracy,
    /// Potential or potential + gradient.
    pub kind: QueryKind,
    /// Observation points.
    pub points: Vec<Vec3>,
    /// Optional deadline: the request is shed (never evaluated) once this
    /// instant passes while it is still queued.
    pub deadline: Option<Instant>,
    /// The tenant this request is billed to and scheduled as. Defaults to
    /// [`TenantId::DEFAULT`]; unregistered tenants serve at weight 1 with
    /// no budgets, so single-tenant callers never notice the field.
    pub tenant: TenantId,
}

impl QueryRequest {
    /// A potential query.
    #[must_use]
    pub fn potentials(dataset: DatasetId, accuracy: Accuracy, points: Vec<Vec3>) -> QueryRequest {
        QueryRequest {
            dataset,
            accuracy,
            kind: QueryKind::Potential,
            points,
            deadline: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// A potential + gradient query.
    #[must_use]
    pub fn fields(dataset: DatasetId, accuracy: Accuracy, points: Vec<Vec3>) -> QueryRequest {
        QueryRequest {
            dataset,
            accuracy,
            kind: QueryKind::Field,
            points,
            deadline: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Attaches a deadline `budget` from now.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> QueryRequest {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Bills and schedules this request as `tenant`.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> QueryRequest {
        self.tenant = tenant;
        self
    }
}

/// A served query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Per-point values, in the request's point order.
    pub output: QueryOutput,
    /// Counters of the evaluation sweep this request rode in. Sweeps may
    /// serve several coalesced requests, so these cover the whole batch,
    /// not only this request's points.
    pub eval: EvalStats,
    /// How the plan was obtained (cache hit / built / coalesced build;
    /// [`CacheOutcome::Bypassed`] for direct-routed queries, which have
    /// no plan).
    pub cache: CacheOutcome,
    /// Resident size of the plan that served this query (zero for
    /// direct-routed queries).
    pub plan_bytes: usize,
    /// The backend the router selected for this request. Reflects the
    /// routing decision — an FMM-keyed plan that fell back to a treecode
    /// artifact at build time (dense-grid depth cap) still reports
    /// [`Backend::Fmm`].
    pub backend: Backend,
}

/// Result of [`Engine::warm`]: the aggregate cache outcome plus one
/// entry per shard plan (a single entry for unsharded datasets, whose one
/// plan is shard 0 of a one-way partition of themselves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmReport {
    /// The aggregate outcome across every shard: `Built` dominates
    /// `Coalesced` dominates `Hit`, so a report is `Hit` only when every
    /// shard plan was already resident.
    pub outcome: CacheOutcome,
    /// Per-shard build outcomes, in shard order.
    pub shards: Vec<ShardWarm>,
}

/// One shard's slice of a [`WarmReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardWarm {
    /// The shard index (0 for unsharded datasets).
    pub shard: usize,
    /// How this shard's plan was obtained.
    pub outcome: CacheOutcome,
    /// Resident bytes of the shard's plan.
    pub bytes: usize,
    /// Wall time of the shard plan's build (the original build when the
    /// plan was already resident — plans carry their construction cost).
    pub build_time: Duration,
}

/// `Built` dominates `Coalesced` dominates `Hit`: the aggregate is the
/// most expensive thing any shard did.
fn aggregate_outcome<I: IntoIterator<Item = CacheOutcome>>(outcomes: I) -> CacheOutcome {
    let mut agg = CacheOutcome::Hit;
    for o in outcomes {
        agg = match (agg, o) {
            (CacheOutcome::Built, _) | (_, CacheOutcome::Built) => CacheOutcome::Built,
            (CacheOutcome::Coalesced, _) | (_, CacheOutcome::Coalesced) => CacheOutcome::Coalesced,
            _ => CacheOutcome::Hit,
        };
    }
    agg
}

/// The multi-tenant treecode query engine.
///
/// `Engine` is `Sync`: share one instance (e.g. behind an `Arc`) across
/// every serving thread. See the crate docs for the full architecture.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    registry: DatasetRegistry,
    cache: PlanCache,
    batcher: Batcher,
    gate: AdmissionGate,
    stats: StatsCollector,
    tenants: TenantTable,
    /// Cached global skeletons for sharded datasets, keyed by the
    /// shard-0 plan key of their generation (dataset + resolved params +
    /// partition width). Entries are tiny — O(k · p²) complex
    /// coefficients — and are rebuilt whenever any shard plan was not a
    /// cache hit, so an evicted-and-rebuilt shard can never serve a
    /// stale summary.
    skeletons: Mutex<HashMap<PlanKey, Arc<Skeleton>>>,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        config.validate()?;
        Ok(Engine {
            config,
            registry: DatasetRegistry::new(),
            cache: PlanCache::new(config.cache_budget_bytes),
            batcher: Batcher::with_window(config.batch_window),
            gate: AdmissionGate::new(config.max_in_flight, config.max_queued),
            stats: StatsCollector::with_slow_threshold(config.slow_query_threshold),
            tenants: TenantTable::new(),
            skeletons: Mutex::new(HashMap::new()),
        })
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Validates and registers a particle set under `name`.
    pub fn register(&self, name: &str, particles: Vec<Particle>) -> Result<DatasetId, EngineError> {
        self.registry.register(name, particles)
    }

    /// Validates, Hilbert-partitions into `shards` contiguous key
    /// ranges, and registers a particle set under `name`. Queries are
    /// served by independent per-shard plans (built concurrently on a
    /// cold miss, cached and evicted independently) behind a global
    /// skeleton tree that answers the cross-shard far field; `shards ==
    /// 1` is exactly [`Engine::register`].
    pub fn register_sharded(
        &self,
        name: &str,
        particles: Vec<Particle>,
        shards: usize,
    ) -> Result<DatasetId, EngineError> {
        self.registry.register_sharded(name, particles, shards)
    }

    /// Registers (or re-registers) a tenant's fair-share weight and
    /// budgets. Unregistered tenants — including [`TenantId::DEFAULT`] —
    /// serve at weight 1 with no budgets, so calling this is only needed
    /// to differentiate tenants. Re-registering updates the config but
    /// keeps the tenant's accumulated charges.
    pub fn register_tenant(&self, tenant: TenantId, config: TenantConfig) {
        self.tenants.register(tenant, config);
    }

    /// Opens a new billing window for `tenant`: accumulated plan-byte and
    /// evaluation-time charges are zeroed (weights and quotas stay).
    /// Returns `false` when the tenant was never registered or billed.
    pub fn reset_tenant_budgets(&self, tenant: TenantId) -> bool {
        self.tenants.reset_budgets(tenant)
    }

    /// The dataset registered under `id`.
    pub fn dataset(&self, id: DatasetId) -> Result<Arc<Dataset>, EngineError> {
        self.registry.get(id)
    }

    /// Looks a dataset id up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<DatasetId> {
        self.registry.lookup(name)
    }

    /// The full parameters `accuracy` resolves to under this engine's
    /// defaults — what a query with that accuracy will actually run with,
    /// up to the dataset-aware near-field precision (queries additionally
    /// apply the f32 admission test against the target dataset's size and
    /// largest charge; see [`Accuracy::resolve_with_profile`]).
    #[must_use]
    pub fn resolve_params(&self, accuracy: Accuracy) -> TreecodeParams {
        accuracy.resolve(
            self.config.alpha,
            self.config.leaf_capacity,
            self.config.eval_chunk,
        )
    }

    /// [`Engine::resolve_params`] plus the dataset-aware f32 near-field
    /// admission test — exactly what a query against `dataset` runs with.
    pub fn resolve_params_for(
        &self,
        dataset: DatasetId,
        accuracy: Accuracy,
    ) -> Result<TreecodeParams, EngineError> {
        let ds = self.registry.get(dataset)?;
        Ok(self.resolve_params_profiled(&ds, accuracy))
    }

    /// The profile-aware resolution against an already-fetched dataset.
    fn resolve_params_profiled(&self, ds: &Dataset, accuracy: Accuracy) -> TreecodeParams {
        accuracy.resolve_with_profile(
            self.config.alpha,
            self.config.leaf_capacity,
            self.config.eval_chunk,
            ds.len(),
            ds.q_max,
        )
    }

    /// Pre-builds (or touches) every plan serving `(dataset, accuracy)`
    /// without issuing a query — cache warming for predictable tenants.
    /// For sharded datasets **all** shard plans are built concurrently
    /// and the report carries one entry per shard; unsharded datasets
    /// report their single plan as shard 0.
    pub fn warm(&self, dataset: DatasetId, accuracy: Accuracy) -> Result<WarmReport, EngineError> {
        let ds = self.registry.get(dataset)?;
        if !ds.is_sharded() {
            let (plan, outcome, _) = self.plan_for_ds(&ds, accuracy)?;
            return Ok(WarmReport {
                outcome,
                shards: vec![ShardWarm {
                    shard: 0,
                    outcome,
                    bytes: plan.bytes,
                    build_time: plan.build_time,
                }],
            });
        }
        let (plans, _, _) = self.shard_plans(&ds, accuracy)?;
        let shards: Vec<ShardWarm> = plans
            .iter()
            .enumerate()
            .map(|(s, (plan, outcome))| ShardWarm {
                shard: s,
                outcome: *outcome,
                bytes: plan.bytes,
                build_time: plan.build_time,
            })
            .collect();
        Ok(WarmReport {
            outcome: aggregate_outcome(plans.iter().map(|(_, o)| *o)),
            shards,
        })
    }

    fn plan_for_ds(
        &self,
        ds: &Arc<Dataset>,
        accuracy: Accuracy,
    ) -> Result<(Arc<Plan>, CacheOutcome, TreecodeParams), EngineError> {
        let params = self.resolve_params_profiled(ds, accuracy);
        params.validate().map_err(EngineError::InvalidParams)?;
        let (plan, outcome) = self.plan_routed(ds, params, Backend::Treecode)?;
        Ok((plan, outcome, params))
    }

    /// Resolves the routed backend's cached plan for `(ds, params)` —
    /// building it under the key's single-flight on a miss. `params`
    /// must already be validated.
    fn plan_routed(
        &self,
        ds: &Arc<Dataset>,
        params: TreecodeParams,
        backend: Backend,
    ) -> Result<(Arc<Plan>, CacheOutcome), EngineError> {
        // PlanKey excludes precision (and the other execution knobs), so
        // the f64 and f32 tiers of one request shape share one cached
        // tree + coefficient arena.
        let key = PlanKey::routed(ds.id, &params, backend);
        self.cache.get_or_build(key, &self.stats, || {
            Plan::build(key, ds.particles(), params)
        })
    }

    /// Resolves every shard plan of a sharded dataset (building cold
    /// shards concurrently — each shard is its own cache entry behind its
    /// own single-flight, so a cold dataset costs roughly one shard's
    /// build time given threads, not the sum) plus the matching global
    /// skeleton.
    #[allow(clippy::type_complexity)]
    fn shard_plans(
        &self,
        ds: &Arc<Dataset>,
        accuracy: Accuracy,
    ) -> Result<
        (
            Vec<(Arc<Plan>, CacheOutcome)>,
            TreecodeParams,
            Arc<Skeleton>,
        ),
        EngineError,
    > {
        let params = self.resolve_params_profiled(ds, accuracy);
        params.validate().map_err(EngineError::InvalidParams)?;
        let k = ds.shard_count();
        let built: Vec<Result<(Arc<Plan>, CacheOutcome), EngineError>> = (0..k)
            .into_par_iter()
            .map(|s| {
                let key = PlanKey::sharded(ds.id, &params, s, k);
                self.cache.get_or_build(key, &self.stats, || {
                    Plan::build(key, ds.shard_particles(s), params)
                })
            })
            .collect();
        let mut plans = Vec::with_capacity(k);
        let mut fresh = false;
        for r in built {
            let (plan, outcome) = r?;
            fresh |= outcome != CacheOutcome::Hit;
            plans.push((plan, outcome));
        }
        let skey = PlanKey::sharded(ds.id, &params, 0, k);
        let skeleton = self.skeleton_for(skey, &plans, fresh);
        Ok((plans, params, skeleton))
    }

    /// The cached skeleton for this plan generation, rebuilt whenever any
    /// shard plan was freshly built (deterministic builds make the
    /// rebuild idempotent; the invalidation only exists so the summary
    /// can never outlive an evicted shard's coefficients).
    fn skeleton_for(
        &self,
        key: PlanKey,
        plans: &[(Arc<Plan>, CacheOutcome)],
        rebuild: bool,
    ) -> Arc<Skeleton> {
        let mut map = self
            .skeletons
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !rebuild {
            if let Some(sk) = map.get(&key) {
                return Arc::clone(sk);
            }
        }
        let refs: Vec<&Treecode> = plans.iter().map(|(p, _)| p.treecode()).collect();
        let sk = Arc::new(Skeleton::from_treecodes(&refs));
        map.insert(key, Arc::clone(&sk));
        sk
    }

    /// Bills `tenant` for every plan in `plans` it caused to be built
    /// this call (cache hits and coalesced waits are free: the bytes were
    /// already paid for by whoever built them).
    fn charge_built_plans(&self, tenant: TenantId, plans: &[(Arc<Plan>, CacheOutcome)]) {
        let built: usize = plans
            .iter()
            .filter(|(_, o)| *o == CacheOutcome::Built)
            .map(|(p, _)| p.bytes)
            .sum();
        if built > 0 {
            self.tenants.charge_plan_bytes(tenant, built);
        }
    }

    /// Splits one coalesced sweep's wall time evenly across the requests
    /// riding it, billing each request's tenant one share. An even split
    /// (rather than a per-point one) keeps the charge independent of who
    /// else happened to coalesce in.
    fn charge_eval_split(&self, requests: &[QueryRequest], live: &[usize], took: Duration) {
        let Ok(n) = u32::try_from(live.len()) else {
            return;
        };
        if n == 0 {
            return;
        }
        let share = took / n;
        for &i in live {
            self.tenants.charge_eval(requests[i].tenant, share);
        }
    }

    /// Feeds one fan-out's routing counters plus its per-shard sweeps
    /// (under their sharded plan keys, so the ordinary per-plan
    /// breakdown separates shards) into the collector.
    fn record_fanout_stats(
        &self,
        ds: &Dataset,
        params: &TreecodeParams,
        fan: &FanoutBreakdown,
        took: Duration,
    ) {
        self.stats.record_fanout(fan, took);
        let k = ds.shard_count();
        for sweep in &fan.per_shard {
            let key = PlanKey::sharded(ds.id, params, sweep.shard, k);
            self.stats.record_batch(key, 1, sweep.points, sweep.elapsed);
        }
    }

    /// Serves one query: admission → plan resolution (cached, built, or
    /// coalesced onto an in-flight build) → batched evaluation.
    ///
    /// Blocking; safe to call from many threads at once — that is the
    /// intended use, and concurrent queries against the same plan are
    /// coalesced into shared sweeps.
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse, EngineError> {
        let arrived = Instant::now();
        // budgets first: a tenant over quota is shed before it can queue
        // (its backlog would only steal gate capacity from solvent ones)
        if let Err(e) = self.tenants.admit_request(request.tenant) {
            self.stats.record_shed_quota();
            return Err(e);
        }
        let weight = self.tenants.weight(request.tenant);
        let _permit = match self
            .gate
            .admit(request.tenant, weight, request.deadline, &self.stats)
        {
            Ok(p) => {
                self.tenants.note_admitted(request.tenant);
                p
            }
            Err(e) => {
                self.tenants.note_shed(request.tenant);
                return Err(e);
            }
        };
        let waited = arrived.elapsed();
        let ds = self.registry.get(request.dataset)?;
        let params = self.resolve_params_profiled(&ds, request.accuracy);
        params.validate().map_err(EngineError::InvalidParams)?;
        // sharded datasets are served by the skeleton fan-out (a
        // treecode-only path) and explicit parameters state their own
        // execution mode — both pin the router
        let pinned = ds.is_sharded() || matches!(request.accuracy, Accuracy::Params(_));
        let backend = route(ds.len(), request.points.len(), pinned, &params);
        self.stats.record_route(backend);
        if ds.is_sharded() {
            return self.query_sharded(&ds, &request, arrived, waited);
        }
        if backend == Backend::Direct {
            return self.query_direct(&ds, &params, &request, arrived, waited);
        }
        let (plan, outcome) = self.plan_routed(&ds, params, backend)?;
        if outcome == CacheOutcome::Built {
            self.tenants.charge_plan_bytes(request.tenant, plan.bytes);
        }
        // a cold build may have consumed the whole budget
        if request.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.record_shed_deadline();
            return Err(EngineError::DeadlineExceeded);
        }
        let cfg = EvalConfig::of(&params);
        let n_points = request.points.len();
        let tenant = request.tenant;
        let t_eval = Instant::now();
        let (output, eval) = self.batcher.run(
            &plan,
            request.kind,
            cfg,
            request.points,
            request.deadline,
            &self.stats,
        )?;
        self.tenants.charge_eval(tenant, t_eval.elapsed());
        self.stats
            .record_request(request.dataset, n_points, arrived.elapsed(), waited);
        Ok(QueryResponse {
            output,
            eval,
            cache: outcome,
            plan_bytes: plan.bytes,
            backend,
        })
    }

    /// The direct-summation serving path: no plan, no cache — one
    /// guarded sweep over the dataset's particles. Runs under the permit
    /// `query` already holds.
    fn query_direct(
        &self,
        ds: &Arc<Dataset>,
        params: &TreecodeParams,
        request: &QueryRequest,
        arrived: Instant,
        waited: Duration,
    ) -> Result<QueryResponse, EngineError> {
        if request.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.record_shed_deadline();
            return Err(EngineError::DeadlineExceeded);
        }
        let key = PlanKey::routed(ds.id, params, Backend::Direct);
        let n_points = request.points.len();
        let t0 = Instant::now();
        let (mut outputs, eval) = evaluate_direct(
            ds.particles(),
            params.softening,
            request.kind,
            &[&request.points],
        );
        self.stats.record_batch(key, 1, n_points, t0.elapsed());
        self.tenants.charge_eval(request.tenant, t0.elapsed());
        self.stats
            .record_request(request.dataset, n_points, arrived.elapsed(), waited);
        // one slice in ⇒ exactly one output out; a missing output is an
        // evaluator bug and must not masquerade as a zero-length success
        debug_assert_eq!(outputs.len(), 1);
        let output = outputs
            .pop()
            .ok_or(EngineError::Internal("direct sweep returned no output"))?;
        Ok(QueryResponse {
            output,
            eval,
            cache: CacheOutcome::Bypassed,
            plan_bytes: 0,
            backend: Backend::Direct,
        })
    }

    /// The sharded serving path: resolve every shard plan (concurrent
    /// cold builds) and the skeleton, then fan out / reduce. Runs under
    /// the permit `query` already holds.
    fn query_sharded(
        &self,
        ds: &Arc<Dataset>,
        request: &QueryRequest,
        arrived: Instant,
        waited: Duration,
    ) -> Result<QueryResponse, EngineError> {
        let (plans, params, skeleton) = self.shard_plans(ds, request.accuracy)?;
        self.charge_built_plans(request.tenant, &plans);
        // cold shard builds may have consumed the whole budget
        if request.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stats.record_shed_deadline();
            return Err(EngineError::DeadlineExceeded);
        }
        let cfg = EvalConfig::of(&params);
        let n_points = request.points.len();
        let arc_plans: Vec<Arc<Plan>> = plans.iter().map(|(p, _)| Arc::clone(p)).collect();
        let t0 = Instant::now();
        let (mut outputs, eval, fan) =
            evaluate_sharded(&arc_plans, &skeleton, request.kind, &[&request.points], cfg);
        self.record_fanout_stats(ds, &params, &fan, t0.elapsed());
        self.tenants.charge_eval(request.tenant, t0.elapsed());
        self.stats
            .record_request(request.dataset, n_points, arrived.elapsed(), waited);
        // one slice in ⇒ exactly one output out (see `query_direct`)
        debug_assert_eq!(outputs.len(), 1);
        let output = outputs
            .pop()
            .ok_or(EngineError::Internal("sharded fan-out returned no output"))?;
        Ok(QueryResponse {
            output,
            eval,
            cache: aggregate_outcome(plans.iter().map(|(_, o)| *o)),
            plan_bytes: plans.iter().map(|(p, _)| p.bytes).sum(),
            backend: Backend::Treecode,
        })
    }

    /// One `query_batch` group against a sharded dataset: resolve the
    /// shard plans + skeleton once, fan the group's live requests out as
    /// one multi-request sweep, and scatter the per-request results.
    #[allow(clippy::too_many_arguments)]
    fn batch_group_sharded(
        &self,
        ds: &Arc<Dataset>,
        requests: &[QueryRequest],
        indices: Vec<usize>,
        kind: QueryKind,
        cfg: EvalConfig,
        arrived: Instant,
        waited: Duration,
        results: &mut [Option<Result<QueryResponse, EngineError>>],
    ) {
        let first = indices[0];
        let (plans, params, skeleton) = match self.shard_plans(ds, requests[first].accuracy) {
            Ok(t) => t,
            Err(e) => {
                for &i in &indices {
                    results[i] = Some(Err(e.clone()));
                }
                return;
            }
        };
        // the group shares (dataset, accuracy): builds bill its opener
        self.charge_built_plans(requests[first].tenant, &plans);
        let now = Instant::now();
        let live: Vec<usize> = indices
            .into_iter()
            .filter(|&i| {
                if requests[i].deadline.is_some_and(|d| now >= d) {
                    self.stats.record_shed_deadline();
                    results[i] = Some(Err(EngineError::DeadlineExceeded));
                    false
                } else {
                    true
                }
            })
            .collect();
        if live.is_empty() {
            return;
        }
        let slices: Vec<&[Vec3]> = live
            .iter()
            .map(|&i| requests[i].points.as_slice())
            .collect();
        let arc_plans: Vec<Arc<Plan>> = plans.iter().map(|(p, _)| Arc::clone(p)).collect();
        let t0 = Instant::now();
        let (outputs, sweep, fan) = evaluate_sharded(&arc_plans, &skeleton, kind, &slices, cfg);
        self.record_fanout_stats(ds, &params, &fan, t0.elapsed());
        self.charge_eval_split(requests, &live, t0.elapsed());
        let outcome = aggregate_outcome(plans.iter().map(|(_, o)| *o));
        let plan_bytes: usize = plans.iter().map(|(p, _)| p.bytes).sum();
        for (&i, output) in live.iter().zip(outputs) {
            self.stats.record_request(
                requests[i].dataset,
                requests[i].points.len(),
                arrived.elapsed(),
                waited,
            );
            results[i] = Some(Ok(QueryResponse {
                output,
                eval: sweep.clone(),
                cache: outcome,
                plan_bytes,
                backend: Backend::Treecode,
            }));
        }
    }

    /// Serves many queries from one caller as explicitly formed batches:
    /// requests are grouped by `(dataset, params, kind)`, each group is
    /// evaluated as one sweep, and results come back in request order.
    ///
    /// The whole call occupies **one** admission slot (it is one caller),
    /// using the earliest deadline among the requests for queue shedding.
    pub fn query_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, EngineError>> {
        let arrived = Instant::now();
        let earliest = requests.iter().filter_map(|r| r.deadline).min();
        // the whole batch is one caller and queues as one unit, scheduled
        // under its first request's tenant; budgets are still checked and
        // billed per request below, so mixed-tenant batches stay honest
        let tenant = requests.first().map_or(TenantId::DEFAULT, |r| r.tenant);
        let weight = self.tenants.weight(tenant);
        let permit = match self.gate.admit(tenant, weight, earliest, &self.stats) {
            Ok(p) => p,
            Err(e) => return requests.iter().map(|_| Err(e.clone())).collect(),
        };
        let waited = arrived.elapsed();

        let mut results: Vec<Option<Result<QueryResponse, EngineError>>> =
            requests.iter().map(|_| None).collect();
        let mut groups: HashMap<(PlanKey, QueryKind, EvalConfig), Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            if let Err(e) = self.tenants.admit_request(r.tenant) {
                self.stats.record_shed_quota();
                results[i] = Some(Err(e));
                continue;
            }
            self.tenants.note_admitted(r.tenant);
            let ds = match self.registry.get(r.dataset) {
                Ok(ds) => ds,
                Err(e) => {
                    results[i] = Some(Err(e));
                    continue;
                }
            };
            let params = self.resolve_params_profiled(&ds, r.accuracy);
            if let Err(e) = params.validate() {
                results[i] = Some(Err(EngineError::InvalidParams(e)));
                continue;
            }
            let pinned = ds.is_sharded() || matches!(r.accuracy, Accuracy::Params(_));
            let backend = route(ds.len(), r.points.len(), pinned, &params);
            self.stats.record_route(backend);
            // sharded datasets group under their shard-0 key (== the
            // plain key when the dataset is unsharded), so one sweep per
            // (dataset, params, kind) still covers the whole fan-out;
            // unsharded requests group under their routed backend's key,
            // so differently-routed shapes batch into separate sweeps
            let key = if ds.is_sharded() {
                PlanKey::sharded(r.dataset, &params, 0, ds.shard_count())
            } else {
                PlanKey::routed(r.dataset, &params, backend)
            };
            groups
                .entry((key, r.kind, EvalConfig::of(&params)))
                .or_default()
                .push(i);
        }

        for ((key, kind, cfg), indices) in groups {
            // all requests in a group share (dataset, accuracy)
            let first = indices[0];
            let ds = match self.registry.get(requests[first].dataset) {
                Ok(ds) => ds,
                Err(e) => {
                    for &i in &indices {
                        results[i] = Some(Err(e.clone()));
                    }
                    continue;
                }
            };
            if ds.is_sharded() {
                self.batch_group_sharded(
                    &ds,
                    requests,
                    indices,
                    kind,
                    cfg,
                    arrived,
                    waited,
                    &mut results,
                );
                continue;
            }
            // re-resolution of the first request's accuracy (validated
            // during grouping) covers the whole group
            let params = self.resolve_params_profiled(&ds, requests[first].accuracy);
            let backend = key.backend();
            let (plan, outcome) = if backend == Backend::Direct {
                (None, CacheOutcome::Bypassed)
            } else {
                match self.plan_routed(&ds, params, backend) {
                    Ok((plan, outcome)) => {
                        if outcome == CacheOutcome::Built {
                            self.tenants
                                .charge_plan_bytes(requests[first].tenant, plan.bytes);
                        }
                        (Some(plan), outcome)
                    }
                    Err(e) => {
                        for &i in &indices {
                            results[i] = Some(Err(e.clone()));
                        }
                        continue;
                    }
                }
            };
            let now = Instant::now();
            let live: Vec<usize> = indices
                .into_iter()
                .filter(|&i| {
                    if requests[i].deadline.is_some_and(|d| now >= d) {
                        self.stats.record_shed_deadline();
                        results[i] = Some(Err(EngineError::DeadlineExceeded));
                        false
                    } else {
                        true
                    }
                })
                .collect();
            if live.is_empty() {
                continue;
            }
            let slices: Vec<&[Vec3]> = live
                .iter()
                .map(|&i| requests[i].points.as_slice())
                .collect();
            let total_points: usize = slices.iter().map(|s| s.len()).sum();
            let t0 = Instant::now();
            let (outputs, sweep) = match &plan {
                Some(plan) => evaluate_plan_batch(plan, kind, &slices, cfg),
                None => evaluate_direct(ds.particles(), params.softening, kind, &slices),
            };
            self.stats
                .record_batch(key, live.len(), total_points, t0.elapsed());
            self.charge_eval_split(requests, &live, t0.elapsed());
            let plan_bytes = plan.as_ref().map_or(0, |p| p.bytes);
            for (&i, output) in live.iter().zip(outputs) {
                self.stats.record_request(
                    requests[i].dataset,
                    requests[i].points.len(),
                    arrived.elapsed(),
                    waited,
                );
                results[i] = Some(Ok(QueryResponse {
                    output,
                    eval: sweep.clone(),
                    cache: outcome,
                    plan_bytes,
                    backend,
                }));
            }
        }
        drop(permit);

        // every slot was filled by its group above; an empty one means a
        // worker never delivered — that is an engine fault and must not
        // masquerade as client-caused deadline shedding
        debug_assert!(results.iter().all(Option::is_some));
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    self.stats.record_worker_panic();
                    Err(EngineError::WorkerPanicked)
                })
            })
            .collect()
    }

    /// Recent engine-phase spans (admission wait, plan build, batch
    /// execute), oldest first, from a bounded lock-free ring. Core-layer
    /// phases (compile, sweep) are reported through the process-global
    /// [`mbt_obs`] recorder instead, which stays inert unless installed.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.stats.spans()
    }

    /// Recent queries slower than
    /// [`EngineConfig::slow_query_threshold`], oldest first, from a
    /// bounded log whose hot path never allocates.
    #[must_use]
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.stats.slow_queries()
    }

    /// A point-in-time snapshot of every counter and gauge.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let (resident_plans, resident_bytes) = self.cache.residency();
        let (in_flight, queue_depth) = self.gate.depth();
        let (skeletons, skeleton_bytes) = {
            let map = self
                .skeletons
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (map.len(), map.values().map(|s| s.heap_bytes()).sum())
        };
        let mut stats = self.stats.snapshot(Gauges {
            resident_plans,
            resident_bytes,
            cache_budget_bytes: self.config.cache_budget_bytes,
            datasets: self.registry.len(),
            in_flight,
            queue_depth,
            skeletons,
            skeleton_bytes,
        });
        stats.per_tenant = self.tenants.breakdown();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};

    fn particles(n: usize, seed: u64) -> Vec<Particle> {
        uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed)
    }

    fn points(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new(1.2 + i as f64 * 0.01, -0.3, 0.4))
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(Engine::new(EngineConfig::default()).is_ok());
        for bad in [
            EngineConfig {
                alpha: -1.0,
                ..EngineConfig::default()
            },
            EngineConfig {
                alpha: f64::NAN,
                ..EngineConfig::default()
            },
            EngineConfig {
                leaf_capacity: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                max_in_flight: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                cache_budget_bytes: 0,
                ..EngineConfig::default()
            },
        ] {
            assert!(matches!(
                Engine::new(bad),
                Err(EngineError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn end_to_end_query_and_stats() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register("tenant-a", particles(800, 7)).unwrap();
        let pts = points(30);
        let r1 = engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(4),
                pts.clone(),
            ))
            .unwrap();
        assert_eq!(r1.cache, CacheOutcome::Built);
        assert_eq!(r1.output.len(), 30);
        let r2 = engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(4), pts))
            .unwrap();
        assert_eq!(r2.cache, CacheOutcome::Hit);
        assert_eq!(r1.output, r2.output);

        let s = engine.stats();
        assert_eq!(s.plan_builds, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.resident_plans, 1);
        assert!(s.resident_bytes > 0);
        assert_eq!(s.datasets, 1);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn different_accuracies_build_different_plans() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register("t", particles(600, 11)).unwrap();
        let pts = points(5);
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(3),
                pts.clone(),
            ))
            .unwrap();
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Adaptive { p_min: 3 },
                pts.clone(),
            ))
            .unwrap();
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Tolerance { tol: 1e-5 },
                pts,
            ))
            .unwrap();
        let s = engine.stats();
        assert_eq!(s.plan_builds, 3);
        assert_eq!(s.resident_plans, 3);
    }

    #[test]
    fn field_queries_work() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register("t", particles(400, 13)).unwrap();
        let r = engine
            .query(QueryRequest::fields(id, Accuracy::Fixed(5), points(8)))
            .unwrap();
        let fields = r.output.fields().unwrap();
        assert_eq!(fields.len(), 8);
        assert!(fields
            .iter()
            .all(|(phi, g)| phi.is_finite() && g.is_finite()));
    }

    #[test]
    fn unknown_dataset_and_bad_params_are_typed_errors() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        assert!(matches!(
            engine.query(QueryRequest::potentials(
                DatasetId(42),
                Accuracy::Fixed(4),
                points(1),
            )),
            Err(EngineError::UnknownDataset(DatasetId(42)))
        ));
        let id = engine.register("t", particles(100, 17)).unwrap();
        assert!(matches!(
            engine.query(QueryRequest::potentials(
                id,
                Accuracy::Tolerance { tol: -1.0 },
                points(1),
            )),
            Err(EngineError::InvalidParams(_))
        ));
        assert!(matches!(
            engine.query(QueryRequest::potentials(id, Accuracy::Fixed(99), points(1))),
            Err(EngineError::InvalidParams(_))
        ));
    }

    #[test]
    fn warm_prebuilds_the_plan() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register("t", particles(600, 19)).unwrap();
        let report = engine.warm(id, Accuracy::Fixed(4)).unwrap();
        assert_eq!(report.outcome, CacheOutcome::Built);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].shard, 0);
        assert!(report.shards[0].bytes > 0);
        assert_eq!(
            engine.warm(id, Accuracy::Fixed(4)).unwrap().outcome,
            CacheOutcome::Hit
        );
        let r = engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(4), points(3)))
            .unwrap();
        assert_eq!(r.cache, CacheOutcome::Hit);
    }

    #[test]
    fn warm_sharded_builds_every_shard_plan() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register_sharded("t", particles(600, 47), 4).unwrap();
        let report = engine.warm(id, Accuracy::Fixed(4)).unwrap();
        assert_eq!(report.outcome, CacheOutcome::Built);
        assert_eq!(report.shards.len(), 4);
        for (s, w) in report.shards.iter().enumerate() {
            assert_eq!(w.shard, s);
            assert_eq!(w.outcome, CacheOutcome::Built);
            assert!(w.bytes > 0);
            assert!(w.build_time > Duration::ZERO);
        }
        let s = engine.stats();
        assert_eq!(s.plan_builds, 4);
        assert_eq!(s.resident_plans, 4);
        assert_eq!(s.skeletons, 1);
        assert!(s.skeleton_bytes > 0);
        // warming again touches every shard without rebuilding
        let again = engine.warm(id, Accuracy::Fixed(4)).unwrap();
        assert_eq!(again.outcome, CacheOutcome::Hit);
        assert!(again.shards.iter().all(|w| w.outcome == CacheOutcome::Hit));
        assert_eq!(engine.stats().plan_builds, 4);
    }

    #[test]
    fn sharded_query_routes_and_counts() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register_sharded("t", particles(800, 53), 4).unwrap();
        let r = engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(5), points(10)))
            .unwrap();
        assert_eq!(r.cache, CacheOutcome::Built);
        assert_eq!(r.output.len(), 10);
        assert!(r.plan_bytes > 0);
        assert_eq!(r.eval.targets, 10);
        let s = engine.stats();
        assert_eq!(s.sharded_queries, 1);
        assert!(
            s.global_shortcuts + s.skeleton_evals + s.shard_opens > 0,
            "fan-out routed nothing"
        );
        assert_eq!(s.fanout_latency.count, 1);
        // hot repeat: same values, all shard plans hit
        let r2 = engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(5), points(10)))
            .unwrap();
        assert_eq!(r2.cache, CacheOutcome::Hit);
        assert_eq!(r.output, r2.output);
    }

    #[test]
    fn sharded_k1_serves_on_the_unsharded_path() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register_sharded("t", particles(300, 59), 1).unwrap();
        let r = engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(4), points(6)))
            .unwrap();
        assert_eq!(r.output.len(), 6);
        let s = engine.stats();
        assert_eq!(s.sharded_queries, 0);
        assert_eq!(s.skeletons, 0);
    }

    #[test]
    fn query_batch_handles_sharded_groups() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let a = engine.register_sharded("a", particles(600, 61), 2).unwrap();
        let b = engine.register("b", particles(300, 67)).unwrap();
        let pts = points(8);
        let reqs = vec![
            QueryRequest::potentials(a, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::potentials(b, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::potentials(a, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::fields(a, Accuracy::Fixed(4), pts.clone()),
        ];
        let results = engine.query_batch(&reqs);
        for r in &results {
            assert!(r.is_ok(), "{r:?}");
        }
        // identical sharded requests agree, and match a solo query
        assert_eq!(
            results[0].as_ref().unwrap().output,
            results[2].as_ref().unwrap().output
        );
        let solo = engine
            .query(QueryRequest::potentials(a, Accuracy::Fixed(4), pts))
            .unwrap();
        assert_eq!(solo.output, results[0].as_ref().unwrap().output);
        let s = engine.stats();
        // batch fan-outs: (a,pot) with two requests + (a,field); solo adds one
        assert_eq!(s.sharded_queries, 3);
    }

    #[test]
    fn aggregate_outcome_prefers_the_most_expensive() {
        use CacheOutcome::{Built, Coalesced, Hit};
        assert_eq!(aggregate_outcome([]), Hit);
        assert_eq!(aggregate_outcome([Hit, Hit]), Hit);
        assert_eq!(aggregate_outcome([Hit, Coalesced]), Coalesced);
        assert_eq!(aggregate_outcome([Coalesced, Built, Hit]), Built);
        assert_eq!(aggregate_outcome([Built]), Built);
    }

    #[test]
    fn query_batch_groups_and_orders_results() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let a = engine.register("a", particles(700, 23)).unwrap();
        let b = engine.register("b", particles(600, 29)).unwrap();
        let pts = points(12);
        let reqs = vec![
            QueryRequest::potentials(a, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::potentials(b, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::potentials(a, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::fields(a, Accuracy::Fixed(4), pts.clone()),
            QueryRequest::potentials(a, Accuracy::Fixed(6), pts),
        ];
        let results = engine.query_batch(&reqs);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.is_ok());
        }
        // requests 0 and 2 are identical → identical values
        let v0 = results[0].as_ref().unwrap().output.clone();
        let v2 = results[2].as_ref().unwrap().output.clone();
        assert_eq!(v0, v2);
        let s = engine.stats();
        // groups: (a,f4,pot) ×2, (b,f4,pot), (a,f4,field), (a,f6,pot)
        assert_eq!(s.batches, 4);
        assert_eq!(s.batched_requests, 5);
        assert_eq!(s.max_batch, 2);
        assert_eq!(s.admitted, 1); // one slot for the whole call
        assert_eq!(s.plan_builds, 3); // (a,f4), (b,f4), (a,f6) — field reuses (a,f4)
    }

    #[test]
    fn query_batch_propagates_per_request_errors() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let a = engine.register("a", particles(200, 31)).unwrap();
        let results = engine.query_batch(&[
            QueryRequest::potentials(a, Accuracy::Fixed(4), points(2)),
            QueryRequest::potentials(DatasetId(99), Accuracy::Fixed(4), points(2)),
            QueryRequest::potentials(a, Accuracy::Tolerance { tol: -2.0 }, points(2)),
        ]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::UnknownDataset(DatasetId(99)))
        ));
        assert!(matches!(results[2], Err(EngineError::InvalidParams(_))));
    }

    #[test]
    fn eviction_under_tight_budget() {
        // budget fits roughly one plan: alternating accuracies must evict
        let engine = Engine::new(EngineConfig {
            cache_budget_bytes: 1 << 20,
            ..EngineConfig::default()
        })
        .unwrap();
        let id = engine.register("t", particles(3000, 37)).unwrap();
        let pts = points(4);
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(8),
                pts.clone(),
            ))
            .unwrap();
        let one_plan = engine.stats().resident_bytes;
        assert!(
            one_plan > (1 << 19),
            "instance too small to exercise eviction"
        );
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(9),
                pts.clone(),
            ))
            .unwrap();
        engine
            .query(QueryRequest::potentials(id, Accuracy::Fixed(8), pts))
            .unwrap();
        let s = engine.stats();
        assert!(s.evictions >= 1, "no eviction under a one-plan budget");
        assert!(s.resident_bytes <= s.cache_budget_bytes);
        assert_eq!(s.plan_builds, 3); // the third query rebuilt the evicted plan
    }

    #[test]
    fn f32_near_tier_is_admitted_by_profile_and_shares_the_plan() {
        use mbt_treecode::Precision;
        // α = 0.7 with p = 4: the Theorem 1 far-field bound dominates the
        // f32 near-field roundoff budget, so the resolver downgrades the
        // near field (compiled builds only; `validate` pins scalar f64)
        let engine = Engine::new(EngineConfig {
            alpha: 0.7,
            ..EngineConfig::default()
        })
        .unwrap();
        let id = engine.register("t", particles(2000, 43)).unwrap();
        let ds = engine.dataset(id).unwrap();
        let resolved = Accuracy::Fixed(4).resolve_with_profile(0.7, 32, 64, ds.len(), ds.q_max);
        #[cfg(not(feature = "validate"))]
        assert_eq!(resolved.near_precision, Precision::F32Near);

        let pts = points(16);
        let r32 = engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(4),
                pts.clone(),
            ))
            .unwrap();
        // an explicit f64 request with otherwise identical parameters …
        let r64 = engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Params(resolved.with_near_precision(Precision::F64)),
                pts,
            ))
            .unwrap();
        // … shares the cached plan (precision is an execution knob, not
        // plan identity) and agrees far inside the request's own
        // truncation budget
        assert_eq!(engine.stats().plan_builds, 1);
        assert_eq!(r64.cache, CacheOutcome::Hit);
        for (a, b) in r32
            .output
            .potentials()
            .unwrap()
            .iter()
            .zip(r64.output.potentials().unwrap())
        {
            assert!(
                (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                "f32 tier diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn deadline_already_expired_is_shed_without_eval() {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine.register("t", particles(200, 41)).unwrap();
        let mut req = QueryRequest::potentials(id, Accuracy::Fixed(4), points(2));
        req.deadline = Some(
            Instant::now()
                .checked_sub(Duration::from_millis(1))
                .unwrap(),
        );
        assert_eq!(
            engine.query(req).unwrap_err(),
            EngineError::DeadlineExceeded
        );
        assert_eq!(engine.stats().batches, 0);
    }
}
