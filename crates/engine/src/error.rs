//! Typed engine failures.
//!
//! The engine is a serving layer: bad input, cold caches, and overload are
//! ordinary events, so every one of them surfaces as a variant here —
//! never as a panic (the `cargo xtask lint` panic rules apply to this
//! whole crate).

use mbt_fmm::FmmError;
use mbt_treecode::TreecodeError;

use crate::registry::DatasetId;
use crate::tenant::TenantId;

/// Everything that can go wrong between accepting a request and returning
/// its values.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No dataset is registered under this id.
    UnknownDataset(DatasetId),
    /// A dataset with this name already exists (names are stable handles;
    /// re-registering under the same name is almost always a caller bug).
    DuplicateDataset(String),
    /// The submitted particle set was empty.
    EmptyDataset,
    /// A particle position or charge was NaN or infinite.
    NonFiniteParticle {
        /// Index of the offending particle in the submitted order.
        index: usize,
    },
    /// A sharded registration asked for an impossible shard count (zero,
    /// or more shards than particles — every shard must own at least one
    /// particle for its octree to exist).
    InvalidShardCount {
        /// The shard count the caller asked for.
        requested: usize,
        /// Particles in the submitted set.
        particles: usize,
    },
    /// The request's resolved treecode parameters failed validation.
    InvalidParams(TreecodeError),
    /// Plan construction failed below the engine.
    Build(TreecodeError),
    /// A routed FMM plan build failed below the engine (depth-cap
    /// overflows fall back to the treecode instead; this variant carries
    /// the non-recoverable failures).
    FmmBuild(FmmError),
    /// The admission queue is full: the request was shed immediately
    /// rather than queued behind work it cannot overtake.
    Overloaded {
        /// Requests currently being evaluated.
        in_flight: usize,
        /// Requests already waiting for an evaluation slot.
        queued: usize,
    },
    /// The request's deadline expired before its evaluation started.
    DeadlineExceeded,
    /// The caller leading this plan's single-flight build panicked.
    /// Coalesced waiters receive this instead of hanging on the dead
    /// flight; the next request for the key retries the build.
    BuildPanicked,
    /// The caller leading this request's coalesced evaluation sweep
    /// panicked. Requests riding that sweep receive this instead of
    /// hanging (and instead of the misleading `DeadlineExceeded` the
    /// engine used to report); retrying re-runs the evaluation.
    WorkerPanicked,
    /// The requesting tenant exhausted one of its configured budgets;
    /// the request was shed before costing any work.
    QuotaExceeded {
        /// The tenant whose budget is exhausted.
        tenant: TenantId,
        /// Which budget: `"plan_bytes"` or `"eval_ms"`.
        resource: &'static str,
    },
    /// An engine invariant was violated (an evaluation sweep returned
    /// the wrong number of outputs). Always an engine bug, never a
    /// caller error — reported instead of silently substituting empty
    /// results.
    Internal(&'static str),
    /// The engine configuration was rejected at construction.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDataset(id) => write!(f, "unknown dataset {id:?}"),
            EngineError::DuplicateDataset(name) => {
                write!(f, "dataset {name:?} is already registered")
            }
            EngineError::EmptyDataset => write!(f, "dataset has no particles"),
            EngineError::NonFiniteParticle { index } => {
                write!(f, "particle {index} has a non-finite position or charge")
            }
            EngineError::InvalidShardCount {
                requested,
                particles,
            } => write!(
                f,
                "cannot cut {particles} particles into {requested} shards \
                 (need 1 <= shards <= particles)"
            ),
            EngineError::InvalidParams(e) => write!(f, "invalid query parameters: {e}"),
            EngineError::Build(e) => write!(f, "plan construction failed: {e}"),
            EngineError::FmmBuild(e) => write!(f, "FMM plan construction failed: {e}"),
            EngineError::Overloaded { in_flight, queued } => write!(
                f,
                "engine overloaded: {in_flight} in flight, {queued} queued"
            ),
            EngineError::DeadlineExceeded => write!(f, "deadline expired before evaluation"),
            EngineError::BuildPanicked => {
                write!(
                    f,
                    "plan build panicked in the flight leader; retry the request"
                )
            }
            EngineError::WorkerPanicked => {
                write!(
                    f,
                    "evaluation sweep panicked in the batch leader; retry the request"
                )
            }
            EngineError::QuotaExceeded { tenant, resource } => {
                write!(f, "tenant {} exhausted its {resource} budget", tenant.0)
            }
            EngineError::Internal(why) => write!(f, "engine invariant violated: {why}"),
            EngineError::InvalidConfig(why) => write!(f, "invalid engine config: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<EngineError> = vec![
            EngineError::UnknownDataset(DatasetId(7)),
            EngineError::DuplicateDataset("galaxy".into()),
            EngineError::EmptyDataset,
            EngineError::NonFiniteParticle { index: 3 },
            EngineError::InvalidShardCount {
                requested: 8,
                particles: 5,
            },
            EngineError::InvalidParams(TreecodeError::InvalidAlpha(-1.0)),
            EngineError::Build(TreecodeError::DegreeTooLarge(99)),
            EngineError::FmmBuild(FmmError::Empty),
            EngineError::Overloaded {
                in_flight: 4,
                queued: 9,
            },
            EngineError::DeadlineExceeded,
            EngineError::BuildPanicked,
            EngineError::WorkerPanicked,
            EngineError::QuotaExceeded {
                tenant: TenantId(3),
                resource: "plan_bytes",
            },
            EngineError::Internal("sweep output count mismatch"),
            EngineError::InvalidConfig("alpha"),
        ];
        for e in cases {
            assert!(!format!("{e}").is_empty());
        }
    }
}
