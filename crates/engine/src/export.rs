//! Serialisation of [`EngineStats`] to Prometheus text and JSON.
//!
//! Both exporters are pure functions of a snapshot — they never touch
//! the collector — and both are built on the zero-dependency writers in
//! [`mbt_obs`]. The outputs are checked against `mbt_obs`'s validators
//! here and in `engine_bench --smoke`, keeping the hand-rolled encoders
//! honest without pulling a serialisation crate into the workspace.

use mbt_obs::{bucket_lower_ns, HistogramSnapshot, JsonWriter, PromWriter, BUCKETS};

use crate::stats::{EngineStats, LatencySummary};

fn summary_json(w: &mut JsonWriter, key: &str, s: &LatencySummary) {
    w.begin_object_field(key);
    w.field_u64("count", s.count);
    w.field_f64("mean_ms", s.mean_ms);
    w.field_f64("p50_ms", s.p50_ms);
    w.field_f64("p95_ms", s.p95_ms);
    w.field_f64("p99_ms", s.p99_ms);
    w.field_f64("max_ms", s.max_ms);
    w.end_object();
}

fn histogram_json(w: &mut JsonWriter, key: &str, h: &HistogramSnapshot) {
    w.begin_object_field(key);
    w.field_u64("count", h.count);
    w.field_u64("sum_ns", h.sum_ns);
    w.field_u64("max_ns", h.max_ns);
    // sparse: only occupied buckets, as (index, lower bound, count)
    w.begin_array_field("buckets");
    for (k, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        w.begin_object();
        w.field_u64("bucket", k as u64);
        w.field_f64("lower_ns", bucket_lower_ns(k));
        w.field_u64("count", c);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// Cumulative-bucket Prometheus histogram. Leading empty buckets are
/// skipped and emission stops once the cumulative count is complete, so
/// the text stays proportional to the occupied latency range.
fn prom_histogram(w: &mut PromWriter, name: &str, help: &str, h: &HistogramSnapshot) {
    w.help(name, help);
    w.typ(name, "histogram");
    let bucket = format!("{name}_bucket");
    let mut cum = 0u64;
    for (k, &c) in h.counts.iter().enumerate() {
        if cum >= h.count {
            break;
        }
        if cum == 0 && c == 0 {
            continue;
        }
        cum += c;
        debug_assert!(k < BUCKETS);
        let le = format!("{:e}", bucket_lower_ns(k + 1) * 1e-9);
        w.sample(&bucket, &[("le", &le)], cum as f64);
    }
    w.sample(&bucket, &[("le", "+Inf")], h.count as f64);
    w.sample(&format!("{name}_sum"), &[], h.sum_ns as f64 * 1e-9);
    w.sample(&format!("{name}_count"), &[], h.count as f64);
}

fn prom_quantiles(w: &mut PromWriter, base: &str, help: &str, s: &LatencySummary) {
    for (suffix, ms) in [("p50", s.p50_ms), ("p95", s.p95_ms), ("p99", s.p99_ms)] {
        let name = format!("{base}_{suffix}_seconds");
        w.help(&name, help);
        w.typ(&name, "gauge");
        w.sample(&name, &[], ms * 1e-3);
    }
}

fn prom_counter(w: &mut PromWriter, name: &str, help: &str, v: u64) {
    w.help(name, help);
    w.typ(name, "counter");
    w.sample(name, &[], v as f64);
}

fn prom_gauge(w: &mut PromWriter, name: &str, help: &str, v: f64) {
    w.help(name, help);
    w.typ(name, "gauge");
    w.sample(name, &[], v);
}

impl EngineStats {
    /// The snapshot as one JSON object: counters, gauges, p50/p95/p99
    /// latency digests, raw histogram buckets, and the per-plan /
    /// per-dataset breakdowns. Guaranteed to satisfy
    /// [`mbt_obs::json_is_valid`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();

        w.begin_object_field("cache");
        w.field_u64("hits", self.cache_hits);
        w.field_u64("misses", self.cache_misses);
        w.field_u64("coalesced_misses", self.coalesced_misses);
        w.field_f64("hit_rate", self.hit_rate());
        w.field_u64("plan_builds", self.plan_builds);
        w.field_f64("build_seconds", self.build_seconds);
        w.field_u64("evictions", self.evictions);
        w.field_u64("evicted_bytes", self.evicted_bytes);
        w.field_u64("resident_plans", self.resident_plans as u64);
        w.field_u64("resident_bytes", self.resident_bytes as u64);
        w.field_u64("budget_bytes", self.cache_budget_bytes as u64);
        w.end_object();

        w.begin_object_field("eval");
        w.field_u64("batches", self.batches);
        w.field_u64("batched_requests", self.batched_requests);
        w.field_f64("mean_batch", self.mean_batch());
        w.field_u64("max_batch", self.max_batch);
        w.field_u64("points", self.eval_points);
        w.field_f64("eval_seconds", self.eval_seconds);
        w.field_u64("worker_panics", self.worker_panics);
        w.end_object();

        w.begin_object_field("admission");
        w.field_u64("admitted", self.admitted);
        w.field_u64("shed_overload", self.shed_overload);
        w.field_u64("shed_deadline", self.shed_deadline);
        w.field_u64("shed_quota", self.shed_quota);
        w.field_u64("in_flight", self.in_flight as u64);
        w.field_u64("queue_depth", self.queue_depth as u64);
        w.field_u64("queue_peak", self.queue_peak);
        w.end_object();

        w.begin_object_field("sharding");
        w.field_u64("queries", self.sharded_queries);
        w.field_u64("global_shortcuts", self.global_shortcuts);
        w.field_u64("skeleton_evals", self.skeleton_evals);
        w.field_u64("shard_opens", self.shard_opens);
        w.field_u64("skeletons", self.skeletons as u64);
        w.field_u64("skeleton_bytes", self.skeleton_bytes as u64);
        w.end_object();

        w.begin_object_field("routing");
        w.field_u64("direct", self.routed_direct);
        w.field_u64("treecode", self.routed_treecode);
        w.field_u64("fmm", self.routed_fmm);
        w.end_object();

        w.field_u64("datasets", self.datasets as u64);
        w.field_u64("slow_queries", self.slow_queries);
        w.field_u64("spans_dropped", self.spans_dropped);
        w.field_u64("span_read_retries", self.span_read_retries);

        w.begin_object_field("latency");
        summary_json(&mut w, "build", &self.build_latency);
        summary_json(&mut w, "eval", &self.eval_latency);
        summary_json(&mut w, "query", &self.query_latency);
        summary_json(&mut w, "admission_wait", &self.admission_wait);
        summary_json(&mut w, "fanout", &self.fanout_latency);
        w.end_object();

        w.begin_object_field("histograms");
        histogram_json(&mut w, "build", &self.build_histogram);
        histogram_json(&mut w, "eval", &self.eval_histogram);
        histogram_json(&mut w, "query", &self.query_histogram);
        histogram_json(&mut w, "admission_wait", &self.wait_histogram);
        histogram_json(&mut w, "fanout", &self.fanout_histogram);
        w.end_object();

        w.begin_array_field("per_plan");
        for p in &self.per_plan {
            w.begin_object();
            // hex string: JSON numbers lose u64 precision past 2^53
            w.field_str("plan", &format!("{:016x}", p.plan));
            w.field_u64("dataset", p.dataset);
            w.field_u64("builds", p.builds);
            w.field_f64("build_seconds", p.build_seconds);
            w.field_u64("batches", p.batches);
            w.field_u64("requests", p.requests);
            w.field_u64("points", p.points);
            summary_json(&mut w, "eval", &p.eval);
            w.end_object();
        }
        w.end_array();

        w.begin_array_field("per_dataset");
        for d in &self.per_dataset {
            w.begin_object();
            w.field_u64("dataset", d.dataset);
            w.field_u64("plans", d.plans as u64);
            w.field_u64("builds", d.builds);
            w.field_u64("batches", d.batches);
            w.field_u64("requests", d.requests);
            w.field_u64("points", d.points);
            summary_json(&mut w, "eval", &d.eval);
            w.end_object();
        }
        w.end_array();

        w.begin_array_field("tenants");
        for t in &self.per_tenant {
            w.begin_object();
            w.field_u64("tenant", u64::from(t.tenant));
            w.field_u64("weight", u64::from(t.weight));
            w.field_u64("requests", t.requests);
            w.field_u64("admitted", t.admitted);
            w.field_u64("shed", t.shed);
            w.field_u64("charged_plan_bytes", t.charged_plan_bytes);
            w.field_f64("charged_eval_ms", t.charged_eval_ms);
            if let Some(q) = t.plan_bytes_quota {
                w.field_u64("plan_bytes_quota", q);
            }
            if let Some(q) = t.eval_ms_quota {
                w.field_u64("eval_ms_quota", q);
            }
            w.end_object();
        }
        w.end_array();

        w.end_object();
        w.finish()
    }

    /// The snapshot in the Prometheus text exposition format: `mbt_`-
    /// prefixed counters and gauges, cumulative-bucket histograms for
    /// the four latency distributions, quantile gauges, and labelled
    /// per-dataset / per-plan series. Guaranteed to satisfy
    /// [`mbt_obs::prometheus_is_valid`].
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut w = PromWriter::new();

        prom_counter(
            &mut w,
            "mbt_cache_hits_total",
            "Queries served from a resident plan",
            self.cache_hits,
        );
        prom_counter(
            &mut w,
            "mbt_cache_misses_total",
            "Queries that triggered a plan build",
            self.cache_misses,
        );
        prom_counter(
            &mut w,
            "mbt_cache_coalesced_misses_total",
            "Queries that waited on an in-flight build",
            self.coalesced_misses,
        );
        prom_counter(
            &mut w,
            "mbt_plan_builds_total",
            "Plans actually built",
            self.plan_builds,
        );
        prom_counter(
            &mut w,
            "mbt_plan_evictions_total",
            "Plans evicted for the byte budget",
            self.evictions,
        );
        prom_counter(
            &mut w,
            "mbt_evicted_bytes_total",
            "Bytes of evicted plans",
            self.evicted_bytes,
        );
        prom_gauge(
            &mut w,
            "mbt_resident_plans",
            "Plans resident in the cache",
            self.resident_plans as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_resident_bytes",
            "Bytes resident in the cache",
            self.resident_bytes as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_cache_budget_bytes",
            "Plan-cache byte budget",
            self.cache_budget_bytes as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_datasets",
            "Registered datasets",
            self.datasets as f64,
        );

        prom_counter(
            &mut w,
            "mbt_batches_total",
            "Evaluation sweeps executed",
            self.batches,
        );
        prom_counter(
            &mut w,
            "mbt_batched_requests_total",
            "Requests served by those sweeps",
            self.batched_requests,
        );
        prom_gauge(
            &mut w,
            "mbt_max_batch",
            "Largest coalesced sweep",
            self.max_batch as f64,
        );
        prom_counter(
            &mut w,
            "mbt_eval_points_total",
            "Observation points evaluated",
            self.eval_points,
        );

        prom_counter(
            &mut w,
            "mbt_admitted_total",
            "Requests admitted past the gate",
            self.admitted,
        );
        prom_counter(
            &mut w,
            "mbt_shed_overload_total",
            "Requests shed on a full queue",
            self.shed_overload,
        );
        prom_counter(
            &mut w,
            "mbt_shed_deadline_total",
            "Requests shed on an expired deadline",
            self.shed_deadline,
        );
        prom_gauge(
            &mut w,
            "mbt_in_flight",
            "Requests currently evaluating",
            self.in_flight as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_queue_depth",
            "Requests waiting for a slot",
            self.queue_depth as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_queue_peak",
            "Largest observed queue depth",
            self.queue_peak as f64,
        );
        prom_counter(
            &mut w,
            "mbt_shed_quota_total",
            "Requests shed on an exhausted tenant budget",
            self.shed_quota,
        );
        prom_counter(
            &mut w,
            "mbt_worker_panics_total",
            "Evaluation sweeps that panicked (answered WorkerPanicked)",
            self.worker_panics,
        );
        prom_counter(
            &mut w,
            "mbt_sharded_queries_total",
            "Queries served through the sharded fan-out path",
            self.sharded_queries,
        );
        prom_counter(
            &mut w,
            "mbt_global_shortcuts_total",
            "Fan-out decisions answered by the global aggregate expansion",
            self.global_shortcuts,
        );
        prom_counter(
            &mut w,
            "mbt_skeleton_evals_total",
            "Point-shard pairs answered by a skeleton summary",
            self.skeleton_evals,
        );
        prom_counter(
            &mut w,
            "mbt_shard_opens_total",
            "Point-shard pairs that opened the shard's plan",
            self.shard_opens,
        );
        prom_gauge(
            &mut w,
            "mbt_skeletons",
            "Global skeletons currently cached",
            self.skeletons as f64,
        );
        prom_gauge(
            &mut w,
            "mbt_skeleton_bytes",
            "Heap bytes held by cached skeletons",
            self.skeleton_bytes as f64,
        );
        prom_counter(
            &mut w,
            "mbt_routed_direct_total",
            "Requests routed to direct summation",
            self.routed_direct,
        );
        prom_counter(
            &mut w,
            "mbt_routed_treecode_total",
            "Requests routed to the compiled treecode backend",
            self.routed_treecode,
        );
        prom_counter(
            &mut w,
            "mbt_routed_fmm_total",
            "Requests routed to the compiled FMM backend",
            self.routed_fmm,
        );
        prom_counter(
            &mut w,
            "mbt_slow_queries_total",
            "Requests past the slow-query threshold",
            self.slow_queries,
        );
        prom_counter(
            &mut w,
            "mbt_spans_dropped_total",
            "Engine-phase spans dropped by the bounded ring",
            self.spans_dropped,
        );
        prom_counter(
            &mut w,
            "mbt_span_read_retries_total",
            "Seqlock validation retries while snapshotting the span ring",
            self.span_read_retries,
        );

        prom_histogram(
            &mut w,
            "mbt_build_latency_seconds",
            "Plan-build wall time",
            &self.build_histogram,
        );
        prom_histogram(
            &mut w,
            "mbt_eval_latency_seconds",
            "Evaluation-sweep wall time",
            &self.eval_histogram,
        );
        prom_histogram(
            &mut w,
            "mbt_query_latency_seconds",
            "End-to-end request wall time",
            &self.query_histogram,
        );
        prom_histogram(
            &mut w,
            "mbt_admission_wait_seconds",
            "Admission-queue wait",
            &self.wait_histogram,
        );
        prom_histogram(
            &mut w,
            "mbt_fanout_latency_seconds",
            "Sharded fan-out wall time",
            &self.fanout_histogram,
        );

        prom_quantiles(
            &mut w,
            "mbt_build_latency",
            "Plan-build latency quantile estimate",
            &self.build_latency,
        );
        prom_quantiles(
            &mut w,
            "mbt_eval_latency",
            "Evaluation-sweep latency quantile estimate",
            &self.eval_latency,
        );
        prom_quantiles(
            &mut w,
            "mbt_query_latency",
            "End-to-end request latency quantile estimate",
            &self.query_latency,
        );
        prom_quantiles(
            &mut w,
            "mbt_fanout_latency",
            "Sharded fan-out latency quantile estimate",
            &self.fanout_latency,
        );

        let names = [
            (
                "mbt_dataset_plans",
                "gauge",
                "Distinct plans serving the dataset",
            ),
            (
                "mbt_dataset_builds_total",
                "counter",
                "Plan builds for the dataset",
            ),
            (
                "mbt_dataset_requests_total",
                "counter",
                "Requests served for the dataset",
            ),
            (
                "mbt_dataset_points_total",
                "counter",
                "Points evaluated for the dataset",
            ),
            (
                "mbt_dataset_eval_p99_seconds",
                "gauge",
                "Per-dataset sweep p99 estimate",
            ),
        ];
        for (name, kind, help) in names {
            w.help(name, help);
            w.typ(name, kind);
        }
        for d in &self.per_dataset {
            let ds = d.dataset.to_string();
            let labels: &[(&str, &str)] = &[("dataset", &ds)];
            w.sample("mbt_dataset_plans", labels, d.plans as f64);
            w.sample("mbt_dataset_builds_total", labels, d.builds as f64);
            w.sample("mbt_dataset_requests_total", labels, d.requests as f64);
            w.sample("mbt_dataset_points_total", labels, d.points as f64);
            w.sample("mbt_dataset_eval_p99_seconds", labels, d.eval.p99_ms * 1e-3);
        }

        let names = [
            ("mbt_plan_builds", "counter", "Times the plan was (re)built"),
            (
                "mbt_plan_build_seconds_total",
                "counter",
                "Wall time building the plan",
            ),
            (
                "mbt_plan_requests_total",
                "counter",
                "Requests served by the plan",
            ),
            (
                "mbt_plan_points_total",
                "counter",
                "Points evaluated by the plan",
            ),
            (
                "mbt_plan_eval_p99_seconds",
                "gauge",
                "Per-plan sweep p99 estimate",
            ),
        ];
        for (name, kind, help) in names {
            w.help(name, help);
            w.typ(name, kind);
        }
        for p in &self.per_plan {
            let ds = p.dataset.to_string();
            let plan = format!("{:016x}", p.plan);
            let labels: &[(&str, &str)] = &[("dataset", &ds), ("plan", &plan)];
            w.sample("mbt_plan_builds", labels, p.builds as f64);
            w.sample("mbt_plan_build_seconds_total", labels, p.build_seconds);
            w.sample("mbt_plan_requests_total", labels, p.requests as f64);
            w.sample("mbt_plan_points_total", labels, p.points as f64);
            w.sample("mbt_plan_eval_p99_seconds", labels, p.eval.p99_ms * 1e-3);
        }

        let names = [
            (
                "mbt_tenant_weight",
                "gauge",
                "The tenant's fair-share weight",
            ),
            (
                "mbt_tenant_requests_total",
                "counter",
                "Requests the tenant presented",
            ),
            (
                "mbt_tenant_admitted_total",
                "counter",
                "Requests admitted for the tenant",
            ),
            (
                "mbt_tenant_shed_total",
                "counter",
                "Requests shed for the tenant (quota, overload, or deadline)",
            ),
            (
                "mbt_tenant_plan_bytes_total",
                "counter",
                "Plan-cache bytes the tenant's builds were billed",
            ),
            (
                "mbt_tenant_eval_seconds_total",
                "counter",
                "Evaluation wall time the tenant was billed",
            ),
        ];
        for (name, kind, help) in names {
            w.help(name, help);
            w.typ(name, kind);
        }
        for t in &self.per_tenant {
            let id = t.tenant.to_string();
            let labels: &[(&str, &str)] = &[("tenant", &id)];
            w.sample("mbt_tenant_weight", labels, f64::from(t.weight));
            w.sample("mbt_tenant_requests_total", labels, t.requests as f64);
            w.sample("mbt_tenant_admitted_total", labels, t.admitted as f64);
            w.sample("mbt_tenant_shed_total", labels, t.shed as f64);
            w.sample(
                "mbt_tenant_plan_bytes_total",
                labels,
                t.charged_plan_bytes as f64,
            );
            w.sample(
                "mbt_tenant_eval_seconds_total",
                labels,
                t.charged_eval_ms * 1e-3,
            );
        }

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKey;
    use crate::registry::DatasetId;
    use crate::stats::{Gauges, StatsCollector};
    use mbt_obs::{json_is_valid, prometheus_is_valid};
    use mbt_treecode::TreecodeParams;
    use std::time::Duration;

    fn sample_stats() -> EngineStats {
        let c = StatsCollector::default();
        let k0 = PlanKey::new(DatasetId(0), &TreecodeParams::fixed(4, 0.6));
        let k1 = PlanKey::new(DatasetId(1), &TreecodeParams::adaptive(3, 0.7));
        c.record_hit();
        c.record_miss();
        c.record_build(k0, Duration::from_millis(5));
        c.record_build(k1, Duration::from_millis(2));
        c.record_batch(k0, 3, 120, Duration::from_micros(800));
        c.record_batch(k1, 1, 10, Duration::from_micros(90));
        c.record_request(DatasetId(0), 120, Duration::from_millis(1), Duration::ZERO);
        c.record_request(
            DatasetId(1),
            10,
            Duration::from_millis(400),
            Duration::from_millis(3),
        );
        c.record_admission_wait(Duration::ZERO);
        c.record_admission_wait(Duration::from_millis(3));
        c.record_route(crate::route::Backend::Treecode);
        c.record_route(crate::route::Backend::Treecode);
        c.record_route(crate::route::Backend::Fmm);
        c.record_route(crate::route::Backend::Direct);
        c.record_fanout(
            &crate::fanout::FanoutBreakdown {
                global_shortcuts: 4,
                skeleton_evals: 9,
                opens: 1,
                per_shard: Vec::new(),
            },
            Duration::from_millis(2),
        );
        c.record_shed_quota();
        c.record_worker_panic();
        let mut s = c.snapshot(Gauges {
            resident_plans: 2,
            resident_bytes: 1 << 20,
            cache_budget_bytes: 256 << 20,
            datasets: 2,
            in_flight: 0,
            queue_depth: 0,
            skeletons: 1,
            skeleton_bytes: 2048,
        });
        // the engine splices the tenant table in the same way
        s.per_tenant = vec![crate::tenant::TenantBreakdown {
            tenant: 7,
            weight: 4,
            requests: 5,
            admitted: 4,
            shed: 1,
            charged_plan_bytes: 1024,
            charged_eval_ms: 2.5,
            plan_bytes_quota: Some(1 << 20),
            eval_ms_quota: None,
        }];
        s
    }

    #[test]
    fn json_export_parses_and_carries_latency_fields() {
        let s = sample_stats();
        let json = s.to_json();
        assert!(json_is_valid(&json), "invalid JSON: {json}");
        for needle in [
            "\"p50_ms\"",
            "\"p95_ms\"",
            "\"p99_ms\"",
            "\"per_plan\"",
            "\"per_dataset\"",
            "\"query\"",
            "\"admission_wait\"",
            "\"slow_queries\":1",
            "\"span_read_retries\":0",
            "\"sharding\"",
            "\"routing\"",
            "\"treecode\":2",
            "\"fmm\":1",
            "\"global_shortcuts\":4",
            "\"skeleton_evals\":9",
            "\"shard_opens\":1",
            "\"skeleton_bytes\":2048",
            "\"fanout\"",
            "\"shed_quota\":1",
            "\"worker_panics\":1",
            "\"tenants\"",
            "\"charged_plan_bytes\":1024",
            "\"plan_bytes_quota\":1048576",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn prometheus_export_parses_and_carries_series() {
        let s = sample_stats();
        let text = s.to_prometheus();
        assert!(prometheus_is_valid(&text), "invalid exposition:\n{text}");
        for needle in [
            "mbt_cache_hits_total 1",
            "mbt_build_latency_seconds_bucket",
            "le=\"+Inf\"",
            "mbt_build_latency_seconds_count 2",
            "mbt_query_latency_p99_seconds",
            "mbt_slow_queries_total 1",
            "mbt_span_read_retries_total 0",
            "mbt_sharded_queries_total 1",
            "mbt_routed_treecode_total 2",
            "mbt_routed_fmm_total 1",
            "mbt_routed_direct_total 1",
            "mbt_global_shortcuts_total 4",
            "mbt_skeleton_evals_total 9",
            "mbt_shard_opens_total 1",
            "mbt_skeletons 1",
            "mbt_skeleton_bytes 2048",
            "mbt_fanout_latency_seconds_count 1",
            "mbt_fanout_latency_p99_seconds",
            "mbt_dataset_requests_total{dataset=\"0\"} 3",
            "mbt_plan_eval_p99_seconds{dataset=\"1\",plan=\"",
            "mbt_shed_quota_total 1",
            "mbt_worker_panics_total 1",
            "mbt_tenant_weight{tenant=\"7\"} 4",
            "mbt_tenant_admitted_total{tenant=\"7\"} 4",
            "mbt_tenant_shed_total{tenant=\"7\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_complete() {
        let s = sample_stats();
        let text = s.to_prometheus();
        // the +Inf bucket of every histogram equals its _count
        for name in [
            "mbt_build_latency_seconds",
            "mbt_eval_latency_seconds",
            "mbt_query_latency_seconds",
            "mbt_admission_wait_seconds",
            "mbt_fanout_latency_seconds",
        ] {
            let inf = format!("{name}_bucket{{le=\"+Inf\"}} ");
            let cnt = format!("{name}_count ");
            let inf_v: f64 = text
                .lines()
                .find_map(|l| l.strip_prefix(&inf))
                .unwrap()
                .parse()
                .unwrap();
            let cnt_v: f64 = text
                .lines()
                .find_map(|l| l.strip_prefix(&cnt))
                .unwrap()
                .parse()
                .unwrap();
            assert!((inf_v - cnt_v).abs() < 0.5, "{name}: {inf_v} vs {cnt_v}");
        }
    }

    #[test]
    fn empty_stats_still_export_validly() {
        let s = EngineStats::default();
        assert!(json_is_valid(&s.to_json()), "{}", s.to_json());
        assert!(
            prometheus_is_valid(&s.to_prometheus()),
            "{}",
            s.to_prometheus()
        );
    }
}
