//! The sharded fan-out/reduce evaluation path.
//!
//! A query against a sharded dataset is answered in three tiers, cheapest
//! first, per target point:
//!
//! 1. **Global shortcut** — if the skeleton's synthetic global root is
//!    MAC-admissible (and, under tolerance-driven degrees, its stored
//!    degree provably meets the budget), one expansion evaluation answers
//!    the whole dataset.
//! 2. **Per-shard skeleton far field** — otherwise each shard whose root
//!    cell passes the α-criterion is answered from its skeleton
//!    expansion, without touching the shard's plan.
//! 3. **Shard open** — shards the MAC refuses (the owning shard and its
//!    near neighbours, by Hilbert locality) are opened: their points are
//!    gathered and evaluated through the shard plan's full treecode in
//!    one batched sweep per shard.
//!
//! Reduction is deterministic: every point accumulates its far-shard
//! contributions in ascending shard order during the routing pass, then
//! its opened-shard contributions in ascending shard order during the
//! sweep pass — so repeated queries see bit-identical sums.
//!
//! Allocation discipline (enforced by `cargo xtask lint`): one packed
//! point arena, one accumulator arena, and one per-shard open list per
//! fan-out; the per-shard sweeps reuse [`evaluate_batch_with`]'s own
//! arena discipline. Never an allocation per point or per interaction.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mbt_geometry::Vec3;
use mbt_multipole::Workspace;
use mbt_shard::Skeleton;
use mbt_treecode::EvalStats;

use crate::batch::{evaluate_batch_with, QueryKind, QueryOutput};
use crate::plan::{EvalConfig, Plan};

/// One opened shard's near sweep inside a fan-out: which shard, how many
/// points had to open it, and how long the sweep took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSweep {
    /// The opened shard's index.
    pub shard: usize,
    /// Points that the skeleton could not answer for this shard.
    pub points: usize,
    /// Wall time of the shard's batched sweep.
    pub elapsed: Duration,
}

/// Counters of one fan-out/reduce execution, for the stats layer and for
/// tests pinning the routing behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutBreakdown {
    /// Points answered entirely by the global aggregate expansion.
    pub global_shortcuts: u64,
    /// Per-shard skeleton (far-field) expansion evaluations.
    pub skeleton_evals: u64,
    /// `(point, shard)` pairs that had to open the shard's full plan.
    pub opens: u64,
    /// The opened shards' sweeps, in ascending shard order.
    pub per_shard: Vec<ShardSweep>,
}

impl FanoutBreakdown {
    /// Shards whose plan at least one point had to open.
    #[must_use]
    pub fn shards_opened(&self) -> usize {
        self.per_shard.len()
    }
}

/// Evaluates one batch of requests against a sharded dataset: `plans` are
/// the per-shard plans in shard order, `skeleton` their global summary.
/// Returns per-request outputs in request order, the merged sweep
/// counters (with `targets` normalised to the distinct point total), and
/// the routing breakdown.
#[must_use]
pub fn evaluate_sharded(
    plans: &[Arc<Plan>],
    skeleton: &Skeleton,
    kind: QueryKind,
    requests: &[&[Vec3]],
    cfg: EvalConfig,
) -> (Vec<QueryOutput>, EvalStats, FanoutBreakdown) {
    let total: usize = requests.iter().map(|r| r.len()).sum();
    let k = plans.len();
    // lint: allow(alloc, one packed point arena per fan-out)
    let mut points: Vec<Vec3> = Vec::with_capacity(total);
    for r in requests {
        points.extend_from_slice(r);
    }

    let mut ws = Workspace::with_capacity(skeleton.max_degree());
    let mut stats = EvalStats::for_targets(total as u64);
    let mut fan = FanoutBreakdown::default();
    // lint: allow(alloc, one accumulator arena per fan-out)
    let mut phi = vec![0.0f64; total];
    // lint: allow(alloc, one gradient arena per fan-out; unused slots for potential-only queries cost nothing per point)
    let mut grad = vec![Vec3::ZERO; if kind == QueryKind::Field { total } else { 0 }];
    // lint: allow(alloc, k per-shard open lists per fan-out, not per point)
    let mut open: Vec<Vec<usize>> = Vec::with_capacity(k);
    for _ in 0..k {
        open.push(Vec::with_capacity(0));
    }

    // routing pass: global shortcut, else per-shard far field, else open
    for (i, &x) in points.iter().enumerate() {
        match kind {
            QueryKind::Potential => {
                if let Some(p) = skeleton.try_global_potential(x, &mut ws, &mut stats) {
                    phi[i] = p;
                    fan.global_shortcuts += 1;
                    continue;
                }
                for (s, list) in open.iter_mut().enumerate() {
                    if let Some(p) = skeleton.try_far_potential(s, x, &mut ws, &mut stats) {
                        phi[i] += p;
                        fan.skeleton_evals += 1;
                    } else {
                        list.push(i);
                        fan.opens += 1;
                    }
                }
            }
            QueryKind::Field => {
                if let Some((p, g)) = skeleton.try_global_field(x, &mut ws, &mut stats) {
                    phi[i] = p;
                    grad[i] = g;
                    fan.global_shortcuts += 1;
                    continue;
                }
                for (s, list) in open.iter_mut().enumerate() {
                    if let Some((p, g)) = skeleton.try_far_field(s, x, &mut ws, &mut stats) {
                        phi[i] += p;
                        grad[i] += g;
                        fan.skeleton_evals += 1;
                    } else {
                        list.push(i);
                        fan.opens += 1;
                    }
                }
            }
        }
    }

    // sweep pass: one batched evaluation per opened shard, in shard order
    // lint: allow(alloc, one gather buffer reused across opened shards)
    let mut gathered: Vec<Vec3> = Vec::with_capacity(0);
    for (s, list) in open.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        gathered.truncate(0);
        gathered.reserve(list.len());
        for &i in list {
            gathered.push(points[i]);
        }
        let t0 = Instant::now();
        let (outs, sweep) = evaluate_batch_with(plans[s].treecode(), kind, &[&gathered], cfg);
        let elapsed = t0.elapsed();
        stats.merge(&sweep);
        match outs.into_iter().next() {
            Some(QueryOutput::Potentials(vals)) => {
                for (&i, v) in list.iter().zip(vals) {
                    phi[i] += v;
                }
            }
            Some(QueryOutput::Fields(vals)) => {
                for (&i, (p, g)) in list.iter().zip(vals) {
                    phi[i] += p;
                    grad[i] += g;
                }
            }
            None => {}
        }
        fan.per_shard.push(ShardSweep {
            shard: s,
            points: list.len(),
            elapsed,
        });
    }
    // merge() sums `targets`, but every sweep saw a subset of the same
    // point arena — normalise to the distinct point count
    stats.targets = total as u64;

    // split the accumulators back per request, in request order
    // lint: allow(alloc, O(batch) split of the output arena)
    let mut outputs: Vec<QueryOutput> = Vec::with_capacity(requests.len());
    let mut offset = 0;
    for r in requests {
        match kind {
            QueryKind::Potential => {
                let vals = phi[offset..offset + r.len()].to_vec(); // lint: allow(alloc, per-request result buffer handed to its caller)
                outputs.push(QueryOutput::Potentials(vals));
            }
            QueryKind::Field => {
                // lint: allow(alloc, per-request result buffer handed to its caller)
                let mut vals: Vec<(f64, Vec3)> = Vec::with_capacity(r.len());
                for i in offset..offset + r.len() {
                    vals.push((phi[i], grad[i]));
                }
                outputs.push(QueryOutput::Fields(vals));
            }
        }
        offset += r.len();
    }
    (outputs, stats, fan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_geometry::{Aabb, Particle};
    use mbt_shard::HilbertPartition;
    use mbt_treecode::Treecode;
    use mbt_treecode::TreecodeParams;

    use crate::plan::PlanKey;
    use crate::registry::DatasetId;

    fn sharded_setup(n: usize, k: usize, params: TreecodeParams) -> (Vec<Arc<Plan>>, Skeleton) {
        let ps = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 71);
        let positions: Vec<Vec3> = ps.iter().map(|p| p.position).collect();
        let bounds = Aabb::cubical_hull(&positions, 1e-9);
        let partition = HilbertPartition::new(&ps, &bounds, k).unwrap();
        let plans: Vec<Arc<Plan>> = partition
            .split(&ps)
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                let key = PlanKey::sharded(DatasetId(0), &params, s, k);
                Arc::new(Plan::build(key, &part, params).unwrap())
            })
            .collect();
        let refs: Vec<&Treecode> = plans.iter().map(|p| p.treecode()).collect();
        let skeleton = Skeleton::from_treecodes(&refs);
        (plans, skeleton)
    }

    fn direct_potential(plans: &[Arc<Plan>], x: Vec3) -> f64 {
        plans
            .iter()
            .flat_map(|p| p.treecode().particles().iter())
            .map(|p: &Particle| p.charge / x.distance(p.position))
            .sum()
    }

    #[test]
    fn fanout_matches_direct_sum_within_tolerance() {
        let params = TreecodeParams::fixed(8, 0.6);
        let (plans, sk) = sharded_setup(1200, 4, params);
        let near: Vec<Vec3> = (0..10)
            .map(|i| Vec3::new(0.9 - 0.05 * f64::from(i), 0.2, -0.4))
            .collect();
        let far: Vec<Vec3> = (0..5)
            .map(|i| Vec3::new(25.0 + f64::from(i), -20.0, 18.0))
            .collect();
        let cfg = EvalConfig::of(&params);
        let (out, stats, fan) =
            evaluate_sharded(&plans, &sk, QueryKind::Potential, &[&near, &far], cfg);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.targets, 15);
        // far targets take the global shortcut; near ones open shards
        assert!(fan.global_shortcuts >= 5);
        assert!(fan.opens > 0);
        assert!(fan.shards_opened() >= 1);
        for (pts, got) in [(&near, &out[0]), (&far, &out[1])] {
            for (x, phi) in pts.iter().zip(got.potentials().unwrap()) {
                let exact = direct_potential(&plans, *x);
                assert!(
                    (phi - exact).abs() <= 1e-4 * exact.abs().max(1.0),
                    "fan-out diverged at {x:?}: {phi} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn fanout_field_gradients_are_consistent_with_potentials() {
        let params = TreecodeParams::fixed(7, 0.6);
        let (plans, sk) = sharded_setup(900, 3, params);
        let pts: Vec<Vec3> = (0..8)
            .map(|i| Vec3::new(1.5 + 0.3 * f64::from(i), 0.7, -0.2))
            .collect();
        let cfg = EvalConfig::of(&params);
        let (pout, _, _) = evaluate_sharded(&plans, &sk, QueryKind::Potential, &[&pts], cfg);
        let (fout, _, _) = evaluate_sharded(&plans, &sk, QueryKind::Field, &[&pts], cfg);
        let fields = fout[0].fields().unwrap();
        for (i, phi) in pout[0].potentials().unwrap().iter().enumerate() {
            assert!((fields[i].0 - phi).abs() <= 1e-12 * phi.abs().max(1.0));
            assert!(fields[i].1.is_finite());
        }
    }

    #[test]
    fn fanout_is_deterministic() {
        let params = TreecodeParams::tolerance(1e-6, 0.7);
        let (plans, sk) = sharded_setup(800, 4, params);
        let pts: Vec<Vec3> = (0..20)
            .map(|i| Vec3::new(0.1 * f64::from(i) - 1.0, 0.3, 0.9))
            .collect();
        let cfg = EvalConfig::of(&params);
        let (a, sa, fa) = evaluate_sharded(&plans, &sk, QueryKind::Potential, &[&pts], cfg);
        let (b, sb, fb) = evaluate_sharded(&plans, &sk, QueryKind::Potential, &[&pts], cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // everything but the sweeps' wall time must be bit-equal
        assert_eq!(fa.global_shortcuts, fb.global_shortcuts);
        assert_eq!(fa.skeleton_evals, fb.skeleton_evals);
        assert_eq!(fa.opens, fb.opens);
        assert_eq!(fa.per_shard.len(), fb.per_shard.len());
        for (x, y) in fa.per_shard.iter().zip(&fb.per_shard) {
            assert_eq!((x.shard, x.points), (y.shard, y.points));
        }
    }

    #[test]
    fn empty_requests_are_fine() {
        let params = TreecodeParams::fixed(4, 0.6);
        let (plans, sk) = sharded_setup(200, 2, params);
        let cfg = EvalConfig::of(&params);
        let empty: Vec<Vec3> = Vec::new();
        let (out, stats, fan) = evaluate_sharded(&plans, &sk, QueryKind::Potential, &[&empty], cfg);
        assert!(out[0].is_empty());
        assert_eq!(stats.targets, 0);
        assert_eq!(fan, FanoutBreakdown::default());
        let (none, _, _) = evaluate_sharded(&plans, &sk, QueryKind::Field, &[], cfg);
        assert!(none.is_empty());
    }
}
