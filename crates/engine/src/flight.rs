//! In-flight work sharing: the engine's two concurrency cores.
//!
//! [`SingleFlight`] guarantees that N concurrent misses on one key run
//! **one** build while the other N−1 park on a ticket and share the
//! result — the heart of [`PlanCache`](crate::PlanCache). [`Combiner`]
//! is leader/follower batching: the first arrival for a group drains
//! everything queued behind it and answers every follower — the heart of
//! [`Batcher`](crate::Batcher).
//!
//! Both are deliberately *policy-free*: no stats, no clocks, no domain
//! types. Callers inject those through closures (`probe` / `classify` /
//! `publish`, `exec`), which keeps these cores small enough for the
//! `mbt-check` model suite to explore their interleavings exhaustively
//! (`crates/check/tests/models.rs`) while production wires in the real
//! LRU, stats counters, and evaluation sweeps.
//!
//! Panic safety is part of the contract: a builder that unwinds must not
//! strand its followers. [`SingleFlight::run`] installs a drop guard
//! around the build so an unwind removes the ticket and fills the slot
//! with a caller-supplied substitute value before the panic propagates —
//! followers always wake with *something* typed, never hang.
//! [`Combiner::submit`] makes the same promise for batch execution: a
//! leader whose `exec` sweep unwinds answers its drained batch *and*
//! anything queued behind it with the substitute, retires the group, and
//! re-throws to its own caller alone.

use std::collections::HashMap;
use std::hash::Hash;

use mbt_check::sync::{Arc, Condvar, Mutex, PoisonError};

/// Result slot a flight's followers park on.
#[derive(Debug)]
struct Ticket<V> {
    slot: Mutex<Option<V>>,
    done: Condvar,
}

impl<V> Ticket<V> {
    fn new() -> Ticket<V> {
        Ticket {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Publishes `value` and wakes every parked follower.
    fn fill(&self, value: V) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(value);
        self.done.notify_all();
    }
}

/// How a [`SingleFlight::run`] call was satisfied.
#[derive(Debug)]
pub enum Flight<T, V> {
    /// `probe` answered directly — no flight was needed.
    Hit(T),
    /// This caller led the build and produced the value.
    Led(V),
    /// Another caller was already building; this one waited and shares
    /// its result.
    Joined(V),
}

/// Everything a flight key guards, under one lock: the caller's own
/// state `S` (e.g. an LRU map) plus the in-flight ticket table. Probing
/// and the lead/join decision are atomic with respect to each other.
#[derive(Debug)]
struct FlightState<S, K, V> {
    inner: S,
    tickets: HashMap<K, Arc<Ticket<V>>>,
}

/// Keyed single-flight execution around caller state `S`.
///
/// For any key, at most one caller runs the build at a time; concurrent
/// callers for the same key block and receive a clone of the same value.
/// Values are only retained in `S` if the caller's `publish` hook stores
/// them — the ticket itself is dropped when the flight lands, so a
/// value `publish` declines to keep is rebuilt by the next flight.
#[derive(Debug)]
pub struct SingleFlight<S, K, V> {
    state: Mutex<FlightState<S, K, V>>,
}

/// Removes the ticket and substitutes a value if the builder unwinds,
/// so followers are never stranded on a flight whose leader died.
struct AbortGuard<'a, S, K: Eq + Hash, V, F: FnOnce() -> V> {
    flight: &'a SingleFlight<S, K, V>,
    /// Taken by [`AbortGuard::defuse`] on the success path.
    key: Option<K>,
    ticket: &'a Ticket<V>,
    substitute: Option<F>,
}

impl<S, K: Eq + Hash, V, F: FnOnce() -> V> AbortGuard<'_, S, K, V, F> {
    fn defuse(mut self) {
        self.key = None;
    }
}

impl<S, K: Eq + Hash, V, F: FnOnce() -> V> Drop for AbortGuard<'_, S, K, V, F> {
    fn drop(&mut self) {
        let Some(key) = self.key.take() else { return };
        // The builder is unwinding. Retire the ticket first (the next
        // caller for this key starts a fresh flight), then answer every
        // parked follower with the substitute value.
        {
            let mut st = self.flight.lock_state();
            st.tickets.remove(&key);
        }
        if let Some(substitute) = self.substitute.take() {
            self.ticket.fill(substitute());
        }
    }
}

impl<S, K: Eq + Hash, V> SingleFlight<S, K, V> {
    /// Wraps `inner` with single-flight keyed execution.
    pub fn new(inner: S) -> SingleFlight<S, K, V> {
        SingleFlight {
            state: Mutex::new(FlightState {
                inner,
                tickets: HashMap::new(),
            }),
        }
    }

    fn lock_state(&self) -> mbt_check::sync::MutexGuard<'_, FlightState<S, K, V>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads the caller state under the flight lock.
    pub fn with_state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.lock_state().inner)
    }
}

impl<S, K: Eq + Hash + Clone, V: Clone> SingleFlight<S, K, V> {
    /// Runs one keyed flight.
    ///
    /// Under the state lock: `probe` may answer directly
    /// ([`Flight::Hit`]); otherwise `classify(leads)` observes — still
    /// under the lock — whether this caller leads the build (`true`) or
    /// joins an in-flight one (`false`).
    ///
    /// The leader then runs `build` **outside** the lock, re-acquires it
    /// to `publish` the value into `S` and retire the ticket, and wakes
    /// the followers. If `build` (or `publish`) unwinds, followers
    /// receive `substitute()` instead and the panic propagates to the
    /// leader's caller only.
    pub fn run<T>(
        &self,
        key: K,
        probe: impl FnOnce(&mut S) -> Option<T>,
        classify: impl FnOnce(bool),
        build: impl FnOnce() -> V,
        substitute: impl FnOnce() -> V,
        publish: impl FnOnce(&mut S, &V),
    ) -> Flight<T, V> {
        let ticket = {
            let mut st = self.lock_state();
            if let Some(hit) = probe(&mut st.inner) {
                return Flight::Hit(hit);
            }
            if let Some(t) = st.tickets.get(&key) {
                classify(false);
                let t = Arc::clone(t);
                drop(st);
                // follower: park on the ticket
                let mut slot = t.slot.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(value) = slot.as_ref() {
                        return Flight::Joined(value.clone());
                    }
                    slot = t.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
                }
            }
            classify(true);
            let t = Arc::new(Ticket::new());
            st.tickets.insert(key.clone(), Arc::clone(&t));
            t
        };

        // leader: build outside every lock, guarded against unwinds
        let guard = AbortGuard {
            flight: self,
            key: Some(key),
            ticket: &ticket,
            substitute: Some(substitute),
        };
        let value = build();
        {
            let mut st = self.lock_state();
            publish(&mut st.inner, &value);
            if let Some(key) = guard.key.as_ref() {
                st.tickets.remove(key);
            }
        }
        guard.defuse();
        // wake the followers (outside the state lock; they never hold it)
        ticket.fill(value.clone());
        Flight::Led(value)
    }
}

/// One batching group: whether a leader is draining it, plus the queue.
#[derive(Debug)]
struct Group<P, R> {
    leader: bool,
    pending: Vec<(P, Arc<Ticket<R>>)>,
}

impl<P, R> Default for Group<P, R> {
    fn default() -> Group<P, R> {
        Group {
            leader: false,
            pending: Vec::new(),
        }
    }
}

/// Keyed leader/follower batching.
///
/// The first caller into an idle group becomes its **leader**: it drains
/// whatever has queued, executes the whole batch at once, and answers
/// every participant. While it executes, new arrivals keep queueing —
/// the leader loops until the group runs dry, then retires it, and the
/// next arrival leads a fresh group (leader hand-off).
#[derive(Debug)]
pub struct Combiner<K, P, R> {
    groups: Mutex<HashMap<K, Group<P, R>>>,
}

impl<K, P, R> Default for Combiner<K, P, R> {
    fn default() -> Combiner<K, P, R> {
        Combiner {
            groups: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, P, R> Combiner<K, P, R> {
    /// An empty combiner.
    #[must_use]
    pub fn new() -> Combiner<K, P, R> {
        Combiner::default()
    }

    /// Runs one payload through the combiner, blocking until its result
    /// is computed — by this caller's own drain if it leads, by another
    /// caller's otherwise.
    ///
    /// `exec` maps a drained batch to its results, index-aligned (it
    /// must return exactly one result per payload). `before_first_drain`
    /// runs once if — and only if — this caller became the leader,
    /// before its first drain: the hook for an optional coalescing wait.
    ///
    /// `substitute` is the panic answer: if the leader's `exec` unwinds,
    /// every participant of the drained batch — and anything that queued
    /// behind it — receives `substitute()` instead of hanging, the group
    /// retires, and the panic propagates to the leading caller only. It
    /// also backfills any ticket `exec` under-delivered for (a
    /// `debug_assert` catches that contract break in dev builds).
    pub fn submit(
        &self,
        key: K,
        payload: P,
        before_first_drain: impl FnOnce(),
        exec: impl Fn(Vec<P>) -> Vec<R>,
        substitute: impl Fn() -> R,
    ) -> R {
        let ticket = Arc::new(Ticket::new());
        let drain_key = key.clone();
        let is_leader = {
            let mut groups = self.groups.lock().unwrap_or_else(PoisonError::into_inner);
            let group = groups.entry(key).or_default();
            group.pending.push((payload, Arc::clone(&ticket)));
            if group.leader {
                false
            } else {
                group.leader = true;
                true
            }
        };
        if is_leader {
            before_first_drain();
            self.drain(&drain_key, &exec, &substitute);
        }
        // park until some drain fills our ticket (possibly our own)
        let mut slot = ticket.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = ticket
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Leader loop: drain and execute batches until the group runs dry,
    /// then retire it so the next arrival leads afresh.
    fn drain(&self, key: &K, exec: &impl Fn(Vec<P>) -> Vec<R>, substitute: &impl Fn() -> R) {
        loop {
            let batch: Vec<(P, Arc<Ticket<R>>)> = {
                let mut groups = self.groups.lock().unwrap_or_else(PoisonError::into_inner);
                let Some(group) = groups.get_mut(key) else {
                    return; // unreachable: the leader owns the group until it removes it
                };
                if group.pending.is_empty() {
                    groups.remove(key);
                    return;
                }
                std::mem::take(&mut group.pending)
            };
            let (payloads, tickets): (Vec<P>, Vec<Arc<Ticket<R>>>) = batch.into_iter().unzip();
            let results = {
                let guard = DrainGuard {
                    combiner: self,
                    key,
                    batch: &tickets,
                    substitute,
                };
                let results = exec(payloads);
                debug_assert_eq!(
                    results.len(),
                    tickets.len(),
                    "exec must answer every payload"
                );
                guard.defuse();
                results
            };
            let mut results = results.into_iter();
            for ticket in &tickets {
                // an under-delivering exec (a contract break the
                // debug_assert above catches in dev builds) must not
                // strand a follower: backfill with the substitute
                match results.next() {
                    Some(result) => ticket.fill(result),
                    None => ticket.fill(substitute()),
                }
            }
        }
    }
}

/// Answers the drained batch — and everything queued behind it — with the
/// substitute if `exec` unwinds, so no follower is stranded on a group
/// whose leader died mid-sweep.
struct DrainGuard<'a, K: Eq + Hash + Clone, P, R, F: Fn() -> R> {
    combiner: &'a Combiner<K, P, R>,
    key: &'a K,
    /// Tickets of the batch `exec` is running over.
    batch: &'a [Arc<Ticket<R>>],
    substitute: &'a F,
}

impl<K: Eq + Hash + Clone, P, R, F: Fn() -> R> DrainGuard<'_, K, P, R, F> {
    fn defuse(self) {
        std::mem::forget(self);
    }
}

impl<K: Eq + Hash + Clone, P, R, F: Fn() -> R> Drop for DrainGuard<'_, K, P, R, F> {
    fn drop(&mut self) {
        // The leader's exec is unwinding. Retire the group first so the
        // next arrival leads a fresh one, collecting any followers that
        // queued behind the dying batch, then answer everyone.
        let late = {
            let mut groups = self
                .combiner
                .groups
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            groups.remove(self.key).map(|g| g.pending)
        };
        for ticket in self.batch {
            ticket.fill((self.substitute)());
        }
        for (_, ticket) in late.into_iter().flatten() {
            ticket.fill((self.substitute)());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_skips_flight_entirely() {
        let sf: SingleFlight<u32, &str, u32> = SingleFlight::new(7);
        let out = sf.run(
            "k",
            |s| Some(*s),
            |_| unreachable!("probe answered"),
            || unreachable!("probe answered"),
            || unreachable!("probe answered"),
            |_, _| unreachable!("probe answered"),
        );
        assert!(matches!(out, Flight::Hit(7)));
    }

    #[test]
    fn lone_leader_builds_and_publishes() {
        let sf: SingleFlight<Option<u32>, &str, u32> = SingleFlight::new(None);
        let out = sf.run(
            "k",
            |s| *s,
            |leads| assert!(leads),
            || 42,
            || unreachable!("build does not panic"),
            |s, v| *s = Some(*v),
        );
        assert!(matches!(out, Flight::Led(42)));
        assert_eq!(sf.with_state(|s| *s), Some(42));
        // resident now: the next run is a hit
        let again = sf.run(
            "k",
            |s| *s,
            |_| unreachable!("resident"),
            || unreachable!("resident"),
            || unreachable!("resident"),
            |_, _| unreachable!("resident"),
        );
        assert!(matches!(again, Flight::Hit(42)));
    }

    #[test]
    fn panicking_build_substitutes_and_retires_ticket() {
        let sf: SingleFlight<Option<u32>, &str, u32> = SingleFlight::new(None);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sf.run(
                "k",
                |s| *s,
                |_| {},
                || panic!("builder died"),
                || 99,
                |s, v| *s = Some(*v),
            )
        }));
        assert!(attempt.is_err());
        // nothing published, no stale ticket: the next run leads afresh
        let out = sf.run(
            "k",
            |s| *s,
            |leads| assert!(leads),
            || 1,
            || unreachable!(),
            |s, v| *s = Some(*v),
        );
        assert!(matches!(out, Flight::Led(1)));
    }

    #[test]
    fn combiner_single_caller_round_trips() {
        let c: Combiner<u8, u32, u32> = Combiner::new();
        let mut led = false;
        let out = c.submit(
            0,
            5,
            || led = true,
            |batch| batch.into_iter().map(|p| p * 2).collect(),
            || unreachable!("exec does not panic"),
        );
        assert_eq!(out, 10);
        assert!(led);
    }

    #[test]
    fn panicking_exec_answers_followers_and_retires_group() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let c = Arc::new(Combiner::<u8, u32, u32>::new());
        // set inside the main caller's exec — i.e. strictly after its
        // first drain took the batch — so the spawned caller is a
        // *follower* on every schedule (were it free to race, it could
        // lead, panic, retire the group, and leave the main caller's
        // exec waiting for a follower that will never come)
        let leading = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let follower = {
                let c = Arc::clone(&c);
                let leading = Arc::clone(&leading);
                s.spawn(move || {
                    while !leading.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    c.submit(
                        0,
                        7,
                        || {},
                        |_| panic!("follower must not lead this test"),
                        || 99,
                    )
                })
            };
            // lead a batch whose exec dies only after the follower has
            // queued behind it, so the substitute demonstrably answers a
            // parked caller
            let leader = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.submit(
                    0,
                    5,
                    || {},
                    |batch| {
                        assert_eq!(batch, vec![5]);
                        leading.store(true, Ordering::Release);
                        while {
                            let groups = c.groups.lock().unwrap();
                            groups.get(&0).is_none_or(|g| g.pending.is_empty())
                        } {
                            std::thread::yield_now();
                        }
                        panic!("sweep died mid-batch")
                    },
                    || 99,
                )
            }));
            // the panic reached the leading caller alone; the queued
            // follower woke with the typed substitute instead of hanging
            assert!(leader.is_err());
            assert_eq!(follower.join().unwrap(), 99);
        });
        // the group retired: the next caller leads afresh and succeeds
        let out = c.submit(
            0,
            3,
            || {},
            |batch| batch.into_iter().map(|p| p + 1).collect(),
            || unreachable!("healthy exec"),
        );
        assert_eq!(out, 4);
    }

    #[test]
    fn under_delivering_exec_backfills_with_substitute() {
        let c: Combiner<u8, u32, u32> = Combiner::new();
        // exec breaks its contract and returns nothing; release builds
        // must still answer the caller (debug builds assert instead)
        let run = || c.submit(0, 5, || {}, |_| Vec::new(), || 77);
        if cfg!(debug_assertions) {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
            assert!(out.is_err(), "debug builds catch the contract break");
        } else {
            assert_eq!(run(), 77);
        }
    }
}
