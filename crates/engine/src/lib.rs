//! `mbt-engine` — a multi-tenant treecode query engine.
//!
//! The lower crates answer *one* question well: given particles and
//! [`TreecodeParams`](mbt_treecode::TreecodeParams), build a tree, run the
//! upward pass, evaluate targets. This crate turns that kernel into a
//! *service*: many datasets, many concurrent callers, each asking at its
//! own accuracy, with the expensive artefacts (built octree + coefficient
//! arena = a **plan**) cached and shared instead of rebuilt per call.
//!
//! # Architecture
//!
//! ```text
//!             ┌─────────────────────────────────────────────┐
//!   register ─►  DatasetRegistry   (ids, validation)        │
//!             ├─────────────────────────────────────────────┤
//!   query ────►  AdmissionGate     (bounded in-flight,      │
//!             │                     deadline shedding)      │
//!             ├─────────────────────────────────────────────┤
//!             │  PlanCache         (byte-budget LRU,        │
//!             │                     single-flight builds)   │
//!             ├─────────────────────────────────────────────┤
//!             │  Batcher           (cross-caller coalescing │
//!             │   └ evaluate_batch  into shared sweeps)     │
//!             └─────────────────────────────────────────────┘
//! ```
//!
//! - **Registry** ([`DatasetRegistry`]): charge systems are registered
//!   once, validated (non-empty, finite), and referred to by stable
//!   [`DatasetId`]s.
//! - **Plan cache** ([`PlanCache`]): a plan is keyed by
//!   `(dataset, resolved parameters)`. Residency is a strict-LRU policy
//!   against a byte budget ([`ByteLru`]), sized by the real heap footprint
//!   of tree + arena. Concurrent cold misses on one key run **one** build
//!   (single-flight); followers wait and share the `Arc<Plan>`.
//! - **Scheduler** ([`Batcher`] / [`evaluate_batch`]): requests against
//!   the same plan coalesce into single chunked sweeps that reuse the
//!   allocation-free evaluation kernels. Per-target independence makes
//!   the coalescing bit-exact.
//! - **Admission** ([`AdmissionGate`] — internal to [`Engine::query`]):
//!   bounded in-flight work over per-tenant weighted-fair queues
//!   ([`FairGate`] — virtual-time WFQ, strict no-barging hand-off), with
//!   overload, deadline, and tenant-budget shedding as typed
//!   [`EngineError`]s. The engine never panics.
//! - **Tenancy** ([`TenantId`] / [`TenantConfig`]): requests carry a
//!   tenant; registered tenants get a fair-share weight and optional
//!   budgets on plan-cache bytes and evaluation milliseconds, enforced
//!   as [`EngineError::QuotaExceeded`] sheds.
//! - **Sharded serving** ([`Engine::register_sharded`] + the fan-out in
//!   [`evaluate_sharded`]): a dataset may be Hilbert-partitioned into `k`
//!   contiguous weight-balanced key ranges. Each shard gets its own
//!   independently cached plan (cold shards build concurrently behind
//!   per-shard single-flights), while a tiny global **skeleton tree**
//!   ([`Skeleton`]) of per-shard root expansions answers the cross-shard
//!   far field under the paper's Theorem 1/2 error bounds — a shard's
//!   plan is opened only when the bound refuses the summary. `k = 1` is
//!   bit-identical to the unsharded path (it *is* the unsharded path:
//!   the shard-0 key normalises to the plain plan key).
//!
//! # Quick start
//!
//! ```
//! use mbt_engine::{Accuracy, Engine, EngineConfig, QueryRequest};
//! use mbt_geometry::distribution::{uniform_cube, ChargeModel};
//! use mbt_geometry::Vec3;
//!
//! let engine = Engine::new(EngineConfig::default())?;
//! let particles = uniform_cube(500, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 42);
//! let id = engine.register("galaxy-a", particles)?;
//!
//! // first query builds the plan; repeats at the same accuracy hit cache
//! let response = engine.query(QueryRequest::potentials(
//!     id,
//!     Accuracy::Tolerance { tol: 1e-6 },
//!     vec![Vec3::new(2.0, 0.0, 0.0)],
//! ))?;
//! assert_eq!(response.output.len(), 1);
//! println!("{}", engine.stats());
//! # Ok::<(), mbt_engine::EngineError>(())
//! ```

mod admission;
mod batch;
mod cache;
mod direct;
mod engine;
mod error;
mod export;
mod fanout;
mod plan;
mod registry;
mod route;
mod stats;
mod tenant;
mod wfq;

pub mod flight;
pub mod scheduler;

pub use admission::{AdmissionGate, Permit};
pub use batch::{
    evaluate_batch, evaluate_batch_with, evaluate_fmm_batch, evaluate_plan_batch, QueryKind,
    QueryOutput,
};
pub use cache::{ByteLru, CacheOutcome, Inserted, PlanCache};
pub use direct::evaluate_direct;
pub use engine::{Engine, EngineConfig, QueryRequest, QueryResponse, ShardWarm, WarmReport};
pub use error::EngineError;
pub use fanout::{evaluate_sharded, FanoutBreakdown, ShardSweep};
pub use flight::{Combiner, Flight, SingleFlight};
pub use plan::{Accuracy, EvalConfig, Plan, PlanArtifact, PlanKey};
pub use registry::{Dataset, DatasetId, DatasetRegistry};
pub use route::{
    fmm_admissible, fmm_params_for, route, routing_pinned, Backend, DIRECT_MAX_SOURCES,
    FMM_ALPHA_EFF, FMM_MIN_SOURCES, FMM_MIN_TARGETS,
};
pub use scheduler::Batcher;
pub use stats::{DatasetBreakdown, EngineStats, LatencySummary, PlanBreakdown, StatsCollector};
pub use tenant::{TenantBreakdown, TenantConfig, TenantId};
pub use wfq::{Admission, FairGate, VT_SCALE};

// The observability vocabulary the engine's accessors speak.
pub use mbt_obs::{HistogramSnapshot, Phase, SlowQuery, Span};

// The sharding vocabulary: partitioner, shard metadata, skeleton tree.
pub use mbt_shard::{HilbertPartition, ShardError, ShardInfo, Skeleton};
