//! Query plans: the built treecode as a cacheable artifact.
//!
//! Theorem 3's per-cluster degree selection makes the built octree plus
//! its upward-pass coefficient arena an expensive artifact that is
//! reusable across every query with the same `(dataset, params)` — the
//! shape of a database query plan. [`PlanKey`] is the hashable identity
//! of one such artifact (`TreecodeParams` holds floats, so the key stores
//! their exact bit patterns), and [`Plan`] bundles the treecode with the
//! byte and timing accounting the cache and stats layers need.

use std::time::{Duration, Instant};

use mbt_fmm::{CompiledFmm, FmmError};
use mbt_geometry::Particle;
use mbt_treecode::{
    f32_near_admissible, DegreeSelector, DegreeWeighting, EvalMode, Precision, RefWeight, Treecode,
    TreecodeParams,
};

use crate::error::EngineError;
use crate::registry::DatasetId;
use crate::route::{fmm_params_for, Backend};

/// Per-request accuracy, resolved against the engine's defaults into full
/// [`TreecodeParams`]. Requests at different accuracies map to different
/// plans over the same dataset — the p-adaptive serving scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Accuracy {
    /// Original fixed-degree Barnes–Hut at degree `p`.
    Fixed(usize),
    /// The paper's adaptive per-cluster rule with degree floor `p_min`.
    Adaptive {
        /// Degree assigned to clusters at the reference weight.
        p_min: usize,
    },
    /// Per-interaction absolute error budget.
    Tolerance {
        /// The error budget each accepted interaction must meet.
        tol: f64,
    },
    /// Full parameter control — bypasses the engine defaults entirely.
    Params(TreecodeParams),
}

impl Accuracy {
    /// Resolves to full treecode parameters using the engine's default
    /// MAC parameter and tree-shape settings.
    ///
    /// The three shorthand variants opt into the compiled (interaction-list)
    /// evaluation mode — the engine's throughput path — except under the
    /// `validate` feature, which pins the bit-exact scalar reference.
    /// [`Accuracy::Params`] passes through untouched, so callers needing a
    /// specific mode state it explicitly.
    #[must_use]
    pub fn resolve(self, alpha: f64, leaf_capacity: usize, eval_chunk: usize) -> TreecodeParams {
        #[cfg(feature = "validate")]
        let mode = EvalMode::Scalar;
        #[cfg(not(feature = "validate"))]
        let mode = EvalMode::Compiled;
        let base = match self {
            Accuracy::Fixed(p) => TreecodeParams::fixed(p, alpha),
            Accuracy::Adaptive { p_min } => TreecodeParams::adaptive(p_min, alpha),
            Accuracy::Tolerance { tol } => TreecodeParams::tolerance(tol, alpha),
            Accuracy::Params(p) => return p,
        };
        base.with_leaf_capacity(leaf_capacity)
            .with_eval_chunk(eval_chunk)
            .with_eval_mode(mode)
    }

    /// [`Accuracy::resolve`], then — knowing the dataset's size and
    /// largest charge — downgrades the near field to f32 **iff** the
    /// request's own far-field truncation bound (Theorems 1/2, via the
    /// degree policy and `alpha`) already exceeds the f32 roundoff budget
    /// of a worst-case near-field sum, so the downgrade is invisible at
    /// the request's accuracy level. [`Accuracy::Params`] passes through
    /// untouched: explicit parameters state their own precision.
    ///
    /// Scalar mode (the `validate` feature) keeps f64 — the scalar path
    /// is the bit-exact reference and ignores the knob anyway.
    #[must_use]
    pub fn resolve_with_profile(
        self,
        alpha: f64,
        leaf_capacity: usize,
        eval_chunk: usize,
        n: usize,
        q_max: f64,
    ) -> TreecodeParams {
        let base = self.resolve(alpha, leaf_capacity, eval_chunk);
        if matches!(self, Accuracy::Params(_)) || base.eval_mode != EvalMode::Compiled {
            return base;
        }
        if f32_near_admissible(&base.degree, base.alpha, n, q_max, base.leaf_capacity) {
            base.with_near_precision(Precision::F32Near)
        } else {
            base
        }
    }
}

/// Bit-exact hashable image of a [`DegreeSelector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DegreeKey {
    Fixed(usize),
    Adaptive {
        p_min: usize,
        p_max: usize,
        alpha: u64,
        weighting: u8,
    },
    Tolerance {
        tol: u64,
        p_min: usize,
        p_max: usize,
    },
}

impl DegreeKey {
    fn of(selector: DegreeSelector) -> DegreeKey {
        match selector {
            DegreeSelector::Fixed(p) => DegreeKey::Fixed(p),
            DegreeSelector::Adaptive {
                p_min,
                p_max,
                alpha,
                weighting,
            } => DegreeKey::Adaptive {
                p_min,
                p_max,
                alpha: alpha.to_bits(),
                weighting: match weighting {
                    DegreeWeighting::Charge => 0,
                    DegreeWeighting::ChargeOverDistance => 1,
                },
            },
            DegreeSelector::Tolerance { tol, p_min, p_max } => DegreeKey::Tolerance {
                tol: tol.to_bits(),
                p_min,
                p_max,
            },
        }
    }
}

/// Bit-exact hashable image of a [`RefWeight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RefWeightKey {
    MinLeaf,
    MedianLeaf,
    Explicit(u64),
}

/// Identity of one cached plan: the dataset plus the exact bit patterns
/// of every parameter that influences **tree construction** — MAC
/// parameter, degree policy, leaf capacity, reference weight, softening.
/// Two requests share a plan **iff** their keys are equal.
///
/// Deliberately absent: `eval_chunk` and `eval_mode`. Those are pure
/// execution knobs — results are bit-invariant across chunk widths and
/// modes account identical stats (DESIGN.md §10) — so keying on them
/// would duplicate an entire octree + coefficient arena per knob
/// setting. They travel separately as [`EvalConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    dataset: DatasetId,
    alpha: u64,
    degree: DegreeKey,
    leaf_capacity: usize,
    ref_weight: RefWeightKey,
    softening: u64,
    /// `(shard index, shard count)` for a shard of a Hilbert-partitioned
    /// dataset; `(0, 1)` for an unsharded plan. A one-way partition
    /// preserves the particle order exactly, so [`PlanKey::sharded`]
    /// normalises `k == 1` onto the unsharded key and the two paths share
    /// one cached (bit-identical) plan.
    shard: (u32, u32),
    /// The backend whose artifact this key names. The same `(dataset,
    /// params)` pair builds *different* artifacts per backend (octree +
    /// coefficient arena vs FMM arenas), so the backend is part of plan
    /// identity and the two tiers occupy separate cache slots.
    backend: Backend,
}

impl PlanKey {
    /// The key identifying `(dataset, build-relevant params)` for the
    /// default treecode backend.
    #[must_use]
    pub fn new(dataset: DatasetId, params: &TreecodeParams) -> PlanKey {
        PlanKey {
            dataset,
            alpha: params.alpha.to_bits(),
            degree: DegreeKey::of(params.degree),
            leaf_capacity: params.leaf_capacity,
            ref_weight: match params.ref_weight {
                RefWeight::MinLeaf => RefWeightKey::MinLeaf,
                RefWeight::MedianLeaf => RefWeightKey::MedianLeaf,
                RefWeight::Explicit(w) => RefWeightKey::Explicit(w.to_bits()),
            },
            softening: params.softening.to_bits(),
            shard: (0, 1),
            backend: Backend::Treecode,
        }
    }

    /// The key of the routed `backend`'s artifact for `(dataset,
    /// params)`. [`Backend::Direct`] keys never reach the plan cache
    /// (direct sweeps have no artifact) — they exist only as stats
    /// fingerprints.
    #[must_use]
    pub fn routed(dataset: DatasetId, params: &TreecodeParams, backend: Backend) -> PlanKey {
        let mut key = PlanKey::new(dataset, params);
        key.backend = backend;
        key
    }

    /// The key of shard `shard` in a `count`-way Hilbert partition of
    /// `dataset`. `count == 1` is normalised to the unsharded key: a
    /// single-shard partition reproduces the input particle list verbatim
    /// (the split preserves relative order), so its plan **is** the
    /// unsharded plan and must share its cache residency.
    #[must_use]
    pub fn sharded(
        dataset: DatasetId,
        params: &TreecodeParams,
        shard: usize,
        count: usize,
    ) -> PlanKey {
        let mut key = PlanKey::new(dataset, params);
        if count > 1 {
            key.shard = (shard as u32, count as u32);
        }
        key
    }

    /// The dataset this plan serves.
    #[must_use]
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// `(shard index, shard count)`; `(0, 1)` for unsharded plans.
    #[must_use]
    pub fn shard(&self) -> (usize, usize) {
        (self.shard.0 as usize, self.shard.1 as usize)
    }

    /// The backend whose artifact this key names.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

/// The per-request execution configuration a plan is evaluated under:
/// everything in `TreecodeParams` that does **not** participate in
/// [`PlanKey`] identity. Requests differing only here share one cached
/// plan; the batcher still groups by `EvalConfig` so each coalesced
/// sweep runs under a single configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalConfig {
    /// Aggregation width `w` of the sweep.
    pub chunk: usize,
    /// Execution strategy (scalar reference vs compiled lists).
    pub mode: EvalMode,
    /// Near-field arithmetic precision of compiled sweeps. Part of the
    /// execution configuration, not plan identity: the f64 and f32 tiers
    /// share one cached tree + coefficient arena (the f32 particle
    /// mirror lives inside the tree), so requests differing only in
    /// precision coalesce onto one plan but batch into separate sweeps.
    pub precision: Precision,
}

impl EvalConfig {
    /// The execution configuration carried by `params`.
    #[must_use]
    pub fn of(params: &TreecodeParams) -> EvalConfig {
        EvalConfig {
            chunk: params.eval_chunk.max(1),
            mode: params.eval_mode,
            precision: params.near_precision,
        }
    }
}

/// The built evaluation machinery a [`Plan`] caches — one variant per
/// backend that has an artifact worth caching ([`Backend::Direct`] has
/// none and bypasses the cache).
pub enum PlanArtifact {
    /// Octree + upward-pass coefficient arena (the treecode backend).
    Treecode(Treecode),
    /// Flat per-level FMM arenas with precomputed interaction lists and
    /// an already-executed downward pass.
    Fmm(CompiledFmm),
}

impl PlanArtifact {
    /// Resident heap bytes of the artifact.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            PlanArtifact::Treecode(t) => t.heap_bytes(),
            PlanArtifact::Fmm(f) => f.heap_bytes(),
        }
    }
}

/// A built backend artifact plus the accounting the cache and stats
/// layers need.
pub struct Plan {
    /// The key this plan was built under.
    pub key: PlanKey,
    /// The built evaluation machinery, ready to evaluate.
    pub artifact: PlanArtifact,
    /// Resident heap bytes — what the cache charges against its budget.
    pub bytes: usize,
    /// Wall time of the build (tree + degree selection + upward pass, or
    /// the FMM's grid construction + upward + M2L/L2L downward pass).
    pub build_time: Duration,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("key", &self.key)
            .field("bytes", &self.bytes)
            .field("build_time", &self.build_time)
            .finish_non_exhaustive()
    }
}

impl Plan {
    /// Builds the plan for the key's backend: validates the parameters,
    /// constructs the artifact, and sizes it.
    ///
    /// An FMM-keyed build whose dataset geometry exceeds the compiled
    /// dense-grid depth cap falls back to a treecode artifact under the
    /// same key — the router's choice is a performance hint, and the
    /// treecode meets the same resolved accuracy (its α is *tighter* than
    /// the FMM's effective α = 1/2 whenever the FMM was admissible).
    pub fn build(
        key: PlanKey,
        particles: &[Particle],
        params: TreecodeParams,
    ) -> Result<Plan, EngineError> {
        params.validate().map_err(EngineError::InvalidParams)?;
        // Contract: an FMM-keyed plan must be Theorem-admissible — its
        // M2L geometry is a Theorem-2 interaction at α_eff = 1/2, so the
        // requested α must be at least that for the resolved bound to
        // dominate what the request accepted.
        #[cfg(feature = "validate")]
        {
            assert!(
                key.backend() != Backend::Fmm || crate::route::fmm_admissible(params.alpha),
                "validate: FMM plan keyed at α = {} < 1/2 — its Theorem-2 bound \
                 exceeds what the request accepted",
                params.alpha
            );
        }
        let t0 = Instant::now();
        let artifact = match key.backend() {
            Backend::Fmm => match CompiledFmm::new(particles, fmm_params_for(&params)) {
                Ok(fmm) => PlanArtifact::Fmm(fmm),
                Err(FmmError::DenseGridTooDeep { .. }) => PlanArtifact::Treecode(
                    Treecode::new(particles, params).map_err(EngineError::Build)?,
                ),
                Err(e) => return Err(EngineError::FmmBuild(e)),
            },
            Backend::Treecode | Backend::Direct => PlanArtifact::Treecode(
                Treecode::new(particles, params).map_err(EngineError::Build)?,
            ),
        };
        let build_time = t0.elapsed();
        let bytes = artifact.heap_bytes();
        Ok(Plan {
            key,
            artifact,
            bytes,
            build_time,
        })
    }

    /// The treecode artifact. Panics on an FMM plan: callers on
    /// treecode-only paths (sharded fan-out, skeleton resolution) hold
    /// the router's guarantee that those paths are pinned to
    /// [`Backend::Treecode`].
    #[must_use]
    pub fn treecode(&self) -> &Treecode {
        match &self.artifact {
            PlanArtifact::Treecode(t) => t,
            PlanArtifact::Fmm(_) => {
                unreachable!("treecode() on an FMM plan: this path is pinned to Backend::Treecode")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::Vec3;

    fn ps(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Particle::new(
                    Vec3::new(t.sin(), (0.7 * t).cos(), (0.3 * t).sin()),
                    1.0 - 2.0 * ((i % 2) as f64),
                )
            })
            .collect()
    }

    #[test]
    fn accuracy_resolution_uses_defaults() {
        let p = Accuracy::Adaptive { p_min: 3 }.resolve(0.7, 16, 128);
        assert!((p.alpha - 0.7).abs() < 1e-15);
        assert_eq!(p.leaf_capacity, 16);
        assert_eq!(p.eval_chunk, 128);
        let explicit = TreecodeParams::fixed(5, 0.4);
        assert_eq!(Accuracy::Params(explicit).resolve(0.7, 16, 128), explicit);
    }

    #[test]
    fn keys_distinguish_params_and_datasets() {
        let a = TreecodeParams::fixed(4, 0.6);
        let b = TreecodeParams::fixed(5, 0.6);
        let c = TreecodeParams::adaptive(4, 0.6);
        let d = TreecodeParams::tolerance(1e-6, 0.6);
        let id0 = DatasetId(0);
        let id1 = DatasetId(1);
        let k = |id, p: &TreecodeParams| PlanKey::new(id, p);
        assert_eq!(k(id0, &a), k(id0, &a));
        assert_ne!(k(id0, &a), k(id1, &a));
        assert_ne!(k(id0, &a), k(id0, &b));
        assert_ne!(k(id0, &a), k(id0, &c));
        assert_ne!(k(id0, &c), k(id0, &d));
        let softened = a.with_softening(1e-3);
        assert_ne!(k(id0, &a), k(id0, &softened));
        assert_eq!(k(id0, &a).dataset(), id0);
    }

    #[test]
    fn sharded_keys_distinguish_shards_but_k1_is_the_unsharded_key() {
        let p = TreecodeParams::fixed(4, 0.6);
        let id = DatasetId(3);
        // k = 1 normalises onto the unsharded key (order-preserving split
        // makes the single shard bit-identical to the whole dataset)
        assert_eq!(PlanKey::sharded(id, &p, 0, 1), PlanKey::new(id, &p));
        // shards of one partition are distinct keys, and distinct from
        // the unsharded key and from other partition widths
        let s0 = PlanKey::sharded(id, &p, 0, 4);
        let s1 = PlanKey::sharded(id, &p, 1, 4);
        assert_ne!(s0, s1);
        assert_ne!(s0, PlanKey::new(id, &p));
        assert_ne!(s0, PlanKey::sharded(id, &p, 0, 2));
        assert_eq!(s1.shard(), (1, 4));
        assert_eq!(PlanKey::new(id, &p).shard(), (0, 1));
    }

    #[test]
    fn keys_ignore_eval_config() {
        // eval_chunk and eval_mode are execution knobs, not plan
        // identity: requests differing only there share one cached plan
        let a = TreecodeParams::fixed(4, 0.6);
        let id0 = DatasetId(0);
        let compiled = a.with_eval_mode(EvalMode::Compiled);
        assert_eq!(PlanKey::new(id0, &a), PlanKey::new(id0, &compiled));
        let rechunked = a.with_eval_chunk(7);
        assert_eq!(PlanKey::new(id0, &a), PlanKey::new(id0, &rechunked));
        // …while EvalConfig captures exactly that difference
        assert_ne!(EvalConfig::of(&a), EvalConfig::of(&compiled));
        assert_ne!(EvalConfig::of(&a), EvalConfig::of(&rechunked));
        assert_eq!(
            EvalConfig::of(&a),
            EvalConfig {
                chunk: a.eval_chunk,
                mode: EvalMode::Scalar,
                precision: Precision::F64,
            }
        );
        // precision is likewise an execution knob, not plan identity
        let f32near = a.with_near_precision(Precision::F32Near);
        assert_eq!(PlanKey::new(id0, &a), PlanKey::new(id0, &f32near));
        assert_ne!(EvalConfig::of(&a), EvalConfig::of(&f32near));
        // the unclamped zero chunk normalises like the sweep itself does
        let mut zero_chunk = a;
        zero_chunk.eval_chunk = 0;
        assert_eq!(EvalConfig::of(&zero_chunk).chunk, 1);
    }

    #[test]
    fn plan_build_sizes_and_times() {
        let particles = ps(500);
        let params = TreecodeParams::fixed(4, 0.6);
        let key = PlanKey::new(DatasetId(0), &params);
        let plan = Plan::build(key, &particles, params).unwrap();
        assert_eq!(plan.bytes, plan.treecode().heap_bytes());
        assert!(plan.bytes > 500 * std::mem::size_of::<Particle>());
        assert_eq!(plan.key, key);
        assert_eq!(plan.key.backend(), Backend::Treecode);
    }

    #[test]
    fn routed_keys_separate_backends() {
        let p = TreecodeParams::fixed(4, 0.6);
        let id = DatasetId(2);
        let tree = PlanKey::new(id, &p);
        assert_eq!(PlanKey::routed(id, &p, Backend::Treecode), tree);
        let fmm = PlanKey::routed(id, &p, Backend::Fmm);
        assert_ne!(fmm, tree);
        assert_eq!(fmm.backend(), Backend::Fmm);
        assert_eq!(fmm.dataset(), id);
        assert_ne!(fmm, PlanKey::routed(id, &p, Backend::Direct));
    }

    #[test]
    fn fmm_keyed_build_produces_an_fmm_artifact() {
        let particles = ps(600);
        let params = TreecodeParams::fixed(4, 0.6);
        let key = PlanKey::routed(DatasetId(0), &params, Backend::Fmm);
        let plan = Plan::build(key, &particles, params).unwrap();
        assert!(matches!(plan.artifact, PlanArtifact::Fmm(_)));
        assert_eq!(plan.bytes, plan.artifact.heap_bytes());
        assert!(plan.bytes > 0);
    }

    #[test]
    fn plan_build_propagates_errors() {
        let particles = ps(10);
        let bad = TreecodeParams::fixed(4, -1.0);
        let key = PlanKey::new(DatasetId(0), &bad);
        assert!(matches!(
            Plan::build(key, &particles, bad),
            Err(EngineError::InvalidParams(_))
        ));
    }
}
