//! Dataset registry: particle sets under stable ids.
//!
//! Tenants register a particle set once and refer to it by [`DatasetId`]
//! in every subsequent query; the engine keys its plan cache on
//! `(dataset id, params)`, so the registry is what makes plans shareable
//! across callers. Ingestion validates what the layers below would only
//! reject at build time — emptiness, non-finite positions or charges — so
//! a bad upload fails at registration, not on the first query.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use mbt_geometry::{Aabb, Particle, Vec3};
use mbt_shard::{HilbertPartition, ShardInfo};

use crate::error::EngineError;

/// Stable handle to a registered particle set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

/// An immutable registered particle set plus the summary facts the
/// planner reads without touching the particles.
#[derive(Debug)]
pub struct Dataset {
    /// The registry handle.
    pub id: DatasetId,
    /// The caller-chosen name.
    pub name: String,
    /// Cubical hull of the particle positions.
    pub bounds: Aabb,
    /// Total absolute charge `A = Σ|qᵢ|` — the quantity the paper's error
    /// bounds grow with, useful for per-tenant cost attribution.
    pub abs_charge: f64,
    /// Largest absolute charge `max|qᵢ|` — the scale factor the f32
    /// near-field admission test compares the truncation budget against.
    pub q_max: f64,
    /// Resident bytes of the particle storage (submitted order plus, for
    /// sharded datasets, the Hilbert-partitioned per-shard copies).
    pub bytes: usize,
    particles: Arc<[Particle]>,
    /// Hilbert-contiguous per-shard particle sets (empty when the dataset
    /// was registered unsharded). Each shard preserves the submitted
    /// relative order of its particles, so shard plans are deterministic
    /// functions of the submitted list.
    shard_parts: Vec<Arc<[Particle]>>,
    /// Per-shard summary facts (index, count, weight, key range),
    /// parallel to `shard_parts`.
    shard_infos: Vec<ShardInfo>,
}

impl Dataset {
    /// The registered particles.
    #[inline]
    #[must_use]
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Number of particles.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the set is empty (never true for a registered dataset).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Number of shards this dataset is served as (`1` when unsharded —
    /// one dataset is one shard of itself).
    #[inline]
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_parts.len().max(1)
    }

    /// Whether queries fan out over multiple shard plans.
    #[inline]
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        self.shard_parts.len() > 1
    }

    /// The particles of shard `s`; the whole set when unsharded (the
    /// one-shard view of an unsharded dataset is the dataset itself).
    #[inline]
    #[must_use]
    pub fn shard_particles(&self, s: usize) -> &[Particle] {
        self.shard_parts.get(s).map_or(&self.particles, |p| p)
    }

    /// Per-shard partition facts, in shard order (empty when unsharded).
    #[inline]
    #[must_use]
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shard_infos
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    by_id: HashMap<DatasetId, Arc<Dataset>>,
    by_name: HashMap<String, DatasetId>,
    next: u64,
}

/// Thread-safe dataset store. Registration is rare and takes a write
/// lock; the per-query lookup path takes a read lock and clones one `Arc`.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    inner: RwLock<RegistryInner>,
}

impl DatasetRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> DatasetRegistry {
        DatasetRegistry::default()
    }

    /// Validates and registers a particle set under `name`, returning its
    /// stable id.
    pub fn register(&self, name: &str, particles: Vec<Particle>) -> Result<DatasetId, EngineError> {
        Self::validate_particles(&particles)?;
        self.insert(name, particles, Vec::new(), Vec::new())
    }

    /// Validates, Hilbert-partitions into `shards` contiguous key ranges,
    /// and registers a particle set under `name`. Queries against the
    /// resulting id are served by `shards` independent per-shard plans
    /// plus a global skeleton tree; `shards == 1` registers an ordinary
    /// unsharded dataset (a one-way split is the identity).
    pub fn register_sharded(
        &self,
        name: &str,
        particles: Vec<Particle>,
        shards: usize,
    ) -> Result<DatasetId, EngineError> {
        Self::validate_particles(&particles)?;
        if shards == 0 || shards > particles.len() {
            return Err(EngineError::InvalidShardCount {
                requested: shards,
                particles: particles.len(),
            });
        }
        if shards == 1 {
            return self.insert(name, particles, Vec::new(), Vec::new());
        }
        let positions: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
        let bounds = Aabb::cubical_hull(&positions, 1e-9);
        let partition =
            HilbertPartition::new(&particles, &bounds, shards).map_err(|e| match e {
                mbt_shard::ShardError::InvalidCount {
                    requested,
                    particles,
                } => EngineError::InvalidShardCount {
                    requested,
                    particles,
                },
            })?;
        let parts: Vec<Arc<[Particle]>> = partition
            .split(&particles)
            .into_iter()
            .map(Arc::from)
            .collect();
        let infos = partition.shards().to_vec();
        self.insert(name, particles, parts, infos)
    }

    fn validate_particles(particles: &[Particle]) -> Result<(), EngineError> {
        if particles.is_empty() {
            return Err(EngineError::EmptyDataset);
        }
        for (index, p) in particles.iter().enumerate() {
            if !p.position.is_finite() || !p.charge.is_finite() {
                return Err(EngineError::NonFiniteParticle { index });
            }
        }
        Ok(())
    }

    fn insert(
        &self,
        name: &str,
        particles: Vec<Particle>,
        shard_parts: Vec<Arc<[Particle]>>,
        shard_infos: Vec<ShardInfo>,
    ) -> Result<DatasetId, EngineError> {
        let positions: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
        let bounds = Aabb::cubical_hull(&positions, 1e-9);
        let abs_charge: f64 = particles.iter().map(|p| p.charge.abs()).sum();
        let q_max = particles.iter().map(|p| p.charge.abs()).fold(0.0, f64::max);
        let copies = particles.len() + shard_parts.iter().map(|p| p.len()).sum::<usize>();
        let bytes = copies * std::mem::size_of::<Particle>();

        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if inner.by_name.contains_key(name) {
            return Err(EngineError::DuplicateDataset(name.to_string()));
        }
        let id = DatasetId(inner.next);
        inner.next += 1;
        let ds = Arc::new(Dataset {
            id,
            name: name.to_string(),
            bounds,
            abs_charge,
            q_max,
            bytes,
            particles: particles.into(),
            shard_parts,
            shard_infos,
        });
        inner.by_id.insert(id, ds);
        inner.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// The dataset registered under `id`.
    pub fn get(&self, id: DatasetId) -> Result<Arc<Dataset>, EngineError> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_id
            .get(&id)
            .cloned()
            .ok_or(EngineError::UnknownDataset(id))
    }

    /// Looks a dataset id up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<DatasetId> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_name
            .get(name)
            .copied()
    }

    /// Number of registered datasets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_id
            .len()
    }

    /// Whether no dataset is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f64, 0.5, -0.5),
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                )
            })
            .collect()
    }

    #[test]
    fn register_and_lookup() {
        let reg = DatasetRegistry::new();
        let a = reg.register("a", ps(10)).unwrap();
        let b = reg.register("b", ps(20)).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.lookup("a"), Some(a));
        assert_eq!(reg.lookup("missing"), None);
        assert_eq!(reg.len(), 2);
        let ds = reg.get(b).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.name, "b");
        assert!((ds.abs_charge - 20.0).abs() < 1e-12);
        assert!((ds.q_max - 1.0).abs() < 1e-15);
        assert_eq!(ds.bytes, 20 * std::mem::size_of::<Particle>());
        assert!(!ds.is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        let reg = DatasetRegistry::new();
        assert_eq!(reg.register("e", vec![]), Err(EngineError::EmptyDataset));
        let mut bad = ps(5);
        bad[3] = Particle::new(Vec3::new(f64::NAN, 0.0, 0.0), 1.0);
        assert_eq!(
            reg.register("nan", bad),
            Err(EngineError::NonFiniteParticle { index: 3 })
        );
        let mut inf = ps(5);
        inf[0] = Particle::new(Vec3::ZERO, f64::INFINITY);
        assert_eq!(
            reg.register("inf", inf),
            Err(EngineError::NonFiniteParticle { index: 0 })
        );
        reg.register("dup", ps(3)).unwrap();
        assert_eq!(
            reg.register("dup", ps(3)),
            Err(EngineError::DuplicateDataset("dup".into()))
        );
    }

    #[test]
    fn register_sharded_cuts_contiguous_parts_that_cover_the_set() {
        let reg = DatasetRegistry::new();
        let id = reg.register_sharded("s", ps(40), 4).unwrap();
        let ds = reg.get(id).unwrap();
        assert!(ds.is_sharded());
        assert_eq!(ds.shard_count(), 4);
        assert_eq!(ds.shards().len(), 4);
        let total: usize = (0..4).map(|s| ds.shard_particles(s).len()).sum();
        assert_eq!(total, 40);
        for (s, info) in ds.shards().iter().enumerate() {
            assert_eq!(info.index, s);
            assert_eq!(info.count, ds.shard_particles(s).len());
            assert!(info.count > 0);
        }
        // the particle copies are accounted in the byte gauge
        assert_eq!(ds.bytes, 2 * 40 * std::mem::size_of::<Particle>());
    }

    #[test]
    fn register_sharded_k1_is_an_ordinary_dataset() {
        let reg = DatasetRegistry::new();
        let id = reg.register_sharded("one", ps(10), 1).unwrap();
        let ds = reg.get(id).unwrap();
        assert!(!ds.is_sharded());
        assert_eq!(ds.shard_count(), 1);
        assert!(ds.shards().is_empty());
        assert_eq!(ds.shard_particles(0), ds.particles());
    }

    #[test]
    fn register_sharded_rejects_impossible_counts() {
        let reg = DatasetRegistry::new();
        assert_eq!(
            reg.register_sharded("z", ps(5), 0),
            Err(EngineError::InvalidShardCount {
                requested: 0,
                particles: 5
            })
        );
        assert_eq!(
            reg.register_sharded("m", ps(5), 6),
            Err(EngineError::InvalidShardCount {
                requested: 6,
                particles: 5
            })
        );
        assert_eq!(
            reg.register_sharded("e", vec![], 2),
            Err(EngineError::EmptyDataset)
        );
    }

    #[test]
    fn unknown_id() {
        let reg = DatasetRegistry::new();
        assert_eq!(
            reg.get(DatasetId(99)).unwrap_err(),
            EngineError::UnknownDataset(DatasetId(99))
        );
    }
}
