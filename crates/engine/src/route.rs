//! Accuracy-tiered backend routing.
//!
//! The paper's Theorem 1/2/3 machinery exists to pick the *cheapest*
//! expansion machinery that meets a tolerance. The router applies it per
//! query shape:
//!
//! * **tiny-n** sources → [`Backend::Direct`]: a guarded direct sum is
//!   both the fastest option and *exact* (its Theorem bound is zero), so
//!   it trivially meets any requested accuracy;
//! * **all-targets / matvec** shapes (many targets against many sources)
//!   → [`Backend::Fmm`]: the compiled FMM amortises its per-cell local
//!   expansions across every target in the cell, turning the per-target
//!   `O(log n)` treecode traversal into `O(1)` local work;
//! * everything else → [`Backend::Treecode`]: the compiled treecode M2P
//!   path, whose per-target cost is unbeatable for few-targets requests.
//!
//! **Theorem-bound admission.** The FMM is only selected when its
//! resolved truncation bound is no worse than the bound the request
//! already accepted by asking for MAC parameter α: the FMM's M2L list
//! admits the nearest non-adjacent cell — cluster radius `a = d·√3/2` at
//! center separation `r = 2d` — which is exactly a Theorem-2 interaction
//! at effective MAC `α_eff = d/r = 1/2`. Since the Theorem 1/2 bound is
//! monotone in α (smaller α ⇒ larger separation ⇒ smaller error at equal
//! degree), routing to the FMM is admissible **iff** `α ≥ 1/2`
//! (`kappa(α_eff) ≤ kappa(α)`); requests with a tighter MAC than the FMM
//! geometry can honour stay on the treecode. Degree policies carry over
//! unchanged: `Fixed(p)` keeps `p`, `Adaptive` keeps the Theorem-3 ramp
//! (its κ comes from the *requested* α ≥ α_eff, prescribing at least the
//! degrees the FMM geometry needs), and `Tolerance` resolves per level
//! against the FMM's own worst-case geometry inside `mbt-fmm`.
//!
//! The `validate` feature pins every query to the treecode — the
//! bit-exact reference path the rest of the validation suite compares
//! against.

use mbt_fmm::FmmParams;
use mbt_multipole::kappa;
use mbt_treecode::TreecodeParams;

/// Which evaluation machinery serves a routed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Guarded direct summation (tiny-n; exact).
    Direct,
    /// The compiled treecode M2P path (the default).
    #[default]
    Treecode,
    /// The compiled FMM (all-targets / matvec shapes).
    Fmm,
}

impl Backend {
    /// Stable snake_case name, used as a metric label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Direct => "direct",
            Backend::Treecode => "treecode",
            Backend::Fmm => "fmm",
        }
    }
}

/// Largest source count served by direct summation: below this the
/// direct sweep beats either tree build even on a cold cache, and it is
/// exact.
pub const DIRECT_MAX_SOURCES: usize = 512;

/// Smallest source count the FMM is considered for — below this the
/// treecode's lighter build wins regardless of target count.
pub const FMM_MIN_SOURCES: usize = 4096;

/// Smallest target count (absolute, and relative to sources as
/// `n_targets ≥ n_sources / 16`) that makes a request "all-targets"
/// shaped: the FMM's per-cell local expansions only pay off when enough
/// targets share each finest cell.
pub const FMM_MIN_TARGETS: usize = 128;

/// The FMM's effective MAC parameter: its M2L lists admit the nearest
/// non-adjacent cell, a Theorem-2 interaction at `α_eff = d/r = 1/2`
/// (see the module docs). Requests at `α < 1/2` demand a wider
/// separation than the FMM geometry provides and stay on the treecode.
pub const FMM_ALPHA_EFF: f64 = 0.5;

/// Whether this build pins every query to the treecode reference path
/// (the `validate` feature). Downstream crates — which cannot see this
/// crate's features — use this to know whether shape routing is live.
#[must_use]
pub fn routing_pinned() -> bool {
    cfg!(feature = "validate")
}

/// Whether the compiled FMM's resolved Theorem 1/2 bound is no worse
/// than what the request already accepted at MAC parameter `alpha`:
/// `kappa(FMM_ALPHA_EFF) ≤ kappa(alpha)`.
#[must_use]
pub fn fmm_admissible(alpha: f64) -> bool {
    kappa(FMM_ALPHA_EFF) <= kappa(alpha)
}

/// Picks the backend for a query of `n_targets` points against
/// `n_sources` particles under the resolved `params`.
///
/// `pinned` forces the treecode: sharded datasets (served by the
/// skeleton fan-out, a treecode-only path) and explicit
/// [`crate::Accuracy::Params`] requests (which state their execution
/// mode themselves) set it.
#[must_use]
pub fn route(n_sources: usize, n_targets: usize, pinned: bool, params: &TreecodeParams) -> Backend {
    // the validation suite compares against the bit-exact scalar
    // treecode; routing away from it would invalidate the comparison
    if cfg!(feature = "validate") || pinned {
        return Backend::Treecode;
    }
    if n_sources <= DIRECT_MAX_SOURCES {
        return Backend::Direct;
    }
    let matvec_shaped = n_targets >= FMM_MIN_TARGETS && n_targets * 16 >= n_sources;
    if n_sources >= FMM_MIN_SOURCES
        && matvec_shaped
        && fmm_admissible(params.alpha)
        // lint: allow(float_cmp, exact-zero gate: any softening at all changes the kernel the FMM cannot reproduce)
        && params.softening == 0.0
    {
        return Backend::Fmm;
    }
    Backend::Treecode
}

/// The FMM parameters a routed request runs with: the treecode's degree
/// policy carried over unchanged (see the module docs for why each
/// variant stays conservative under the FMM's `α_eff = 1/2` geometry),
/// automatic level selection, compiled arenas.
#[must_use]
pub fn fmm_params_for(params: &TreecodeParams) -> FmmParams {
    FmmParams {
        levels: None,
        degree: params.degree,
        eval_mode: mbt_fmm::FmmEvalMode::Compiled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(alpha: f64) -> TreecodeParams {
        TreecodeParams::fixed(4, alpha)
    }

    // Shape-routing tests assume routing is live; under `validate`
    // every query is pinned to the treecode reference path.
    #[cfg(not(feature = "validate"))]
    #[test]
    fn tiny_n_routes_direct() {
        assert_eq!(route(10, 10_000, false, &params(0.6)), Backend::Direct);
        assert_eq!(
            route(DIRECT_MAX_SOURCES, 1, false, &params(0.6)),
            Backend::Direct
        );
    }

    #[cfg(not(feature = "validate"))]
    #[test]
    fn matvec_shape_routes_fmm() {
        // all-targets: every source is a target
        assert_eq!(route(100_000, 100_000, false, &params(0.6)), Backend::Fmm);
        // matvec against a mesh: targets a fraction of sources but dense
        assert_eq!(route(100_000, 10_000, false, &params(0.6)), Backend::Fmm);
    }

    #[test]
    fn few_targets_stay_on_the_treecode() {
        assert_eq!(route(100_000, 50, false, &params(0.6)), Backend::Treecode);
        // relatively few targets: below n_sources / 16
        assert_eq!(route(100_000, 200, false, &params(0.6)), Backend::Treecode);
    }

    #[test]
    fn mid_size_sources_stay_on_the_treecode() {
        assert_eq!(route(2_000, 2_000, false, &params(0.6)), Backend::Treecode);
    }

    #[test]
    fn theorem_admission_gates_the_fmm() {
        // α < 1/2 demands a wider separation than the FMM's M2L geometry
        assert!(!fmm_admissible(0.4));
        assert_eq!(
            route(100_000, 100_000, false, &params(0.4)),
            Backend::Treecode
        );
        assert!(fmm_admissible(0.5));
        assert!(fmm_admissible(0.9));
    }

    #[cfg(not(feature = "validate"))]
    #[test]
    fn softened_kernels_stay_on_the_treecode() {
        let softened = params(0.6).with_softening(1e-3);
        assert_eq!(route(100_000, 100_000, false, &softened), Backend::Treecode);
    }

    #[test]
    fn pinned_requests_stay_on_the_treecode() {
        assert_eq!(route(10, 10, true, &params(0.6)), Backend::Treecode);
        assert_eq!(
            route(100_000, 100_000, true, &params(0.6)),
            Backend::Treecode
        );
    }

    #[test]
    fn fmm_params_carry_the_degree_policy() {
        let p = TreecodeParams::adaptive(3, 0.7);
        let f = fmm_params_for(&p);
        assert_eq!(f.degree, p.degree);
        assert_eq!(f.levels, None);
        let t = TreecodeParams::tolerance(1e-6, 0.6);
        assert_eq!(fmm_params_for(&t).degree, t.degree);
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(Backend::Direct.as_str(), "direct");
        assert_eq!(Backend::Treecode.as_str(), "treecode");
        assert_eq!(Backend::Fmm.as_str(), "fmm");
        assert_eq!(Backend::default(), Backend::Treecode);
    }
}
