//! Cross-caller query coalescing.
//!
//! Concurrent requests against the same plan and query kind are combined:
//! the first arrival for a group becomes its **leader**, drains whatever
//! has queued up, and evaluates the whole batch as one sweep
//! ([`crate::batch::evaluate_batch`]); later arrivals park on a result
//! slot. While the leader is inside a sweep, new requests keep queueing —
//! so under load, batches form *naturally*: the busier a plan, the more
//! requests each sweep amortises (an optional `window` adds a fixed
//! coalescing wait on top for latency-insensitive deployments).
//!
//! Shedding: requests whose deadline has passed by the time their batch
//! is drained are answered [`EngineError::DeadlineExceeded`] without
//! costing any evaluation work.
//!
//! Panic labeling: a sweep that panics answers everyone riding it with
//! [`EngineError::WorkerPanicked`] (counted in `worker_panics`) — never
//! the `DeadlineExceeded` mislabel the engine used to report, which made
//! an engine bug look like client-caused shedding.

use std::time::{Duration, Instant};

use mbt_check::sync::Arc;
use mbt_geometry::Vec3;
use mbt_treecode::EvalStats;

use crate::batch::{evaluate_plan_batch, QueryKind, QueryOutput};
use crate::error::EngineError;
use crate::flight::Combiner;
use crate::plan::{EvalConfig, Plan, PlanKey};
use crate::stats::StatsCollector;

/// One coalescing group: a plan × what is being computed × how the sweep
/// executes. Plan identity excludes execution knobs, so requests at
/// different chunk widths or modes share a cached plan — but each
/// coalesced sweep must run under a single configuration, hence the
/// `cfg` component here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GroupKey {
    plan: PlanKey,
    kind: QueryKind,
    cfg: EvalConfig,
}

/// One queued request.
#[derive(Debug)]
struct Pending {
    points: Vec<Vec3>,
    deadline: Option<Instant>,
}

/// The per-engine combiner.
///
/// The leader/follower mechanics — group ownership, queue draining,
/// result hand-back, leader hand-off when a group runs dry — live in
/// [`Combiner`], a policy-free core the `mbt-check` model suite explores
/// exhaustively. This type wires in the engine's policy: deadline
/// shedding at drain time, the coalescing window, the evaluation sweep,
/// and stats recording.
#[derive(Debug, Default)]
pub struct Batcher {
    combiner: Combiner<GroupKey, Pending, Result<(QueryOutput, EvalStats), EngineError>>,
    /// Fixed coalescing wait a leader sleeps before its first drain.
    window: Duration,
}

impl Batcher {
    /// An empty batcher with no coalescing window.
    #[must_use]
    pub fn new() -> Batcher {
        Batcher::default()
    }

    /// An empty batcher whose leaders wait `window` before draining,
    /// growing batches at the cost of latency.
    #[must_use]
    pub fn with_window(window: Duration) -> Batcher {
        Batcher {
            window,
            ..Batcher::default()
        }
    }

    /// Runs one request through the combiner, blocking until its values
    /// are computed (possibly by another caller's sweep). The returned
    /// [`EvalStats`] cover the whole sweep this request rode in.
    pub fn run(
        &self,
        plan: &Arc<Plan>,
        kind: QueryKind,
        cfg: EvalConfig,
        points: Vec<Vec3>,
        deadline: Option<Instant>,
        stats: &StatsCollector,
    ) -> Result<(QueryOutput, EvalStats), EngineError> {
        let key = GroupKey {
            plan: plan.key,
            kind,
            cfg,
        };
        self.submit(key, Pending { points, deadline }, stats, |batch| {
            Batcher::execute(plan, kind, key, stats, &batch)
        })
    }

    /// Combiner wiring shared by [`Batcher::run`] and the tests that
    /// inject a broken evaluator: the coalescing window before a leader's
    /// first drain, and [`EngineError::WorkerPanicked`] (plus its
    /// counter) as the substitute a panicking sweep leaves behind.
    fn submit(
        &self,
        key: GroupKey,
        pending: Pending,
        stats: &StatsCollector,
        exec: impl Fn(Vec<Pending>) -> Vec<Result<(QueryOutput, EvalStats), EngineError>>,
    ) -> Result<(QueryOutput, EvalStats), EngineError> {
        self.combiner.submit(
            key,
            pending,
            || {
                if !self.window.is_zero() {
                    std::thread::sleep(self.window);
                }
            },
            exec,
            || {
                stats.record_worker_panic();
                Err(EngineError::WorkerPanicked)
            },
        )
    }

    /// Evaluates one drained batch, answering every request in order:
    /// expired deadlines are shed without costing evaluation work, the
    /// rest ride a single shared sweep.
    fn execute(
        plan: &Arc<Plan>,
        kind: QueryKind,
        key: GroupKey,
        stats: &StatsCollector,
        batch: &[Pending],
    ) -> Vec<Result<(QueryOutput, EvalStats), EngineError>> {
        // shed what has already missed its deadline
        let now = Instant::now();
        let mut results: Vec<Result<(QueryOutput, EvalStats), EngineError>> =
            Vec::with_capacity(batch.len());
        let mut live: Vec<usize> = Vec::with_capacity(batch.len());
        for (i, p) in batch.iter().enumerate() {
            if p.deadline.is_some_and(|d| now >= d) {
                stats.record_shed_deadline();
            } else {
                live.push(i);
            }
            results.push(Err(EngineError::DeadlineExceeded));
        }
        if live.is_empty() {
            return results;
        }

        let slices: Vec<&[Vec3]> = live.iter().map(|&i| batch[i].points.as_slice()).collect();
        let total_points: usize = slices.iter().map(|s| s.len()).sum();
        let t0 = Instant::now();
        let (outputs, sweep_stats) = evaluate_plan_batch(plan, kind, &slices, key.cfg);
        stats.record_batch(key.plan, live.len(), total_points, t0.elapsed());
        debug_assert_eq!(outputs.len(), live.len());
        for (&i, out) in live.iter().zip(outputs) {
            results[i] = Ok((out, sweep_stats.clone()));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKey;
    use crate::registry::DatasetId;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_treecode::TreecodeParams;

    fn plan() -> (Arc<Plan>, EvalConfig) {
        let ps = uniform_cube(600, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 9);
        let params = TreecodeParams::fixed(4, 0.6);
        let key = PlanKey::new(DatasetId(0), &params);
        let cfg = EvalConfig::of(&params);
        (Arc::new(Plan::build(key, &ps, params).unwrap()), cfg)
    }

    #[test]
    fn single_caller_round_trips() {
        let (plan, cfg) = plan();
        let batcher = Batcher::new();
        let stats = StatsCollector::default();
        let points = vec![Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 3.0, 0.0)];
        let (out, sweep) = batcher
            .run(
                &plan,
                QueryKind::Potential,
                cfg,
                points.clone(),
                None,
                &stats,
            )
            .unwrap();
        let direct = plan.treecode().potentials_at(&points);
        assert_eq!(out.potentials().unwrap(), direct.values.as_slice());
        assert_eq!(sweep.targets, 2);
    }

    #[test]
    fn concurrent_callers_all_get_their_own_values() {
        let (plan, cfg) = plan();
        let batcher = Batcher::with_window(Duration::from_millis(5));
        let stats = StatsCollector::default();
        let n_threads = 8;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let plan = &plan;
                    let batcher = &batcher;
                    let stats = &stats;
                    s.spawn(move || {
                        let points: Vec<Vec3> = (0..10)
                            .map(|i| Vec3::new(1.5 + t as f64, f64::from(i) * 0.1, 0.0))
                            .collect();
                        let (out, _) = batcher
                            .run(plan, QueryKind::Potential, cfg, points.clone(), None, stats)
                            .unwrap();
                        let direct = plan.treecode().potentials_at(&points);
                        assert_eq!(out.potentials().unwrap(), direct.values.as_slice());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // every request was answered through some batch
        let snap = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(snap.batched_requests, n_threads);
        assert!(snap.batches <= n_threads);
        assert_eq!(snap.eval_points, n_threads * 10);
    }

    #[test]
    fn expired_deadline_is_shed_at_drain() {
        let (plan, cfg) = plan();
        let batcher = Batcher::new();
        let stats = StatsCollector::default();
        let res = batcher.run(
            &plan,
            QueryKind::Potential,
            cfg,
            vec![Vec3::new(2.0, 0.0, 0.0)],
            Some(
                Instant::now()
                    .checked_sub(Duration::from_millis(1))
                    .unwrap(),
            ),
            &stats,
        );
        assert_eq!(res.unwrap_err(), EngineError::DeadlineExceeded);
        let snap = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(snap.shed_deadline, 1);
        assert_eq!(snap.batches, 0); // no evaluation ran
    }

    /// The injected-evaluator regression (ISSUE 10): a panicking sweep
    /// must label its riders [`EngineError::WorkerPanicked`] and count
    /// it — the old engine reported `DeadlineExceeded` for this.
    #[test]
    fn panicking_evaluator_surfaces_worker_panicked() {
        let (plan, cfg) = plan();
        let batcher = Batcher::new();
        let stats = StatsCollector::default();
        let key = GroupKey {
            plan: plan.key,
            kind: QueryKind::Potential,
            cfg,
        };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher.submit(
                key,
                Pending {
                    points: vec![Vec3::new(2.0, 0.0, 0.0)],
                    deadline: None,
                },
                &stats,
                |_| panic!("evaluator died mid-sweep"),
            )
        }));
        // the panic reached the leading caller; the substitute stamped
        // the typed error and its counter on the way out
        assert!(attempt.is_err());
        let snap = stats.snapshot(crate::stats::Gauges::default());
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.shed_deadline, 0, "a panic is not client shedding");

        // the group retired: the batcher still serves afterwards
        let (out, _) = batcher
            .run(
                &plan,
                QueryKind::Potential,
                cfg,
                vec![Vec3::new(2.0, 0.0, 0.0)],
                None,
                &stats,
            )
            .unwrap();
        assert_eq!(out.potentials().unwrap().len(), 1);
    }
}
