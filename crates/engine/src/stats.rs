//! Engine observability.
//!
//! [`StatsCollector`] is the write side: plain atomics bumped from the
//! hot paths (no locks, no allocation). [`EngineStats`] is the read side:
//! a plain owned struct snapshotted on demand, deliberately free of any
//! exporter dependency so a later observability layer can serialise it to
//! whatever format it likes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters the engine's layers write into.
#[derive(Debug, Default)]
pub struct StatsCollector {
    // plan cache
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_misses: AtomicU64,
    plan_builds: AtomicU64,
    build_ns: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    // batched evaluation
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    eval_ns: AtomicU64,
    eval_points: AtomicU64,
    // admission control
    admitted: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    queue_peak: AtomicU64,
}

impl StatsCollector {
    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_coalesced(&self) {
        self.coalesced_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_build(&self, took: Duration) {
        self.plan_builds.fetch_add(1, Ordering::Relaxed);
        self.build_ns
            .fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self, bytes: usize) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.evicted_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, requests: usize, points: usize, took: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(requests as u64, Ordering::Relaxed);
        self.eval_ns
            .fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
        self.eval_points.fetch_add(points as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_overload(&self) {
        self.shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters; the gauges (`queue_depth`, `in_flight`,
    /// cache residency, dataset count) are supplied by the engine, which
    /// owns the structures they describe.
    pub(crate) fn snapshot(&self, gauges: Gauges) -> EngineStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            cache_hits: ld(&self.cache_hits),
            cache_misses: ld(&self.cache_misses),
            coalesced_misses: ld(&self.coalesced_misses),
            plan_builds: ld(&self.plan_builds),
            build_seconds: ld(&self.build_ns) as f64 * 1e-9,
            evictions: ld(&self.evictions),
            evicted_bytes: ld(&self.evicted_bytes),
            batches: ld(&self.batches),
            batched_requests: ld(&self.batched_requests),
            max_batch: ld(&self.max_batch),
            eval_seconds: ld(&self.eval_ns) as f64 * 1e-9,
            eval_points: ld(&self.eval_points),
            admitted: ld(&self.admitted),
            shed_overload: ld(&self.shed_overload),
            shed_deadline: ld(&self.shed_deadline),
            queue_peak: ld(&self.queue_peak),
            resident_plans: gauges.resident_plans,
            resident_bytes: gauges.resident_bytes,
            cache_budget_bytes: gauges.cache_budget_bytes,
            datasets: gauges.datasets,
            in_flight: gauges.in_flight,
            queue_depth: gauges.queue_depth,
        }
    }
}

/// Point-in-time gauges merged into a snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Gauges {
    pub resident_plans: usize,
    pub resident_bytes: usize,
    pub cache_budget_bytes: usize,
    pub datasets: usize,
    pub in_flight: usize,
    pub queue_depth: usize,
}

/// A point-in-time view of everything the engine counts. Plain data —
/// `Clone`, no atomics, no locks — so exporters can hold or diff
/// snapshots freely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Queries served from a resident plan.
    pub cache_hits: u64,
    /// Queries that found no resident plan and triggered a build.
    pub cache_misses: u64,
    /// Queries that found a build already in flight and waited for it
    /// (single-flight coalescing).
    pub coalesced_misses: u64,
    /// Plans actually built.
    pub plan_builds: u64,
    /// Total wall time spent building plans.
    pub build_seconds: f64,
    /// Plans evicted to respect the byte budget.
    pub evictions: u64,
    /// Total bytes of evicted plans.
    pub evicted_bytes: u64,
    /// Plans currently resident in the cache.
    pub resident_plans: usize,
    /// Bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// The cache byte budget.
    pub cache_budget_bytes: usize,
    /// Registered datasets.
    pub datasets: usize,
    /// Batched evaluation sweeps executed.
    pub batches: u64,
    /// Requests that rode in those sweeps.
    pub batched_requests: u64,
    /// Largest number of requests coalesced into one sweep.
    pub max_batch: u64,
    /// Total wall time spent in evaluation sweeps.
    pub eval_seconds: f64,
    /// Total observation points evaluated.
    pub eval_points: u64,
    /// Requests admitted past the gate.
    pub admitted: u64,
    /// Requests shed because the queue was full.
    pub shed_overload: u64,
    /// Requests shed because their deadline expired while queued.
    pub shed_deadline: u64,
    /// Requests currently being evaluated.
    pub in_flight: usize,
    /// Requests currently waiting for an evaluation slot.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub queue_peak: u64,
}

impl EngineStats {
    /// Fraction of plan lookups served from cache (hits over hits +
    /// misses + coalesced misses); 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.coalesced_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per evaluation sweep; 0 when no sweep ran.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cache: {} hits / {} misses / {} coalesced ({:.1}% hit rate), \
             {} resident plans, {}/{} bytes, {} evictions",
            self.cache_hits,
            self.cache_misses,
            self.coalesced_misses,
            100.0 * self.hit_rate(),
            self.resident_plans,
            self.resident_bytes,
            self.cache_budget_bytes,
            self.evictions,
        )?;
        writeln!(
            f,
            "plans: {} builds in {:.3}s; eval: {} batches / {} requests \
             (mean {:.2}, max {}), {} points in {:.3}s",
            self.plan_builds,
            self.build_seconds,
            self.batches,
            self.batched_requests,
            self.mean_batch(),
            self.max_batch,
            self.eval_points,
            self.eval_seconds,
        )?;
        write!(
            f,
            "admission: {} admitted, {} shed (overload) + {} shed (deadline), \
             {} in flight, queue {} (peak {})",
            self.admitted,
            self.shed_overload,
            self.shed_deadline,
            self.in_flight,
            self.queue_depth,
            self.queue_peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_snapshot() {
        let c = StatsCollector::default();
        c.record_hit();
        c.record_hit();
        c.record_miss();
        c.record_coalesced();
        c.record_build(Duration::from_millis(5));
        c.record_eviction(1024);
        c.record_batch(3, 300, Duration::from_millis(2));
        c.record_batch(7, 700, Duration::from_millis(2));
        c.record_admitted();
        c.record_shed_overload();
        c.record_shed_deadline();
        c.observe_queue_depth(4);
        c.observe_queue_depth(2);
        let s = c.snapshot(Gauges {
            resident_plans: 1,
            resident_bytes: 4096,
            cache_budget_bytes: 1 << 20,
            datasets: 2,
            in_flight: 1,
            queue_depth: 0,
        });
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.coalesced_misses, 1);
        assert_eq!(s.plan_builds, 1);
        assert!(s.build_seconds > 0.004);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 1024);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_requests, 10);
        assert_eq!(s.max_batch, 7);
        assert_eq!(s.eval_points, 1000);
        assert_eq!(s.queue_peak, 4);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_batch() - 5.0).abs() < 1e-12);
        let text = format!("{s}");
        assert!(text.contains("hit rate"));
        assert!(text.contains("admission"));
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
    }
}
