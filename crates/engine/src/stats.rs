//! Engine observability.
//!
//! [`StatsCollector`] is the write side: plain atomics and fixed-bucket
//! [`Histogram`]s bumped from the hot paths (no allocation; the only
//! lock guards the per-plan breakdown and is taken once per *build* or
//! *batch*, never per point). [`EngineStats`] is the read side: a plain
//! owned struct snapshotted on demand. Serialisation to Prometheus text
//! and JSON lives in [`crate::export`] so the snapshot itself stays free
//! of any exporter dependency.
//!
//! Latency is tracked as half-octave (√2-spaced) histograms, so
//! `build_seconds`/`eval_seconds` totals are exact sums while p50/p95/p99
//! are interpolated estimates with ≤ ~20 % bucket error — the right
//! trade for a lock-free hot path. Engine-phase spans (admission wait,
//! plan build, batch execute) land in a bounded ring, and queries slower
//! than the configured threshold land in a bounded slow-query log; both
//! are drop-on-full, never blocking.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use mbt_check::sync::atomic::{AtomicU64, Ordering};
use mbt_check::sync::{Mutex, PoisonError};

use mbt_obs::{
    Histogram, HistogramSnapshot, Phase, Recorder, RingRecorder, SlowLog, SlowQuery, Span,
};

use crate::fanout::FanoutBreakdown;
use crate::plan::PlanKey;
use crate::registry::DatasetId;
use crate::route::Backend;
use crate::tenant::TenantBreakdown;

/// Spans retained for inspection via [`crate::Engine::spans`].
const SPAN_RING_CAPACITY: usize = 1024;
/// Slow queries retained via [`crate::Engine::slow_queries`].
const SLOW_LOG_CAPACITY: usize = 128;
/// Default slow-query threshold when none is configured.
pub(crate) const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(250);

/// Per-plan running totals, guarded by the collector's mutex.
#[derive(Debug)]
struct PlanCounters {
    dataset: u64,
    builds: u64,
    build_ns: u64,
    batches: u64,
    requests: u64,
    points: u64,
    eval: Histogram,
}

impl PlanCounters {
    fn new(dataset: u64) -> PlanCounters {
        PlanCounters {
            dataset,
            builds: 0,
            build_ns: 0,
            batches: 0,
            requests: 0,
            points: 0,
            eval: Histogram::new(),
        }
    }
}

/// A stable per-process label for one plan: the key's hash under a
/// fixed-key hasher, so exporters can tell plans apart without leaking
/// the key's internals.
fn fingerprint(key: &PlanKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Lock-free counters and histograms the engine's layers write into.
#[derive(Debug)]
pub struct StatsCollector {
    // plan cache
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_misses: AtomicU64,
    plan_builds: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    // batched evaluation
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    eval_points: AtomicU64,
    // backend routing decisions
    routed_direct: AtomicU64,
    routed_treecode: AtomicU64,
    routed_fmm: AtomicU64,
    // sharded fan-out routing
    sharded_queries: AtomicU64,
    global_shortcuts: AtomicU64,
    skeleton_evals: AtomicU64,
    shard_opens: AtomicU64,
    // admission control
    admitted: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_quota: AtomicU64,
    queue_peak: AtomicU64,
    // batch-leader panics surfaced as WorkerPanicked
    worker_panics: AtomicU64,
    // latency distributions
    build_hist: Histogram,
    eval_hist: Histogram,
    query_hist: Histogram,
    wait_hist: Histogram,
    fanout_hist: Histogram,
    // bounded engine-phase span ring + slow-query log
    spans: RingRecorder,
    slow: SlowLog,
    slow_threshold_ns: u64,
    // per-plan breakdown (locked once per build / per batch)
    per_plan: Mutex<HashMap<PlanKey, PlanCounters>>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        StatsCollector::with_slow_threshold(DEFAULT_SLOW_THRESHOLD)
    }
}

impl StatsCollector {
    /// A collector logging queries slower than `slow_threshold` to the
    /// bounded slow-query log.
    #[must_use]
    pub fn with_slow_threshold(slow_threshold: Duration) -> StatsCollector {
        StatsCollector {
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced_misses: AtomicU64::new(0),
            plan_builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            eval_points: AtomicU64::new(0),
            routed_direct: AtomicU64::new(0),
            routed_treecode: AtomicU64::new(0),
            routed_fmm: AtomicU64::new(0),
            sharded_queries: AtomicU64::new(0),
            global_shortcuts: AtomicU64::new(0),
            skeleton_evals: AtomicU64::new(0),
            shard_opens: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            build_hist: Histogram::new(),
            eval_hist: Histogram::new(),
            query_hist: Histogram::new(),
            wait_hist: Histogram::new(),
            fanout_hist: Histogram::new(),
            spans: RingRecorder::new(SPAN_RING_CAPACITY),
            slow: SlowLog::new(SLOW_LOG_CAPACITY),
            slow_threshold_ns: saturating_ns(slow_threshold),
            per_plan: Mutex::new(HashMap::new()),
        }
    }

    /// One span, ending now on the process-epoch timeline, into the
    /// bounded ring (dropped, never blocked, when the ring is contended).
    fn emit_span(&self, phase: Phase, took: Duration) {
        let dur_ns = saturating_ns(took);
        let end_ns = saturating_ns(mbt_obs::epoch().elapsed());
        self.spans.record(Span {
            phase,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
        });
    }

    pub(crate) fn record_hit(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_coalesced(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.coalesced_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_build(&self, key: PlanKey, took: Duration) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.plan_builds.fetch_add(1, Ordering::Relaxed);
        self.build_hist.record(took);
        self.emit_span(Phase::PlanBuild, took);
        let mut plans = self.per_plan.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = plans
            .entry(key)
            .or_insert_with(|| PlanCounters::new(key.dataset().0));
        entry.builds += 1;
        entry.build_ns += saturating_ns(took);
    }

    pub(crate) fn record_eviction(&self, bytes: usize) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.evictions.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.evicted_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(
        &self,
        key: PlanKey,
        requests: usize,
        points: usize,
        took: Duration,
    ) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.batches.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.batched_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
        // ordering: Relaxed — running maximum; the RMW itself is atomic, order against other counters is irrelevant
        self.max_batch.fetch_max(requests as u64, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.eval_points.fetch_add(points as u64, Ordering::Relaxed);
        self.eval_hist.record(took);
        self.emit_span(Phase::BatchExecute, took);
        let mut plans = self.per_plan.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = plans
            .entry(key)
            .or_insert_with(|| PlanCounters::new(key.dataset().0));
        entry.batches += 1;
        entry.requests += requests as u64;
        entry.points += points as u64;
        entry.eval.record(took);
    }

    /// One backend routing decision (one per request, batched or not).
    pub(crate) fn record_route(&self, backend: Backend) {
        let counter = match backend {
            Backend::Direct => &self.routed_direct,
            Backend::Treecode => &self.routed_treecode,
            Backend::Fmm => &self.routed_fmm,
        };
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One sharded fan-out: its routing counters (per-tier interaction
    /// decisions summed over the fan-out's points × shards) plus its
    /// end-to-end latency.
    pub(crate) fn record_fanout(&self, fan: &FanoutBreakdown, took: Duration) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.sharded_queries.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.global_shortcuts
            .fetch_add(fan.global_shortcuts, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.skeleton_evals
            .fetch_add(fan.skeleton_evals, Ordering::Relaxed);
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.shard_opens.fetch_add(fan.opens, Ordering::Relaxed);
        self.fanout_hist.record(took);
        self.emit_span(Phase::ShardFanout, took);
    }

    /// Time a request spent queued at the admission gate (zero for
    /// fast-path admissions, which emit no span).
    pub(crate) fn record_admission_wait(&self, waited: Duration) {
        self.wait_hist.record(waited);
        if !waited.is_zero() {
            self.emit_span(Phase::AdmissionWait, waited);
        }
    }

    /// One served request, end to end: feeds the query-latency histogram
    /// and, past the threshold, the slow-query log. Allocation-free.
    pub(crate) fn record_request(
        &self,
        dataset: DatasetId,
        points: usize,
        total: Duration,
        waited: Duration,
    ) {
        self.query_hist.record(total);
        let total_ns = saturating_ns(total);
        if total_ns >= self.slow_threshold_ns {
            self.slow.record(SlowQuery {
                dataset: dataset.0,
                points: points as u64,
                total_ns,
                wait_ns: saturating_ns(waited),
            });
        }
    }

    pub(crate) fn record_admitted(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_overload(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_deadline(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_quota(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.shed_quota.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_panic(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        // ordering: Relaxed — running maximum; the RMW itself is atomic, order against other counters is irrelevant
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Recent engine-phase spans (admission wait, plan build, batch
    /// execute), oldest first.
    pub(crate) fn spans(&self) -> Vec<Span> {
        self.spans.spans()
    }

    /// Recent queries slower than the configured threshold.
    pub(crate) fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.entries()
    }

    /// Snapshot of the counters; the gauges (`queue_depth`, `in_flight`,
    /// cache residency, dataset count) are supplied by the engine, which
    /// owns the structures they describe.
    pub(crate) fn snapshot(&self, gauges: Gauges) -> EngineStats {
        // ordering: Relaxed — statistical snapshot; counters are independent, slight skew between them is acceptable
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let build = self.build_hist.snapshot();
        let eval = self.eval_hist.snapshot();
        let query = self.query_hist.snapshot();
        let wait = self.wait_hist.snapshot();
        let fanout = self.fanout_hist.snapshot();

        let (per_plan, per_dataset) = {
            let plans = self.per_plan.lock().unwrap_or_else(PoisonError::into_inner);
            let mut per_plan: Vec<PlanBreakdown> = plans
                .iter()
                .map(|(key, c)| PlanBreakdown {
                    plan: fingerprint(key),
                    dataset: c.dataset,
                    builds: c.builds,
                    build_seconds: c.build_ns as f64 * 1e-9,
                    batches: c.batches,
                    requests: c.requests,
                    points: c.points,
                    eval: LatencySummary::of(&c.eval.snapshot()),
                })
                .collect();
            per_plan.sort_by_key(|a| (a.dataset, a.plan));

            let mut by_dataset: BTreeMap<u64, (DatasetBreakdown, HistogramSnapshot)> =
                BTreeMap::new();
            for c in plans.values() {
                let (agg, hist) = by_dataset.entry(c.dataset).or_insert_with(|| {
                    (
                        DatasetBreakdown {
                            dataset: c.dataset,
                            ..DatasetBreakdown::default()
                        },
                        HistogramSnapshot::empty(),
                    )
                });
                agg.plans += 1;
                agg.builds += c.builds;
                agg.batches += c.batches;
                agg.requests += c.requests;
                agg.points += c.points;
                hist.merge(&c.eval.snapshot());
            }
            let per_dataset: Vec<DatasetBreakdown> = by_dataset
                .into_values()
                .map(|(mut agg, hist)| {
                    agg.eval = LatencySummary::of(&hist);
                    agg
                })
                .collect();
            (per_plan, per_dataset)
        };

        EngineStats {
            cache_hits: ld(&self.cache_hits),
            cache_misses: ld(&self.cache_misses),
            coalesced_misses: ld(&self.coalesced_misses),
            plan_builds: ld(&self.plan_builds),
            build_seconds: build.sum_ns as f64 * 1e-9,
            evictions: ld(&self.evictions),
            evicted_bytes: ld(&self.evicted_bytes),
            batches: ld(&self.batches),
            batched_requests: ld(&self.batched_requests),
            max_batch: ld(&self.max_batch),
            eval_seconds: eval.sum_ns as f64 * 1e-9,
            eval_points: ld(&self.eval_points),
            routed_direct: ld(&self.routed_direct),
            routed_treecode: ld(&self.routed_treecode),
            routed_fmm: ld(&self.routed_fmm),
            sharded_queries: ld(&self.sharded_queries),
            global_shortcuts: ld(&self.global_shortcuts),
            skeleton_evals: ld(&self.skeleton_evals),
            shard_opens: ld(&self.shard_opens),
            admitted: ld(&self.admitted),
            shed_overload: ld(&self.shed_overload),
            shed_deadline: ld(&self.shed_deadline),
            shed_quota: ld(&self.shed_quota),
            queue_peak: ld(&self.queue_peak),
            worker_panics: ld(&self.worker_panics),
            build_latency: LatencySummary::of(&build),
            eval_latency: LatencySummary::of(&eval),
            query_latency: LatencySummary::of(&query),
            admission_wait: LatencySummary::of(&wait),
            fanout_latency: LatencySummary::of(&fanout),
            build_histogram: build,
            eval_histogram: eval,
            query_histogram: query,
            wait_histogram: wait,
            fanout_histogram: fanout,
            slow_queries: self.slow.recorded(),
            spans_dropped: self.spans.dropped(),
            span_read_retries: self.spans.read_retries(),
            per_plan,
            per_dataset,
            // the engine owns the tenant table and fills this in
            // Engine::stats; a bare collector snapshot reports none
            per_tenant: Vec::new(),
            resident_plans: gauges.resident_plans,
            resident_bytes: gauges.resident_bytes,
            cache_budget_bytes: gauges.cache_budget_bytes,
            datasets: gauges.datasets,
            in_flight: gauges.in_flight,
            queue_depth: gauges.queue_depth,
            skeletons: gauges.skeletons,
            skeleton_bytes: gauges.skeleton_bytes,
        }
    }
}

/// Point-in-time gauges merged into a snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Gauges {
    pub resident_plans: usize,
    pub resident_bytes: usize,
    pub cache_budget_bytes: usize,
    pub datasets: usize,
    pub in_flight: usize,
    pub queue_depth: usize,
    pub skeletons: usize,
    pub skeleton_bytes: usize,
}

/// Five-number latency digest of one histogram, in milliseconds.
/// Quantiles are geometric interpolations inside half-octave buckets —
/// estimates, not exact order statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Observations behind this summary.
    pub count: u64,
    /// Exact mean (the histogram keeps the exact sum).
    pub mean_ms: f64,
    /// Estimated median.
    pub p50_ms: f64,
    /// Estimated 95th percentile.
    pub p95_ms: f64,
    /// Estimated 99th percentile.
    pub p99_ms: f64,
    /// Exact maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// The digest of `snap`.
    #[must_use]
    pub fn of(snap: &HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: snap.count,
            mean_ms: snap.mean_ns() * 1e-6,
            p50_ms: snap.p50_ns() * 1e-6,
            p95_ms: snap.p95_ns() * 1e-6,
            p99_ms: snap.p99_ns() * 1e-6,
            max_ms: snap.max_ns as f64 * 1e-6,
        }
    }
}

/// Per-plan slice of the engine's work, keyed by a stable fingerprint
/// of the plan's identity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanBreakdown {
    /// Stable per-process fingerprint of the [`PlanKey`].
    pub plan: u64,
    /// The dataset the plan serves.
    pub dataset: u64,
    /// Times this plan was (re)built.
    pub builds: u64,
    /// Wall time spent in those builds.
    pub build_seconds: f64,
    /// Evaluation sweeps run against this plan.
    pub batches: u64,
    /// Requests that rode in those sweeps.
    pub requests: u64,
    /// Observation points evaluated.
    pub points: u64,
    /// Sweep-latency digest for this plan.
    pub eval: LatencySummary,
}

/// Per-dataset aggregate over every plan serving that dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatasetBreakdown {
    /// The dataset id.
    pub dataset: u64,
    /// Distinct plans that served this dataset.
    pub plans: usize,
    /// Plan builds across those plans.
    pub builds: u64,
    /// Evaluation sweeps across those plans.
    pub batches: u64,
    /// Requests across those sweeps.
    pub requests: u64,
    /// Observation points evaluated.
    pub points: u64,
    /// Sweep-latency digest merged across the dataset's plans.
    pub eval: LatencySummary,
}

/// A point-in-time view of everything the engine counts. Plain data —
/// `Clone`, no atomics, no locks — so exporters can hold or diff
/// snapshots freely. [`EngineStats::to_prometheus`] and
/// [`EngineStats::to_json`] (in [`crate::export`]) serialise it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Queries served from a resident plan.
    pub cache_hits: u64,
    /// Queries that found no resident plan and triggered a build.
    pub cache_misses: u64,
    /// Queries that found a build already in flight and waited for it
    /// (single-flight coalescing).
    pub coalesced_misses: u64,
    /// Plans actually built.
    pub plan_builds: u64,
    /// Total wall time spent building plans.
    pub build_seconds: f64,
    /// Plans evicted to respect the byte budget.
    pub evictions: u64,
    /// Total bytes of evicted plans.
    pub evicted_bytes: u64,
    /// Plans currently resident in the cache.
    pub resident_plans: usize,
    /// Bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// The cache byte budget.
    pub cache_budget_bytes: usize,
    /// Registered datasets.
    pub datasets: usize,
    /// Batched evaluation sweeps executed.
    pub batches: u64,
    /// Requests that rode in those sweeps.
    pub batched_requests: u64,
    /// Largest number of requests coalesced into one sweep.
    pub max_batch: u64,
    /// Total wall time spent in evaluation sweeps.
    pub eval_seconds: f64,
    /// Total observation points evaluated.
    pub eval_points: u64,
    /// Requests the router sent to the direct-summation backend.
    pub routed_direct: u64,
    /// Requests the router sent to the treecode backend.
    pub routed_treecode: u64,
    /// Requests the router sent to the compiled-FMM backend.
    pub routed_fmm: u64,
    /// Queries (or batch groups) served through the sharded fan-out path.
    pub sharded_queries: u64,
    /// Fan-out routing decisions answered entirely by the global
    /// aggregate expansion (one evaluation instead of `k`).
    pub global_shortcuts: u64,
    /// Fan-out `(point, shard)` pairs answered by a shard's skeleton
    /// summary without opening the shard's plan.
    pub skeleton_evals: u64,
    /// Fan-out `(point, shard)` pairs that had to open the shard's plan
    /// because the error bound refused the skeleton summary.
    pub shard_opens: u64,
    /// Global skeletons currently cached.
    pub skeletons: usize,
    /// Heap bytes held by those skeletons.
    pub skeleton_bytes: usize,
    /// Requests admitted past the gate.
    pub admitted: u64,
    /// Requests shed because the queue was full.
    pub shed_overload: u64,
    /// Requests shed because their deadline expired while queued.
    pub shed_deadline: u64,
    /// Requests shed because their tenant exhausted a configured budget.
    pub shed_quota: u64,
    /// Evaluation sweeps whose leader panicked (surfaced to riders as
    /// [`crate::EngineError::WorkerPanicked`]).
    pub worker_panics: u64,
    /// Requests currently being evaluated.
    pub in_flight: usize,
    /// Requests currently waiting for an evaluation slot.
    pub queue_depth: usize,
    /// Largest queue depth observed.
    pub queue_peak: u64,
    /// Plan-build latency digest.
    pub build_latency: LatencySummary,
    /// Evaluation-sweep latency digest.
    pub eval_latency: LatencySummary,
    /// End-to-end request latency digest (admission → response).
    pub query_latency: LatencySummary,
    /// Admission-queue wait digest (zeros dominate when uncontended).
    pub admission_wait: LatencySummary,
    /// Sharded fan-out latency digest (routing + shard sweeps + reduce).
    pub fanout_latency: LatencySummary,
    /// Raw plan-build latency buckets.
    pub build_histogram: HistogramSnapshot,
    /// Raw evaluation-sweep latency buckets.
    pub eval_histogram: HistogramSnapshot,
    /// Raw end-to-end request latency buckets.
    pub query_histogram: HistogramSnapshot,
    /// Raw admission-wait buckets.
    pub wait_histogram: HistogramSnapshot,
    /// Raw sharded fan-out latency buckets.
    pub fanout_histogram: HistogramSnapshot,
    /// Requests that crossed the slow-query threshold.
    pub slow_queries: u64,
    /// Engine-phase spans dropped by the bounded ring under contention.
    pub spans_dropped: u64,
    /// Seqlock validation retries taken while snapshotting the span ring
    /// (a reader raced a writer mid-slot and re-read it).
    pub span_read_retries: u64,
    /// Per-plan work breakdown, sorted by `(dataset, plan)`.
    pub per_plan: Vec<PlanBreakdown>,
    /// Per-dataset aggregate, sorted by dataset id.
    pub per_dataset: Vec<DatasetBreakdown>,
    /// Per-tenant accounts (weights, admissions, sheds, budget charges),
    /// sorted by tenant id. Empty until a request names a tenant.
    pub per_tenant: Vec<TenantBreakdown>,
}

impl EngineStats {
    /// Fraction of plan lookups served from cache (hits over hits +
    /// misses + coalesced misses); 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.coalesced_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per evaluation sweep; 0 when no sweep ran.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cache: {} hits / {} misses / {} coalesced ({:.1}% hit rate), \
             {} resident plans, {}/{} bytes, {} evictions",
            self.cache_hits,
            self.cache_misses,
            self.coalesced_misses,
            100.0 * self.hit_rate(),
            self.resident_plans,
            self.resident_bytes,
            self.cache_budget_bytes,
            self.evictions,
        )?;
        writeln!(
            f,
            "plans: {} builds in {:.3}s; eval: {} batches / {} requests \
             (mean {:.2}, max {}), {} points in {:.3}s",
            self.plan_builds,
            self.build_seconds,
            self.batches,
            self.batched_requests,
            self.mean_batch(),
            self.max_batch,
            self.eval_points,
            self.eval_seconds,
        )?;
        writeln!(
            f,
            "latency ms (p50/p95/p99): build {:.3}/{:.3}/{:.3}, \
             eval {:.3}/{:.3}/{:.3}, query {:.3}/{:.3}/{:.3}; {} slow",
            self.build_latency.p50_ms,
            self.build_latency.p95_ms,
            self.build_latency.p99_ms,
            self.eval_latency.p50_ms,
            self.eval_latency.p95_ms,
            self.eval_latency.p99_ms,
            self.query_latency.p50_ms,
            self.query_latency.p95_ms,
            self.query_latency.p99_ms,
            self.slow_queries,
        )?;
        write!(
            f,
            "admission: {} admitted, {} shed (overload) + {} shed (deadline) \
             + {} shed (quota), {} worker panics, {} in flight, queue {} (peak {})",
            self.admitted,
            self.shed_overload,
            self.shed_deadline,
            self.shed_quota,
            self.worker_panics,
            self.in_flight,
            self.queue_depth,
            self.queue_peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_treecode::TreecodeParams;

    fn key(dataset: u64, p: usize) -> PlanKey {
        PlanKey::new(DatasetId(dataset), &TreecodeParams::fixed(p, 0.6))
    }

    #[test]
    fn counters_roll_up_into_snapshot() {
        let c = StatsCollector::default();
        c.record_hit();
        c.record_hit();
        c.record_miss();
        c.record_coalesced();
        c.record_build(key(0, 4), Duration::from_millis(5));
        c.record_eviction(1024);
        c.record_batch(key(0, 4), 3, 300, Duration::from_millis(2));
        c.record_batch(key(0, 4), 7, 700, Duration::from_millis(2));
        c.record_admitted();
        c.record_shed_overload();
        c.record_shed_deadline();
        c.record_shed_quota();
        c.record_worker_panic();
        c.observe_queue_depth(4);
        c.observe_queue_depth(2);
        let s = c.snapshot(Gauges {
            resident_plans: 1,
            resident_bytes: 4096,
            cache_budget_bytes: 1 << 20,
            datasets: 2,
            in_flight: 1,
            queue_depth: 0,
            ..Gauges::default()
        });
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.coalesced_misses, 1);
        assert_eq!(s.plan_builds, 1);
        assert!(s.build_seconds > 0.004);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 1024);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_requests, 10);
        assert_eq!(s.max_batch, 7);
        assert_eq!(s.eval_points, 1000);
        assert_eq!(s.queue_peak, 4);
        assert_eq!(s.shed_quota, 1);
        assert_eq!(s.worker_panics, 1);
        assert!(s.per_tenant.is_empty(), "tenants are engine-filled");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_batch() - 5.0).abs() < 1e-12);
        // the histograms carry exactly what the counters saw
        assert_eq!(s.build_latency.count, 1);
        assert_eq!(s.eval_latency.count, 2);
        assert_eq!(s.build_histogram.sum_ns, 5_000_000);
        assert_eq!(s.eval_histogram.count, 2);
        assert!(s.eval_latency.p50_ms > 1.0 && s.eval_latency.p99_ms < 3.0);
        assert!((s.build_latency.max_ms - 5.0).abs() < 1e-9);
        // one plan, one dataset in the breakdowns
        assert_eq!(s.per_plan.len(), 1);
        assert_eq!(s.per_plan[0].dataset, 0);
        assert_eq!(s.per_plan[0].builds, 1);
        assert_eq!(s.per_plan[0].batches, 2);
        assert_eq!(s.per_plan[0].requests, 10);
        assert_eq!(s.per_plan[0].points, 1000);
        assert_eq!(s.per_plan[0].eval.count, 2);
        assert_eq!(s.per_dataset.len(), 1);
        assert_eq!(s.per_dataset[0].plans, 1);
        assert_eq!(s.per_dataset[0].eval.count, 2);
        // engine-phase spans were ringed: 1 build + 2 batches
        assert_eq!(c.spans().len(), 3);
        let text = format!("{s}");
        assert!(text.contains("hit rate"));
        assert!(text.contains("admission"));
        assert!(text.contains("latency ms"));
    }

    #[test]
    fn breakdowns_separate_plans_and_aggregate_datasets() {
        let c = StatsCollector::default();
        c.record_build(key(0, 4), Duration::from_millis(1));
        c.record_build(key(0, 5), Duration::from_millis(1));
        c.record_build(key(1, 4), Duration::from_millis(1));
        c.record_batch(key(0, 4), 1, 10, Duration::from_micros(100));
        c.record_batch(key(0, 5), 2, 20, Duration::from_micros(200));
        let s = c.snapshot(Gauges::default());
        assert_eq!(s.per_plan.len(), 3);
        // sorted by (dataset, plan): dataset 1 comes last
        assert_eq!(s.per_plan[2].dataset, 1);
        assert_eq!(s.per_dataset.len(), 2);
        assert_eq!(s.per_dataset[0].dataset, 0);
        assert_eq!(s.per_dataset[0].plans, 2);
        assert_eq!(s.per_dataset[0].requests, 3);
        assert_eq!(s.per_dataset[0].points, 30);
        assert_eq!(s.per_dataset[0].eval.count, 2);
        assert_eq!(s.per_dataset[1].dataset, 1);
        assert_eq!(s.per_dataset[1].plans, 1);
        assert_eq!(s.per_dataset[1].eval.count, 0);
    }

    #[test]
    fn route_counters_split_by_backend() {
        let c = StatsCollector::default();
        c.record_route(Backend::Treecode);
        c.record_route(Backend::Treecode);
        c.record_route(Backend::Fmm);
        c.record_route(Backend::Direct);
        let s = c.snapshot(Gauges::default());
        assert_eq!(s.routed_treecode, 2);
        assert_eq!(s.routed_fmm, 1);
        assert_eq!(s.routed_direct, 1);
    }

    #[test]
    fn slow_queries_cross_the_threshold() {
        let c = StatsCollector::with_slow_threshold(Duration::from_millis(10));
        let ds = DatasetId(3);
        c.record_request(ds, 50, Duration::from_millis(2), Duration::ZERO);
        assert_eq!(c.slow_queries().len(), 0);
        c.record_request(ds, 80, Duration::from_millis(12), Duration::from_millis(4));
        let slow = c.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].dataset, 3);
        assert_eq!(slow[0].points, 80);
        assert_eq!(slow[0].total_ns, 12_000_000);
        assert_eq!(slow[0].wait_ns, 4_000_000);
        let s = c.snapshot(Gauges::default());
        assert_eq!(s.query_latency.count, 2);
        assert_eq!(s.slow_queries, 1);
    }

    #[test]
    fn admission_waits_feed_histogram_but_zero_waits_emit_no_span() {
        let c = StatsCollector::default();
        c.record_admission_wait(Duration::ZERO);
        c.record_admission_wait(Duration::from_millis(3));
        let s = c.snapshot(Gauges::default());
        assert_eq!(s.admission_wait.count, 2);
        assert!((s.admission_wait.max_ms - 3.0).abs() < 1e-9);
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::AdmissionWait);
    }

    #[test]
    fn fanout_counters_and_histogram_roll_up() {
        use crate::fanout::FanoutBreakdown;
        let c = StatsCollector::default();
        let fan = FanoutBreakdown {
            global_shortcuts: 5,
            skeleton_evals: 11,
            opens: 2,
            per_shard: Vec::new(),
        };
        c.record_fanout(&fan, Duration::from_millis(3));
        c.record_fanout(&fan, Duration::from_millis(1));
        let s = c.snapshot(Gauges {
            skeletons: 2,
            skeleton_bytes: 512,
            ..Gauges::default()
        });
        assert_eq!(s.sharded_queries, 2);
        assert_eq!(s.global_shortcuts, 10);
        assert_eq!(s.skeleton_evals, 22);
        assert_eq!(s.shard_opens, 4);
        assert_eq!(s.skeletons, 2);
        assert_eq!(s.skeleton_bytes, 512);
        assert_eq!(s.fanout_latency.count, 2);
        assert_eq!(s.fanout_histogram.sum_ns, 4_000_000);
        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|sp| sp.phase == Phase::ShardFanout));
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
        assert_eq!(s.query_latency, LatencySummary::default());
        assert!(s.per_plan.is_empty());
    }
}
