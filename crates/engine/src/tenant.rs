//! Tenant identity, weights, and budgets.
//!
//! A [`TenantId`] travels with every request. Tenants are cheap: an
//! unregistered id serves at the default weight with no quotas, so
//! single-tenant deployments never touch this module. Registering a
//! [`TenantConfig`] buys two things:
//!
//! - a **weight** for the weighted-fair admission queue
//!   ([`crate::AdmissionGate`]) — a tenant with weight `w` receives `w`
//!   admission slots for every one a weight-1 tenant receives while both
//!   have backlog;
//! - **budgets**: cumulative quotas on plan-cache bytes charged for
//!   builds this tenant triggered and on evaluation milliseconds it
//!   consumed (measured by the same clock that feeds the latency
//!   histograms). Budgets are post-paid — work is debited after it
//!   runs, and a tenant whose cumulative charge has reached a quota is
//!   shed with [`EngineError::QuotaExceeded`] *before* its next request
//!   costs anything. [`TenantTable::reset_budgets`] opens a new billing
//!   window.

use std::collections::HashMap;
use std::time::Duration;

use mbt_check::sync::{Mutex, PoisonError};

use crate::error::EngineError;

/// A tenant's stable identity. `TenantId::DEFAULT` (id 0) is what
/// requests carry when the caller never sets one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant requests belong to unless one is set explicitly.
    pub const DEFAULT: TenantId = TenantId(0);
}

/// One tenant's service terms: fair-share weight plus optional budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Fair-share weight for the admission queue (clamped to ≥ 1).
    /// While two tenants both have backlog, their admission rates are
    /// proportional to their weights.
    pub weight: u32,
    /// Cumulative cap on plan-cache bytes charged to this tenant (each
    /// plan build the tenant triggers debits the plan's resident size).
    /// `None` is unlimited.
    pub plan_bytes_quota: Option<u64>,
    /// Cumulative cap on evaluation milliseconds charged to this tenant
    /// (each served request debits its post-admission wall time). `None`
    /// is unlimited.
    pub eval_ms_quota: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            weight: 1,
            plan_bytes_quota: None,
            eval_ms_quota: None,
        }
    }
}

impl TenantConfig {
    /// A quota-free config with the given fair-share weight.
    #[must_use]
    pub fn weighted(weight: u32) -> TenantConfig {
        TenantConfig {
            weight,
            ..TenantConfig::default()
        }
    }
}

/// One tenant's running account.
#[derive(Debug, Default)]
struct TenantState {
    config: TenantConfig,
    charged_plan_bytes: u64,
    charged_eval_ns: u64,
    requests: u64,
    admitted: u64,
    shed: u64,
}

/// One tenant's slice of an [`crate::EngineStats`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantBreakdown {
    /// The tenant id.
    pub tenant: u32,
    /// The tenant's fair-share weight.
    pub weight: u32,
    /// Requests this tenant submitted (admitted or shed).
    pub requests: u64,
    /// Requests admitted past the gate.
    pub admitted: u64,
    /// Requests shed for any reason (overload, deadline, quota).
    pub shed: u64,
    /// Plan-cache bytes charged against the tenant's budget.
    pub charged_plan_bytes: u64,
    /// Evaluation milliseconds charged against the tenant's budget.
    pub charged_eval_ms: f64,
    /// The plan-bytes quota, if one is configured.
    pub plan_bytes_quota: Option<u64>,
    /// The eval-milliseconds quota, if one is configured.
    pub eval_ms_quota: Option<u64>,
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The engine's tenant registry and accounts, one mutex around both
/// (taken once per request, never per point — the same budget the
/// per-plan stats breakdown lives under).
#[derive(Debug, Default)]
pub(crate) struct TenantTable {
    tenants: Mutex<HashMap<TenantId, TenantState>>,
}

impl TenantTable {
    pub(crate) fn new() -> TenantTable {
        TenantTable::default()
    }

    fn lock(&self) -> mbt_check::sync::MutexGuard<'_, HashMap<TenantId, TenantState>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or replaces) `tenant`'s service terms. Weights are
    /// clamped to ≥ 1 — a zero weight would starve the tenant forever,
    /// which is what quotas are for. Charges survive re-registration.
    pub(crate) fn register(&self, tenant: TenantId, config: TenantConfig) {
        let mut map = self.lock();
        let entry = map.entry(tenant).or_default();
        entry.config = TenantConfig {
            weight: config.weight.max(1),
            ..config
        };
    }

    /// The tenant's fair-share weight (1 for unregistered tenants).
    pub(crate) fn weight(&self, tenant: TenantId) -> u32 {
        self.lock()
            .get(&tenant)
            .map_or(1, |s| s.config.weight.max(1))
    }

    /// Sheds the request if the tenant has exhausted a budget. Also
    /// counts the request (every submission lands in `requests`; callers
    /// follow up with [`TenantTable::note_admitted`] or
    /// [`TenantTable::note_shed`]).
    pub(crate) fn admit_request(&self, tenant: TenantId) -> Result<(), EngineError> {
        let mut map = self.lock();
        let state = map.entry(tenant).or_default();
        state.requests += 1;
        let over_bytes = state
            .config
            .plan_bytes_quota
            .is_some_and(|q| state.charged_plan_bytes >= q);
        if over_bytes {
            state.shed += 1;
            return Err(EngineError::QuotaExceeded {
                tenant,
                resource: "plan_bytes",
            });
        }
        let over_eval = state
            .config
            .eval_ms_quota
            .is_some_and(|q| state.charged_eval_ns / 1_000_000 >= q);
        if over_eval {
            state.shed += 1;
            return Err(EngineError::QuotaExceeded {
                tenant,
                resource: "eval_ms",
            });
        }
        Ok(())
    }

    pub(crate) fn note_admitted(&self, tenant: TenantId) {
        self.lock().entry(tenant).or_default().admitted += 1;
    }

    pub(crate) fn note_shed(&self, tenant: TenantId) {
        self.lock().entry(tenant).or_default().shed += 1;
    }

    /// Debits a plan build's resident bytes to the tenant that
    /// triggered it.
    pub(crate) fn charge_plan_bytes(&self, tenant: TenantId, bytes: usize) {
        self.lock().entry(tenant).or_default().charged_plan_bytes += bytes as u64;
    }

    /// Debits one served request's post-admission wall time.
    pub(crate) fn charge_eval(&self, tenant: TenantId, took: Duration) {
        self.lock().entry(tenant).or_default().charged_eval_ns += saturating_ns(took);
    }

    /// Zeroes `tenant`'s charges — the start of a new billing window.
    /// Returns whether the tenant had an account.
    pub(crate) fn reset_budgets(&self, tenant: TenantId) -> bool {
        let mut map = self.lock();
        match map.get_mut(&tenant) {
            Some(state) => {
                state.charged_plan_bytes = 0;
                state.charged_eval_ns = 0;
                true
            }
            None => false,
        }
    }

    /// Every tenant's account, sorted by id.
    pub(crate) fn breakdown(&self) -> Vec<TenantBreakdown> {
        let map = self.lock();
        let mut rows: Vec<TenantBreakdown> = map
            .iter()
            .map(|(id, s)| TenantBreakdown {
                tenant: id.0,
                weight: s.config.weight.max(1),
                requests: s.requests,
                admitted: s.admitted,
                shed: s.shed,
                charged_plan_bytes: s.charged_plan_bytes,
                charged_eval_ms: s.charged_eval_ns as f64 * 1e-6,
                plan_bytes_quota: s.config.plan_bytes_quota,
                eval_ms_quota: s.config.eval_ms_quota,
            })
            .collect();
        rows.sort_by_key(|r| r.tenant);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_tenant_has_default_terms() {
        let table = TenantTable::new();
        assert_eq!(table.weight(TenantId(7)), 1);
        assert!(table.admit_request(TenantId(7)).is_ok());
        let rows = table.breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tenant, 7);
        assert_eq!(rows[0].requests, 1);
        assert_eq!(rows[0].plan_bytes_quota, None);
    }

    #[test]
    fn weights_clamp_and_survive_lookup() {
        let table = TenantTable::new();
        table.register(TenantId(1), TenantConfig::weighted(8));
        table.register(TenantId(2), TenantConfig::weighted(0));
        assert_eq!(table.weight(TenantId(1)), 8);
        assert_eq!(table.weight(TenantId(2)), 1, "zero weight clamps to 1");
    }

    #[test]
    fn plan_bytes_quota_sheds_once_reached() {
        let table = TenantTable::new();
        let t = TenantId(3);
        table.register(
            t,
            TenantConfig {
                plan_bytes_quota: Some(1000),
                ..TenantConfig::default()
            },
        );
        assert!(table.admit_request(t).is_ok());
        table.charge_plan_bytes(t, 999);
        assert!(table.admit_request(t).is_ok(), "under budget still serves");
        table.charge_plan_bytes(t, 1);
        assert_eq!(
            table.admit_request(t).unwrap_err(),
            EngineError::QuotaExceeded {
                tenant: t,
                resource: "plan_bytes"
            }
        );
        // the shed was counted against the tenant
        assert_eq!(table.breakdown()[0].shed, 1);
        // a new billing window serves again
        assert!(table.reset_budgets(t));
        assert!(table.admit_request(t).is_ok());
        assert!(!table.reset_budgets(TenantId(99)));
    }

    #[test]
    fn eval_quota_counts_milliseconds() {
        let table = TenantTable::new();
        let t = TenantId(4);
        table.register(
            t,
            TenantConfig {
                eval_ms_quota: Some(10),
                ..TenantConfig::default()
            },
        );
        table.charge_eval(t, Duration::from_millis(9));
        assert!(table.admit_request(t).is_ok());
        table.charge_eval(t, Duration::from_millis(1));
        assert_eq!(
            table.admit_request(t).unwrap_err(),
            EngineError::QuotaExceeded {
                tenant: t,
                resource: "eval_ms"
            }
        );
        let row = table.breakdown()[0];
        assert!((row.charged_eval_ms - 10.0).abs() < 1e-9);
        assert_eq!(row.eval_ms_quota, Some(10));
    }

    #[test]
    fn charges_survive_reregistration() {
        let table = TenantTable::new();
        let t = TenantId(5);
        table.charge_plan_bytes(t, 512);
        table.register(t, TenantConfig::weighted(3));
        let row = table.breakdown()[0];
        assert_eq!(row.charged_plan_bytes, 512);
        assert_eq!(row.weight, 3);
    }
}
