//! The weighted-fair admission core: a virtual-time WFQ over per-tenant
//! queues with **direct slot hand-off**.
//!
//! [`FairGate`] is deliberately policy-free — no stats, no `EngineError`,
//! nothing but the queueing protocol — so the interleaving models in
//! `mbt-check` can explore it with a small state space. The engine-facing
//! wrapper ([`crate::AdmissionGate`]) maps its [`Admission`] outcomes to
//! stats counters and typed errors.
//!
//! # Virtual-time tags
//!
//! Admission order follows classic virtual-time weighted fair queueing,
//! in integer arithmetic so comparisons are exact:
//!
//! ```text
//! cost(w)          = VT_SCALE / max(w, 1)
//! start(t)         = max(vtime, last_finish[t])
//! finish           = start(t) + cost(w)        // the waiter's tag
//! last_finish[t]   = finish
//! ```
//!
//! A freed slot goes to the waiter with the smallest `(finish, seq)`
//! across all tenant queue heads; `vtime` then advances to that finish
//! tag. Backlogged tenants therefore admit in proportion to their
//! weights, an idle tenant's first arrival starts at the current virtual
//! time (no credit hoarding), and when the queue drains completely the
//! clock resets to zero so the tags never grow without bound.
//!
//! # No barging
//!
//! The fix for the old gate's starvation bug is structural: `release`
//! decrements `in_flight` and *hands the slot to the scheduled head
//! inside the same critical section* (the head's seq moves to a
//! `granted` set and `in_flight` is re-incremented on its behalf before
//! the lock drops). A newly arriving request can only take the fast path
//! while `queued == 0`, so there is no window — not even a condvar
//! wake-up race — in which a newcomer can observe a free slot that is
//! owed to a waiter.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use mbt_check::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::tenant::TenantId;

/// Fixed-point scale for the virtual clock: one slot at weight 1 costs
/// `VT_SCALE` ticks, weight `w` costs `VT_SCALE / w`. At 2^20 per slot a
/// `u64` clock lasts ~2^44 admissions between resets.
pub const VT_SCALE: u64 = 1 << 20;

/// What happened to an admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was granted after `waited` in the queue (zero on the fast
    /// path).
    Admitted {
        /// Time spent queued before the grant.
        waited: Duration,
    },
    /// The queue was full; the request was shed without waiting.
    Overloaded {
        /// Requests holding evaluation slots at the time.
        in_flight: usize,
        /// Requests already queued at the time.
        queued: usize,
    },
    /// The request's deadline expired before a slot was granted.
    DeadlineExpired,
}

#[derive(Debug)]
struct Waiter {
    seq: u64,
    finish: u64,
}

#[derive(Debug, Default)]
struct WfqState {
    in_flight: usize,
    queued: usize,
    /// The virtual clock: advances to each dispatched finish tag.
    vtime: u64,
    /// Monotonic arrival counter; total order and tie-break.
    seq: u64,
    /// Per-tenant FIFO of waiters, each carrying its finish tag.
    queues: HashMap<TenantId, VecDeque<Waiter>>,
    /// Finish tag of each tenant's most recent enqueue — the start bound
    /// that keeps one tenant's burst from all stamping the same tag.
    last_finish: HashMap<TenantId, u64>,
    /// Seqs whose slot has been handed over but not yet claimed by the
    /// waking waiter. `in_flight` already counts them.
    granted: HashSet<u64>,
}

impl WfqState {
    /// Stamps and enqueues a waiter, returning its seq.
    fn enqueue(&mut self, tenant: TenantId, weight: u32) -> u64 {
        let cost = VT_SCALE / u64::from(weight.max(1));
        let start = self
            .last_finish
            .get(&tenant)
            .copied()
            .unwrap_or(0)
            .max(self.vtime);
        let finish = start.saturating_add(cost);
        self.last_finish.insert(tenant, finish);
        let seq = self.seq;
        self.seq += 1;
        self.queues
            .entry(tenant)
            .or_default()
            .push_back(Waiter { seq, finish });
        self.queued += 1;
        seq
    }

    /// The tenant whose queue head holds the smallest `(finish, seq)`.
    fn min_head(&self) -> Option<TenantId> {
        self.queues
            .iter()
            .filter_map(|(t, q)| q.front().map(|w| (w.finish, w.seq, *t)))
            .min()
            .map(|(_, _, t)| t)
    }

    /// Hands free slots to scheduled heads until the gate is full or the
    /// queue is empty. Returns whether anything was granted.
    fn dispatch(&mut self, max_in_flight: usize) -> bool {
        let mut granted_any = false;
        while self.in_flight < max_in_flight {
            let Some(tenant) = self.min_head() else { break };
            let Some(queue) = self.queues.get_mut(&tenant) else {
                break;
            };
            let Some(waiter) = queue.pop_front() else {
                break;
            };
            if queue.is_empty() {
                self.queues.remove(&tenant);
            }
            self.queued -= 1;
            self.in_flight += 1; // the slot is the waiter's from here on
            self.vtime = self.vtime.max(waiter.finish);
            self.granted.insert(waiter.seq);
            granted_any = true;
        }
        self.maybe_reset();
        granted_any
    }

    /// Removes a timed-out waiter from its tenant queue.
    fn remove(&mut self, tenant: TenantId, seq: u64) {
        if let Some(queue) = self.queues.get_mut(&tenant) {
            if let Some(at) = queue.iter().position(|w| w.seq == seq) {
                queue.remove(at);
                self.queued -= 1;
                if queue.is_empty() {
                    self.queues.remove(&tenant);
                }
            }
        }
        self.maybe_reset();
    }

    /// Once the queue fully drains, rewind the virtual clock so tags
    /// stay small and a long-idle system looks fresh to every tenant.
    fn maybe_reset(&mut self) {
        if self.queued == 0 {
            self.vtime = 0;
            self.last_finish.clear();
        }
    }
}

/// The policy-free weighted-fair gate. One per engine, wrapped by
/// [`crate::AdmissionGate`].
#[derive(Debug)]
pub struct FairGate {
    max_in_flight: usize,
    max_queued: usize,
    state: Mutex<WfqState>,
    freed: Condvar,
}

impl FairGate {
    /// A gate admitting `max_in_flight` concurrent requests and queueing
    /// at most `max_queued` more (across all tenants).
    #[must_use]
    pub fn new(max_in_flight: usize, max_queued: usize) -> FairGate {
        FairGate {
            max_in_flight: max_in_flight.max(1),
            max_queued,
            state: Mutex::new(WfqState::default()),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WfqState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `(in_flight, queued)` right now. Slots already handed to waiters
    /// that have not yet woken count as in flight — they are spoken for.
    pub fn depth(&self) -> (usize, usize) {
        let st = self.lock();
        (st.in_flight, st.queued)
    }

    /// Admits `tenant` at `weight`, blocking in its fair queue while the
    /// gate is full. The caller owns one slot on `Admitted` and must
    /// pair it with exactly one [`FairGate::release`].
    pub fn admit(&self, tenant: TenantId, weight: u32, deadline: Option<Instant>) -> Admission {
        self.admit_observed(tenant, weight, deadline, |_| {})
    }

    /// [`FairGate::admit`] with an enqueue observation hook: if the
    /// request has to queue, `on_enqueue` is called once (under the gate
    /// lock) with the queue depth including it — the wrapper feeds this
    /// to the queue-peak gauge without the core knowing about stats.
    pub fn admit_observed(
        &self,
        tenant: TenantId,
        weight: u32,
        deadline: Option<Instant>,
        on_enqueue: impl FnOnce(usize),
    ) -> Admission {
        let arrived = Instant::now();
        let mut st = self.lock();
        // Fast path only while nobody is queued: every freed slot is
        // handed to a waiter under the lock, so a non-empty queue means
        // the gate is full *including* slots owed to waiters.
        if st.queued == 0 && st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            return Admission::Admitted {
                waited: Duration::ZERO,
            };
        }
        if st.queued >= self.max_queued {
            return Admission::Overloaded {
                in_flight: st.in_flight,
                queued: st.queued,
            };
        }
        let seq = st.enqueue(tenant, weight);
        on_enqueue(st.queued);
        // A release may have raced our enqueue; never leave a free slot
        // idle while we park.
        if st.dispatch(self.max_in_flight) {
            self.freed.notify_all();
        }
        loop {
            if st.granted.remove(&seq) {
                // The slot was handed to us (in_flight already counts
                // it). Even if our deadline lapsed while waking, taking
                // the grant is correct — the engine re-checks deadlines
                // after planning, and declining would strand the slot.
                return Admission::Admitted {
                    waited: arrived.elapsed(),
                };
            }
            match deadline {
                None => {
                    st = self.freed.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.remove(tenant, seq);
                        return Admission::DeadlineExpired;
                    }
                    let (guard, _timed_out) = self
                        .freed
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            }
        }
    }

    /// Returns a slot. The slot is handed to the scheduled head (if any)
    /// before the lock drops — newcomers can never barge past it.
    pub fn release(&self) {
        let mut st = self.lock();
        st.in_flight = st.in_flight.saturating_sub(1);
        st.dispatch(self.max_in_flight);
        drop(st);
        // Wake every waiter: the granted one claims its slot, and any
        // whose deadline meanwhile expired must notice and shed itself.
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(st: &mut WfqState) -> Vec<TenantId> {
        let mut order = Vec::new();
        while let Some(t) = st.min_head() {
            let q = st.queues.get_mut(&t).unwrap();
            let w = q.pop_front().unwrap();
            if q.is_empty() {
                st.queues.remove(&t);
            }
            st.queued -= 1;
            st.vtime = st.vtime.max(w.finish);
            order.push(t);
        }
        order
    }

    #[test]
    fn tags_interleave_in_weight_proportion() {
        // Tenant A at weight 2, tenant B at weight 1, both fully
        // backlogged: A must admit twice for each B.
        let (a, b) = (TenantId(1), TenantId(2));
        let mut st = WfqState::default();
        for _ in 0..4 {
            st.enqueue(a, 2);
        }
        for _ in 0..2 {
            st.enqueue(b, 1);
        }
        assert_eq!(drain_order(&mut st), vec![a, a, b, a, a, b]);
    }

    #[test]
    fn equal_weights_tie_break_by_arrival() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut st = WfqState::default();
        st.enqueue(a, 1);
        st.enqueue(b, 1);
        st.enqueue(a, 1);
        st.enqueue(b, 1);
        assert_eq!(drain_order(&mut st), vec![a, b, a, b]);
    }

    #[test]
    fn late_arrival_starts_at_current_vtime() {
        // A tenant that sat idle while others drained cannot hoard
        // credit: its first tag starts at the advanced virtual clock.
        let (a, b) = (TenantId(1), TenantId(2));
        let mut st = WfqState::default();
        for _ in 0..3 {
            st.enqueue(a, 1);
        }
        // drain two of A's waiters, advancing vtime to 2 * VT_SCALE
        st.queues.get_mut(&a).unwrap().pop_front();
        st.queues.get_mut(&a).unwrap().pop_front();
        st.queued -= 2;
        st.vtime = 2 * VT_SCALE;
        st.enqueue(b, 1);
        // B's tag is 3 * VT_SCALE — after A's remaining 3 * VT_SCALE
        // head only by tie-break, not a clean sweep of the queue
        assert_eq!(st.queues[&b].front().unwrap().finish, 3 * VT_SCALE);
    }

    #[test]
    fn clock_resets_when_queue_drains() {
        let t = TenantId(9);
        let mut st = WfqState::default();
        st.enqueue(t, 1);
        let _ = st.dispatch(1);
        assert_eq!(st.queued, 0);
        assert_eq!(st.vtime, 0, "drained queue rewinds the clock");
        assert!(st.last_finish.is_empty());
        assert_eq!(st.in_flight, 1);
    }

    #[test]
    fn fast_path_and_overload() {
        let gate = FairGate::new(2, 0);
        assert_eq!(
            gate.admit(TenantId(0), 1, None),
            Admission::Admitted {
                waited: Duration::ZERO
            }
        );
        assert!(matches!(
            gate.admit(TenantId(0), 1, None),
            Admission::Admitted { .. }
        ));
        assert_eq!(
            gate.admit(TenantId(0), 1, None),
            Admission::Overloaded {
                in_flight: 2,
                queued: 0
            }
        );
        gate.release();
        assert_eq!(gate.depth(), (1, 0));
    }

    #[test]
    fn queued_waiter_sheds_on_deadline() {
        let gate = FairGate::new(1, 4);
        assert!(matches!(
            gate.admit(TenantId(0), 1, None),
            Admission::Admitted { .. }
        ));
        let t0 = Instant::now();
        let res = gate.admit(
            TenantId(1),
            1,
            Some(Instant::now() + Duration::from_millis(30)),
        );
        assert_eq!(res, Admission::DeadlineExpired);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(gate.depth(), (1, 0), "the shed waiter left the queue");
    }

    /// The barging regression (ISSUE 10): with a waiter parked and a hot
    /// arrival stream racing it, the freed slot must go to the waiter —
    /// the old gate handed it to whichever newcomer won the lock first.
    #[test]
    fn freed_slot_goes_to_waiter_not_newcomers() {
        let gate = FairGate::new(1, 16);
        assert!(matches!(
            gate.admit(TenantId(0), 1, None),
            Admission::Admitted { .. }
        ));
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                gate.admit(
                    TenantId(1),
                    1,
                    Some(Instant::now() + Duration::from_secs(5)),
                )
            });
            // wait until the waiter is parked in the queue
            while gate.depth() != (1, 1) {
                std::thread::yield_now();
            }
            // free the slot; it is handed to the waiter under the lock
            gate.release();
            // a hot stream of newcomers (already past their deadlines, so
            // they cannot block) must all fail to take the waiter's slot
            // — even though the waiter may not have woken yet
            let now = Instant::now();
            let past = now.checked_sub(Duration::from_millis(1)).unwrap_or(now);
            for _ in 0..8 {
                let got = gate.admit(TenantId(2), 1, Some(past));
                assert_eq!(got, Admission::DeadlineExpired, "newcomer barged");
            }
            assert!(matches!(waiter.join().unwrap(), Admission::Admitted { .. }));
        });
        assert_eq!(gate.depth(), (1, 0));
        gate.release();
        assert_eq!(gate.depth(), (0, 0));
    }

    /// Two backlogged tenants with 3:1 weights admit ~3:1 through a
    /// width-1 gate (exact by the tag math; threads only add timing).
    #[test]
    fn backlogged_tenants_admit_by_weight() {
        let gate = FairGate::new(1, 64);
        let order = Mutex::new(Vec::new());
        assert!(matches!(
            gate.admit(TenantId(0), 1, None),
            Admission::Admitted { .. }
        ));
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    if let Admission::Admitted { .. } = gate.admit(TenantId(1), 3, None) {
                        order.lock().unwrap().push(TenantId(1));
                        gate.release();
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    if let Admission::Admitted { .. } = gate.admit(TenantId(2), 1, None) {
                        order.lock().unwrap().push(TenantId(2));
                        gate.release();
                    }
                });
            }
            // park everyone, then open the gate
            while gate.depth().1 < 8 {
                std::thread::yield_now();
            }
            gate.release();
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 8);
        // among the first four admissions, the weight-3 tenant got at
        // least three (exact ratio depends on enqueue arrival order)
        let heavy_early = order[..4].iter().filter(|t| **t == TenantId(1)).count();
        assert!(heavy_early >= 3, "admission order {order:?}");
    }
}
