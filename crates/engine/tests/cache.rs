//! Property tests of the plan cache's residency policy: [`ByteLru`]
//! against a brute-force reference model.
//!
//! The model keeps entries in an explicit recency-ordered `Vec` and
//! re-derives every decision (eviction victims, refusals, totals) from
//! first principles, so any divergence in the real structure's accounting
//! or LRU ordering shows up as a concrete operation sequence.

use mbt_engine::ByteLru;
use proptest::prelude::*;

/// Reference model: entries as `(key, bytes)` ordered least- to
/// most-recently used.
#[derive(Debug, Default)]
struct Model {
    budget: usize,
    order: Vec<(u32, usize)>,
}

impl Model {
    fn new(budget: usize) -> Model {
        Model {
            budget,
            order: Vec::new(),
        }
    }

    fn total(&self) -> usize {
        self.order.iter().map(|e| e.1).sum()
    }

    fn get(&mut self, key: u32) -> bool {
        if let Some(i) = self.order.iter().position(|e| e.0 == key) {
            let e = self.order.remove(i);
            self.order.push(e);
            true
        } else {
            false
        }
    }

    /// Mirrors `ByteLru::insert`: returns `(admitted, evicted keys in
    /// eviction order)`.
    fn insert(&mut self, key: u32, bytes: usize) -> (bool, Vec<u32>) {
        let mut evicted = Vec::new();
        if let Some(i) = self.order.iter().position(|e| e.0 == key) {
            self.order.remove(i);
            evicted.push(key);
        }
        if bytes > self.budget {
            return (false, evicted);
        }
        while self.total() + bytes > self.budget {
            let (k, _) = self.order.remove(0); // least recently used
            evicted.push(k);
        }
        self.order.push((key, bytes));
        (true, evicted)
    }
}

/// One scripted operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u32),
    Insert(u32, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u32..2, 0u32..8, 1usize..140).prop_map(|(kind, key, bytes)| {
            if kind == 0 {
                Op::Get(key)
            } else {
                Op::Insert(key, bytes)
            }
        }),
        1..80,
    )
}

/// One scripted operation against a mutex-guarded cache, where a holder
/// may die mid-critical-section (after a *completed* mutation — the
/// engine's pattern: panics happen in validation hooks, not halfway
/// through `ByteLru`'s own bookkeeping).
#[derive(Debug, Clone, Copy)]
enum PoisonOp {
    Get(u32),
    Insert(u32, usize),
    /// Completes `Insert`, then panics while still holding the lock.
    InsertThenPanic(u32, usize),
}

fn arb_poison_ops() -> impl Strategy<Value = Vec<PoisonOp>> {
    prop::collection::vec(
        (0u32..4, 0u32..8, 1usize..140).prop_map(|(kind, key, bytes)| match kind {
            0 => PoisonOp::Get(key),
            3 => PoisonOp::InsertThenPanic(key, bytes),
            _ => PoisonOp::Insert(key, bytes),
        }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary operation sequences the cache never exceeds its
    /// byte budget, its accounting matches a recomputed sum, and every
    /// hit/admission/eviction decision matches the reference model —
    /// including the *order* evictions happen in (strict LRU).
    #[test]
    fn byte_lru_matches_model(budget in 50usize..200, ops in arb_ops()) {
        let mut lru: ByteLru<u32, u32> = ByteLru::new(budget);
        let mut model = Model::new(budget);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Get(k) => {
                    let real = lru.get(&k).is_some();
                    let expected = model.get(k);
                    prop_assert_eq!(real, expected, "get({}) diverged at step {}", k, step);
                }
                Op::Insert(k, bytes) => {
                    let ins = lru.insert(k, k, bytes);
                    let (admitted, evicted) = model.insert(k, bytes);
                    prop_assert_eq!(
                        ins.admitted, admitted,
                        "insert({}, {}) admission diverged at step {}", k, bytes, step
                    );
                    let real_evicted: Vec<u32> = ins.evicted.iter().map(|e| e.0).collect();
                    prop_assert_eq!(
                        real_evicted, evicted,
                        "insert({}, {}) eviction order diverged at step {}", k, bytes, step
                    );
                }
            }
            prop_assert!(lru.check_invariants().is_ok(), "{:?}", lru.check_invariants());
            prop_assert!(lru.total_bytes() <= budget);
            prop_assert_eq!(lru.total_bytes(), model.total());
            prop_assert_eq!(lru.len(), model.order.len());
        }
    }

    /// The engine recovers poisoned locks with
    /// `unwrap_or_else(PoisonError::into_inner)` (a panicking holder —
    /// e.g. a `validate`-mode invariant check — must not wedge serving).
    /// This drives that exact recovery path: holders panic while
    /// holding the lock at arbitrary points in the schedule, and the
    /// cache must keep matching the model and its own invariants
    /// through every poisoning.
    #[test]
    fn byte_lru_survives_poisoned_mutex(budget in 50usize..200, ops in arb_poison_ops()) {
        use std::sync::{Mutex, PoisonError};

        let lru: Mutex<ByteLru<u32, u32>> = Mutex::new(ByteLru::new(budget));
        let mut model = Model::new(budget);
        let mut poisoned = false;
        for (step, op) in ops.iter().enumerate() {
            match *op {
                PoisonOp::Get(k) => {
                    let mut g = lru.lock().unwrap_or_else(PoisonError::into_inner);
                    let real = g.get(&k).is_some();
                    let expected = model.get(k);
                    prop_assert_eq!(real, expected, "get({}) diverged at step {}", k, step);
                }
                PoisonOp::Insert(k, bytes) => {
                    let mut g = lru.lock().unwrap_or_else(PoisonError::into_inner);
                    let ins = g.insert(k, k, bytes);
                    let (admitted, _) = model.insert(k, bytes);
                    prop_assert_eq!(ins.admitted, admitted, "insert diverged at step {}", step);
                }
                PoisonOp::InsertThenPanic(k, bytes) => {
                    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut g = lru.lock().unwrap_or_else(PoisonError::into_inner);
                        g.insert(k, k, bytes);
                        panic!("lock holder dies after mutating");
                    }));
                    prop_assert!(unwound.is_err());
                    prop_assert!(lru.is_poisoned());
                    poisoned = true;
                    // the completed mutation is still there — mirror it
                    model.insert(k, bytes);
                }
            }
            let mut g = lru.lock().unwrap_or_else(PoisonError::into_inner);
            prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
            prop_assert!(g.total_bytes() <= budget);
            prop_assert_eq!(g.total_bytes(), model.total());
            prop_assert_eq!(g.len(), model.order.len());
            // recency survived poisoning too: every resident model key hits
            let resident: Vec<u32> = model.order.iter().map(|e| e.0).collect();
            for k in resident {
                prop_assert!(g.get(&k).is_some());
                model.get(k);
            }
        }
        let _ = poisoned;
    }
}
