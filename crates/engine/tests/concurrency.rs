//! Concurrency acceptance tests: single-flight plan construction and
//! bit-exact batched serving.
//!
//! One `#[test]` per file section would let the harness run them in
//! parallel threads of one process — fine here, because each test uses
//! *relative* counter deltas on its own engine instance, and the
//! single-flight assertion uses the engine's own `plan_builds` stat
//! (scoped to the instance) rather than the process-global counters.

use std::sync::Arc;

use mbt_engine::{Accuracy, CacheOutcome, Engine, EngineConfig, QueryRequest};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_treecode::Treecode;

fn particles() -> Vec<Particle> {
    uniform_cube(3_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 17)
}

fn thread_points(t: usize) -> Vec<Vec3> {
    (0..40)
        .map(|i| {
            let u = (t * 1000 + i) as f64;
            Vec3::new(1.5 * u.sin(), 1.5 * (0.3 * u).cos(), (0.9 * u).sin())
        })
        .collect()
}

/// N threads race on one cold `(dataset, accuracy)` key: exactly one
/// build happens, everyone gets served, and every caller's values are
/// bit-identical to a lone `Treecode::potentials_at` with identically
/// resolved parameters.
#[test]
fn concurrent_cold_misses_build_exactly_once_and_serve_exact_values() {
    let n_threads = 16;
    let engine = Arc::new(Engine::new(EngineConfig::default()).expect("valid config"));
    let ps = particles();
    let id = engine.register("shared", ps.clone()).expect("registers");
    let accuracy = Accuracy::Adaptive { p_min: 4 };

    // the reference: a treecode built directly with the same parameters
    // the engine will resolve this accuracy to (profile-aware: the
    // resolver may downgrade the near field to f32 for this dataset)
    let params = engine.resolve_params_for(id, accuracy).expect("resolves");
    let reference = Treecode::new(&ps, params).expect("reference builds");

    let reference = &reference;
    let outcomes: Vec<CacheOutcome> = std::thread::scope(|s| {
        // the collect is the point: spawn every thread before joining any,
        // so all 16 queries race on the cold key
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let points = thread_points(t);
                    let response = engine
                        .query(QueryRequest::potentials(id, accuracy, points.clone()))
                        .expect("query succeeds");
                    let direct = reference.potentials_at(&points);
                    assert_eq!(
                        response.output.potentials().expect("potential query"),
                        direct.values.as_slice(),
                        "batched serving must be bit-identical to a lone evaluation"
                    );
                    response.cache
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    let stats = engine.stats();
    assert_eq!(
        stats.plan_builds, 1,
        "N concurrent cold misses must run exactly one build"
    );
    assert_eq!(stats.cache_misses, 1, "exactly one caller is the builder");
    let built = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Built)
        .count();
    assert_eq!(built, 1);
    // everyone else either waited on the in-flight build or arrived after
    // it finished and hit cache
    assert_eq!(
        stats.coalesced_misses + stats.cache_hits,
        (n_threads - 1) as u64
    );
    assert_eq!(stats.admitted, n_threads as u64);
    assert_eq!(stats.batched_requests, n_threads as u64);
    assert_eq!(stats.resident_plans, 1);
}

/// The same race through `query_batch`: one call carrying all requests
/// behaves identically (one build, exact values, one admission).
#[test]
fn query_batch_is_bit_identical_and_single_build() {
    let engine = Engine::new(EngineConfig::default()).expect("valid config");
    let ps = particles();
    let id = engine.register("shared", ps.clone()).expect("registers");
    let accuracy = Accuracy::Tolerance { tol: 1e-6 };
    let params = engine.resolve_params_for(id, accuracy).expect("resolves");
    let reference = Treecode::new(&ps, params).expect("reference builds");

    let requests: Vec<QueryRequest> = (0..6)
        .map(|t| QueryRequest::potentials(id, accuracy, thread_points(t)))
        .collect();
    let results = engine.query_batch(&requests);
    for (t, result) in results.iter().enumerate() {
        let response = result.as_ref().expect("batch entry succeeds");
        let direct = reference.potentials_at(&thread_points(t));
        assert_eq!(
            response.output.potentials().expect("potential query"),
            direct.values.as_slice()
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 1);
    assert_eq!(stats.admitted, 1, "one batch call is one admission unit");
    assert_eq!(
        stats.batches, 1,
        "same-key requests coalesce into one sweep"
    );
    assert_eq!(stats.max_batch, 6);
}
