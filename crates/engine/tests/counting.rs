//! The cache-hit acceptance test: a served-from-cache query performs
//! **zero** tree builds and **zero** upward passes.
//!
//! Proven non-circularly with process-wide construction counters owned by
//! the layers themselves (`mbt_tree::build_count`,
//! `mbt_treecode::upward_pass_count`) rather than the engine's own
//! bookkeeping — if the engine secretly rebuilt per query, these counters
//! would advance no matter what its stats claimed.
//!
//! This file deliberately holds a single `#[test]` so no parallel test in
//! the same process can advance the global counters mid-measurement.

use mbt_engine::{Accuracy, CacheOutcome, Engine, EngineConfig, QueryRequest};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::Vec3;

#[test]
fn cache_hit_does_no_build_and_no_upward_pass() {
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");
    let id = engine
        .register(
            "tenant",
            uniform_cube(2_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 5),
        )
        .expect("dataset registers");
    let accuracy = Accuracy::Adaptive { p_min: 4 };
    let points: Vec<Vec3> = (0..100)
        .map(|i| Vec3::new(1.1 + f64::from(i) * 0.02, -0.4, 0.9))
        .collect();

    // cold query: must build (tree + upward pass happen exactly once)
    let builds_before = mbt_tree::build_count();
    let upward_before = mbt_treecode::upward_pass_count();
    let cold = engine
        .query(QueryRequest::potentials(id, accuracy, points.clone()))
        .expect("cold query succeeds");
    assert_eq!(cold.cache, CacheOutcome::Built);
    assert_eq!(
        mbt_tree::build_count(),
        builds_before + 1,
        "the cold query must build exactly one tree"
    );
    assert_eq!(
        mbt_treecode::upward_pass_count(),
        upward_before + 1,
        "the cold query must run exactly one upward pass"
    );

    // hot queries: zero builds, zero upward passes — the whole point
    let builds_cold = mbt_tree::build_count();
    let upward_cold = mbt_treecode::upward_pass_count();
    for _ in 0..5 {
        let hot = engine
            .query(QueryRequest::potentials(id, accuracy, points.clone()))
            .expect("hot query succeeds");
        assert_eq!(hot.cache, CacheOutcome::Hit);
        assert_eq!(
            hot.output, cold.output,
            "cached plan must serve identical values"
        );
    }
    assert_eq!(
        mbt_tree::build_count(),
        builds_cold,
        "cache hits must not build trees"
    );
    assert_eq!(
        mbt_treecode::upward_pass_count(),
        upward_cold,
        "cache hits must not run upward passes"
    );

    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 1);
    assert_eq!(stats.cache_hits, 5);
    assert_eq!(stats.cache_misses, 1);
}
