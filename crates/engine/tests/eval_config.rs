//! Plan-identity regression: requests that differ only in execution
//! configuration (`eval_chunk`, `eval_mode`) must share **one** cached
//! plan. Before the `PlanKey`/`EvalConfig` split, every chunk width
//! duplicated an entire octree + coefficient arena in the cache.

use mbt_engine::{Accuracy, CacheOutcome, Engine, EngineConfig, QueryRequest};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::Vec3;
use mbt_treecode::{EvalMode, TreecodeParams};

fn engine_with_data() -> (Engine, mbt_engine::DatasetId) {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let ps = uniform_cube(600, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 17);
    let id = engine.register("tenant", ps).unwrap();
    (engine, id)
}

fn points(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| Vec3::new(1.5 + i as f64 * 0.02, 0.4, -0.2))
        .collect()
}

#[test]
fn requests_differing_only_in_eval_config_share_one_plan() {
    let (engine, id) = engine_with_data();
    let base = TreecodeParams::fixed(4, 0.6);
    let variants = [
        base,
        base.with_eval_chunk(1),
        base.with_eval_chunk(7),
        base.with_eval_chunk(512),
        base.with_eval_mode(EvalMode::Compiled),
        base.with_eval_chunk(16).with_eval_mode(EvalMode::Compiled),
    ];
    let pts = points(20);
    let mut outputs = Vec::new();
    for (i, params) in variants.iter().enumerate() {
        let r = engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Params(*params),
                pts.clone(),
            ))
            .unwrap();
        // only the very first request builds; every variant hits
        let expected = if i == 0 {
            CacheOutcome::Built
        } else {
            CacheOutcome::Hit
        };
        assert_eq!(r.cache, expected, "variant {i}");
        outputs.push(r.output);
    }

    let s = engine.stats();
    assert_eq!(s.plan_builds, 1, "eval-config variants rebuilt the plan");
    assert_eq!(s.resident_plans, 1, "eval-config variants duplicated plans");
    assert_eq!(s.cache_hits, variants.len() as u64 - 1);
    assert_eq!(s.per_plan.len(), 1);

    // scalar sweeps are bit-invariant across chunk widths…
    for i in 1..4 {
        assert_eq!(outputs[i], outputs[0], "scalar variant {i} diverged");
    }
    // …and the compiled mode agrees to round-off
    for i in 4..6 {
        for (a, b) in outputs[i]
            .potentials()
            .unwrap()
            .iter()
            .zip(outputs[0].potentials().unwrap())
        {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "compiled variant {i} diverged: {a} vs {b}"
            );
        }
    }
}

#[test]
fn build_relevant_params_still_get_their_own_plans() {
    let (engine, id) = engine_with_data();
    let pts = points(5);
    let base = TreecodeParams::fixed(4, 0.6);
    for params in [
        base,
        base.with_leaf_capacity(8),
        base.with_softening(1e-3),
        TreecodeParams::fixed(5, 0.6),
    ] {
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Params(params),
                pts.clone(),
            ))
            .unwrap();
    }
    let s = engine.stats();
    assert_eq!(s.plan_builds, 4);
    assert_eq!(s.resident_plans, 4);
}

#[test]
fn query_batch_coalesces_across_eval_configs_onto_one_plan() {
    let (engine, id) = engine_with_data();
    let base = TreecodeParams::fixed(4, 0.6);
    let pts = points(10);
    let reqs = vec![
        QueryRequest::potentials(id, Accuracy::Params(base), pts.clone()),
        QueryRequest::potentials(id, Accuracy::Params(base.with_eval_chunk(3)), pts.clone()),
        QueryRequest::potentials(id, Accuracy::Params(base.with_eval_chunk(3)), pts),
    ];
    let results = engine.query_batch(&reqs);
    assert!(results.iter().all(Result::is_ok));
    let s = engine.stats();
    // one plan; the two chunk-3 requests share a sweep, chunk-64 gets its own
    assert_eq!(s.plan_builds, 1);
    assert_eq!(s.resident_plans, 1);
    assert_eq!(s.batches, 2);
    assert_eq!(s.batched_requests, 3);
    // identical values regardless of which sweep served them
    let v0 = results[0].as_ref().unwrap().output.clone();
    let v1 = results[1].as_ref().unwrap().output.clone();
    assert_eq!(v0, v1);
}
