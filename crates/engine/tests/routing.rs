//! Backend-routing integration: shape-based selection, bit-identity of
//! the routed few-targets path against the treecode, direct-sum bypass,
//! and the Theorem-bound admission contract as a property test.
//!
//! Under the `validate` feature the router pins every query to the
//! treecode reference path, so the shape tests gate themselves on
//! `cfg!(feature = "validate")`; the admission property holds either way
//! (pinning satisfies it vacuously).

use mbt_engine::{
    fmm_admissible, route, Accuracy, Backend, CacheOutcome, Engine, EngineConfig, QueryRequest,
    DIRECT_MAX_SOURCES, FMM_MIN_SOURCES, FMM_MIN_TARGETS,
};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_multipole::kappa;
use mbt_treecode::{Treecode, TreecodeParams};
use proptest::prelude::*;

fn particles(n: usize, seed: u64) -> Vec<Particle> {
    uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed)
}

fn probe_points(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.37;
            Vec3::new(0.9 * t.cos(), 0.9 * t.sin(), 0.1 + 0.001 * i as f64)
        })
        .collect()
}

/// The routed few-targets path answers with exactly the bits the
/// treecode produces under the engine's resolved parameters.
#[test]
fn few_targets_are_bit_identical_to_the_treecode() {
    let cfg = EngineConfig::default();
    let ps = particles(6000, 41);
    let q_max = ps.iter().map(|p| p.charge.abs()).fold(0.0, f64::max);
    let engine = Engine::new(cfg).unwrap();
    let id = engine.register("t", ps.clone()).unwrap();
    let pts = probe_points(40);

    let r = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(5),
            pts.clone(),
        ))
        .unwrap();
    assert_eq!(r.backend, Backend::Treecode);

    // the reference: the same resolution the engine performs
    let params = Accuracy::Fixed(5).resolve_with_profile(
        cfg.alpha,
        cfg.leaf_capacity,
        cfg.eval_chunk,
        ps.len(),
        q_max,
    );
    let tc = Treecode::new(&ps, params).unwrap();
    let want = tc.potentials_at(&pts);
    assert_eq!(r.output.potentials().unwrap(), want.values.as_slice());

    // pinning via explicit params keys the same artifact: still identical
    let pinned = engine
        .query(QueryRequest::potentials(id, Accuracy::Params(params), pts))
        .unwrap();
    assert_eq!(pinned.backend, Backend::Treecode);
    assert_eq!(pinned.output, r.output);
}

#[cfg(not(feature = "validate"))]
#[test]
fn tiny_datasets_bypass_the_cache_and_match_the_direct_sum() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let ps = particles(400, 43);
    let id = engine.register("tiny", ps.clone()).unwrap();
    let pts = probe_points(16);
    let r = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(4),
            pts.clone(),
        ))
        .unwrap();
    assert_eq!(r.backend, Backend::Direct);
    assert_eq!(r.cache, CacheOutcome::Bypassed);
    assert_eq!(r.plan_bytes, 0);
    let got = r.output.potentials().unwrap();
    for (k, &pt) in pts.iter().enumerate() {
        let exact: f64 = ps.iter().map(|p| p.charge / p.position.distance(pt)).sum();
        assert!(
            (got[k] - exact).abs() <= 1e-12 * exact.abs().max(1.0),
            "direct backend is not exact at {k}: {} vs {exact}",
            got[k]
        );
    }
    let s = engine.stats();
    assert_eq!(s.routed_direct, 1);
    assert_eq!(s.plan_builds, 0, "direct routing must not build a plan");
}

#[cfg(not(feature = "validate"))]
#[test]
fn matvec_shapes_route_to_the_fmm_within_the_treecode_budget() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let ps = particles(6000, 47);
    let id = engine.register("mv", ps.clone()).unwrap();
    let pts = probe_points(500);
    let r = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(8),
            pts.clone(),
        ))
        .unwrap();
    assert_eq!(r.backend, Backend::Fmm);
    assert!(engine.stats().routed_fmm >= 1);
    // the FMM answer agrees with the treecode at equal degree: each side
    // carries at most the Theorem-2 truncation κ^(p+1) per interaction —
    // κ(0.6)^9 ≈ 3e-3 — so their difference stays within twice that
    let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.6)).unwrap();
    let want = tc.potentials_at(&pts);
    let got = r.output.potentials().unwrap();
    for (k, (g, w)) in got.iter().zip(&want.values).enumerate() {
        assert!(
            (g - w).abs() <= 6e-3 * w.abs().max(1.0),
            "fmm vs treecode at {k}: {g} vs {w}"
        );
    }
}

#[cfg(not(feature = "validate"))]
#[test]
fn field_queries_route_like_potential_queries() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let ps = particles(6000, 53);
    let id = engine.register("f", ps).unwrap();
    let r = engine
        .query(QueryRequest::fields(
            id,
            Accuracy::Fixed(6),
            probe_points(500),
        ))
        .unwrap();
    assert_eq!(r.backend, Backend::Fmm);
    let fields = r.output.fields().unwrap();
    assert!(fields
        .iter()
        .all(|(phi, g)| phi.is_finite() && g.is_finite()));
}

/// Sharded datasets are served by the skeleton fan-out — a treecode-only
/// path — regardless of shape.
#[test]
fn sharded_datasets_stay_pinned_to_the_treecode() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let id = engine
        .register_sharded("s", particles(6000, 59), 4)
        .unwrap();
    let r = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(4),
            probe_points(500),
        ))
        .unwrap();
    assert_eq!(r.backend, Backend::Treecode);
    assert_eq!(engine.stats().routed_fmm, 0);
}

proptest! {
    /// The admission contract: the router never picks a backend whose
    /// resolved Theorem 1/2/3 bound exceeds what the request accepted.
    ///
    /// * Direct is exact (bound ≡ 0 ≤ anything) and only ever chosen for
    ///   tiny source counts;
    /// * the FMM's M2L geometry is a Theorem-2 interaction at
    ///   α_eff = 1/2, so it may only be chosen when
    ///   κ(1/2) ≤ κ(α_requested) — and never for softened kernels or
    ///   pinned requests, whose semantics the FMM does not reproduce;
    /// * everything else keeps the treecode the request priced its
    ///   bound against.
    #[test]
    fn router_admission_contract(
        n_sources in 1usize..200_000,
        n_targets in 0usize..200_000,
        alpha in 0.25f64..1.0,
        soften_raw in 1e-6f64..1e-1,
        flags in 0u32..4,
    ) {
        let softening = if flags & 1 == 0 { 0.0 } else { soften_raw };
        let pinned = flags & 2 != 0;
        let params = TreecodeParams::fixed(4, alpha).with_softening(softening);
        let backend = route(n_sources, n_targets, pinned, &params);
        match backend {
            Backend::Direct => {
                prop_assert!(!pinned);
                prop_assert!(n_sources <= DIRECT_MAX_SOURCES);
            }
            Backend::Fmm => {
                prop_assert!(!pinned);
                prop_assert!(fmm_admissible(alpha));
                prop_assert!(kappa(0.5) <= kappa(alpha));
                // lint: allow(float_cmp, exact-zero routing guard)
                prop_assert!(softening == 0.0);
                prop_assert!(n_sources >= FMM_MIN_SOURCES);
                prop_assert!(n_targets >= FMM_MIN_TARGETS);
            }
            Backend::Treecode => {} // the reference the bound was priced on
        }
        if pinned || cfg!(feature = "validate") {
            prop_assert_eq!(backend, Backend::Treecode);
        }
    }
}
