//! Sharded serving end-to-end: `k = 1` must be bit-identical to the
//! unsharded path (the Hilbert split of one shard preserves particle
//! order, so the plan key and the plan are the same), and `k ∈ {2, 4, 8}`
//! must stay inside the resolved Theorem 1/2 error budget against the
//! direct sum — the skeleton only answers a (point, shard) pair when the
//! same bound the unsharded evaluator enforces accepts it.

use mbt_engine::{Accuracy, CacheOutcome, Engine, EngineConfig, QueryRequest};
use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_treecode::direct::direct_potentials_at;

fn uniform(n: usize, seed: u64) -> Vec<Particle> {
    uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed)
}

fn clustered(n: usize, seed: u64) -> Vec<Particle> {
    overlapped_gaussians(
        n,
        4,
        2.0,
        0.3,
        ChargeModel::RandomSign { magnitude: 1.0 },
        seed,
    )
}

/// Near targets (inside the hull) and far targets (well outside it).
fn probe_points() -> Vec<Vec3> {
    let mut pts = Vec::new();
    for i in 0..12 {
        let t = f64::from(i) / 12.0;
        pts.push(Vec3::new(2.0 * t - 1.0, 0.8 - 1.6 * t, 0.3));
    }
    for i in 0..12 {
        pts.push(Vec3::new(4.0 + 0.5 * f64::from(i), 2.0, -3.0));
    }
    pts
}

fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn k1_is_bit_identical_to_the_unsharded_path() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let ps = uniform(1500, 101);
    let plain = engine.register("plain", ps.clone()).unwrap();
    let one = engine.register_sharded("one-shard", ps, 1).unwrap();
    let pts = probe_points();
    for accuracy in [
        Accuracy::Fixed(6),
        Accuracy::Tolerance { tol: 1e-6 },
        Accuracy::Adaptive { p_min: 3 },
    ] {
        let a = engine
            .query(QueryRequest::potentials(plain, accuracy, pts.clone()))
            .unwrap();
        let b = engine
            .query(QueryRequest::potentials(one, accuracy, pts.clone()))
            .unwrap();
        assert_eq!(
            a.output, b.output,
            "{accuracy:?}: one-way sharding changed bits"
        );
        let fa = engine
            .query(QueryRequest::fields(plain, accuracy, pts.clone()))
            .unwrap();
        let fb = engine
            .query(QueryRequest::fields(one, accuracy, pts.clone()))
            .unwrap();
        assert_eq!(fa.output, fb.output);
    }
    // the one-way dataset never enters the fan-out path
    assert_eq!(engine.stats().sharded_queries, 0);
}

/// `k`-sharded answers against the direct sum, for both distributions.
/// The budget mirrors `tolerance_mode.rs` in the core crate: `tol` is a
/// per-interaction bound, a target sees `interactions_per_target` of
/// them, and partial cancellation keeps real error well under the sum —
/// the 4× safety factor matches the unsharded test.
fn assert_within_tolerance(ps: &[Particle], label: &str) {
    let tol = 1e-5;
    let pts = probe_points();
    let exact = direct_potentials_at(ps, &pts);
    for k in [2usize, 4, 8] {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let id = engine
            .register_sharded(&format!("{label}-{k}"), ps.to_vec(), k)
            .unwrap();
        let r = engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Tolerance { tol },
                pts.clone(),
            ))
            .unwrap();
        let got = r.output.potentials().unwrap();
        let err = max_abs_err(got, &exact);
        let budget = tol * r.eval.interactions_per_target().max(1.0) * 4.0;
        assert!(
            err <= budget,
            "{label} k={k}: max error {err} exceeds budget {budget}"
        );
        let s = engine.stats();
        assert_eq!(s.sharded_queries, 1);
        assert!(
            s.global_shortcuts + s.skeleton_evals + s.shard_opens > 0,
            "{label} k={k}: fan-out recorded no routing"
        );
    }
}

#[test]
fn sharded_matches_direct_sum_on_uniform_cube() {
    assert_within_tolerance(&uniform(2000, 211), "uniform");
}

#[test]
fn sharded_matches_direct_sum_on_overlapped_gaussians() {
    assert_within_tolerance(&clustered(2000, 223), "clustered");
}

#[test]
fn warm_then_query_hits_every_shard() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let id = engine.register_sharded("w", uniform(1200, 307), 8).unwrap();
    let report = engine.warm(id, Accuracy::Fixed(5)).unwrap();
    assert_eq!(report.outcome, CacheOutcome::Built);
    assert_eq!(report.shards.len(), 8);
    assert!(report
        .shards
        .iter()
        .all(|w| w.outcome == CacheOutcome::Built && w.bytes > 0));
    let r = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(5),
            probe_points(),
        ))
        .unwrap();
    assert_eq!(r.cache, CacheOutcome::Hit);
    assert_eq!(engine.stats().plan_builds, 8);
}

#[test]
fn batch_and_solo_sharded_answers_agree() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let id = engine
        .register_sharded("b", clustered(1000, 401), 4)
        .unwrap();
    let pts = probe_points();
    let solo = engine
        .query(QueryRequest::potentials(
            id,
            Accuracy::Fixed(6),
            pts.clone(),
        ))
        .unwrap();
    let batch = engine.query_batch(&[
        QueryRequest::potentials(id, Accuracy::Fixed(6), pts.clone()),
        QueryRequest::potentials(id, Accuracy::Fixed(6), pts),
    ]);
    for r in &batch {
        assert_eq!(r.as_ref().unwrap().output, solo.output);
    }
}
