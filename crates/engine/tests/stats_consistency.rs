//! Snapshot consistency under concurrent load: counters only ever move
//! forward, histogram totals agree with the request counters, and the
//! per-plan breakdown sums back to the global counters.

use std::time::Duration;

use mbt_engine::{Accuracy, Engine, EngineConfig, EngineStats, QueryRequest};
use mbt_geometry::distribution::{uniform_cube, ChargeModel};
use mbt_geometry::Vec3;

fn points(n: usize, off: f64) -> Vec<Vec3> {
    (0..n)
        .map(|i| Vec3::new(1.3 + off + i as f64 * 0.01, -0.2, 0.5))
        .collect()
}

/// Every counter that must be monotone, as one comparable vector.
fn monotone_counters(s: &EngineStats) -> Vec<u64> {
    vec![
        s.cache_hits,
        s.cache_misses,
        s.coalesced_misses,
        s.plan_builds,
        s.evictions,
        s.batches,
        s.batched_requests,
        s.eval_points,
        s.admitted,
        s.shed_overload,
        s.shed_deadline,
        s.build_latency.count,
        s.eval_latency.count,
        s.query_latency.count,
        s.admission_wait.count,
        s.slow_queries,
    ]
}

#[test]
fn concurrent_load_keeps_snapshots_consistent() {
    let engine = Engine::new(EngineConfig {
        max_in_flight: 4, // force some admission queueing
        ..EngineConfig::default()
    })
    .unwrap();
    let a = engine
        .register(
            "a",
            uniform_cube(700, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 3),
        )
        .unwrap();
    let b = engine
        .register(
            "b",
            uniform_cube(600, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 5),
        )
        .unwrap();

    let n_threads: u32 = 8;
    let per_thread: u32 = 6;
    std::thread::scope(|s| {
        // a sampler thread racing the workers: every counter must be
        // monotone from one snapshot to the next
        let sampler = s.spawn(|| {
            let mut prev = monotone_counters(&engine.stats());
            for _ in 0..200 {
                let cur = monotone_counters(&engine.stats());
                for (i, (p, c)) in prev.iter().zip(cur.iter()).enumerate() {
                    assert!(c >= p, "counter {i} went backwards: {p} -> {c}");
                }
                prev = cur;
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let workers: Vec<_> = (0..n_threads)
            .map(|t| {
                let engine = &engine;
                s.spawn(move || {
                    for q in 0..per_thread {
                        let (ds, acc) = match (t + q) % 3 {
                            0 => (a, Accuracy::Fixed(4)),
                            1 => (a, Accuracy::Adaptive { p_min: 3 }),
                            _ => (b, Accuracy::Fixed(4)),
                        };
                        engine
                            .query(QueryRequest::potentials(
                                ds,
                                acc,
                                points(25, f64::from(t) * 0.1),
                            ))
                            .unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        sampler.join().unwrap();
    });

    let total = u64::from(n_threads) * u64::from(per_thread);
    let s = engine.stats();

    // every request was admitted, served, and latency-accounted
    assert_eq!(s.admitted, total);
    assert_eq!(s.batched_requests, total);
    assert_eq!(s.query_latency.count, total);
    assert_eq!(s.query_histogram.count, total);
    assert_eq!(s.admission_wait.count, total);
    assert_eq!(s.eval_points, total * 25);

    // histogram totals match their counters exactly
    assert_eq!(s.build_latency.count, s.plan_builds);
    assert_eq!(s.eval_latency.count, s.batches);
    assert_eq!(s.build_histogram.count, s.plan_builds);
    assert_eq!(s.eval_histogram.count, s.batches);

    // cache arithmetic: every lookup is a hit, miss, or coalesced miss
    assert_eq!(s.cache_hits + s.cache_misses + s.coalesced_misses, total);
    assert_eq!(s.plan_builds, 3); // (a, fixed4), (a, adaptive3), (b, fixed4)

    // the per-plan breakdown sums back to the global counters
    assert_eq!(s.per_plan.len(), 3);
    let sum_requests: u64 = s.per_plan.iter().map(|p| p.requests).sum();
    let sum_batches: u64 = s.per_plan.iter().map(|p| p.batches).sum();
    let sum_points: u64 = s.per_plan.iter().map(|p| p.points).sum();
    let sum_builds: u64 = s.per_plan.iter().map(|p| p.builds).sum();
    let sum_eval_counts: u64 = s.per_plan.iter().map(|p| p.eval.count).sum();
    assert_eq!(sum_requests, s.batched_requests);
    assert_eq!(sum_batches, s.batches);
    assert_eq!(sum_points, s.eval_points);
    assert_eq!(sum_builds, s.plan_builds);
    assert_eq!(sum_eval_counts, s.batches);

    // …and so does the per-dataset aggregate
    assert_eq!(s.per_dataset.len(), 2);
    let ds_requests: u64 = s.per_dataset.iter().map(|d| d.requests).sum();
    assert_eq!(ds_requests, s.batched_requests);
    assert_eq!(s.per_dataset[0].plans + s.per_dataset[1].plans, 3);

    // the quiescent snapshot is stable and exports stay valid
    assert_eq!(engine.stats(), s);
    assert!(mbt_obs::json_is_valid(&s.to_json()));
    assert!(mbt_obs::prometheus_is_valid(&s.to_prometheus()));

    // engine-phase spans were collected (builds + batches at least),
    // none torn: every span has a sane phase and duration
    let spans = engine.spans();
    assert!(spans.len() as u64 >= s.plan_builds);
    for span in &spans {
        assert!(span.dur_ns < 60_000_000_000, "absurd span: {span:?}");
    }
}

#[test]
fn mean_latencies_match_second_totals() {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    let id = engine
        .register(
            "t",
            uniform_cube(600, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7),
        )
        .unwrap();
    for _ in 0..3 {
        engine
            .query(QueryRequest::potentials(
                id,
                Accuracy::Fixed(4),
                points(40, 0.0),
            ))
            .unwrap();
    }
    let s = engine.stats();
    // the histogram keeps exact sums, so mean × count == total seconds
    let eval_total_ms = s.eval_latency.mean_ms * s.eval_latency.count as f64;
    assert!((eval_total_ms * 1e-3 - s.eval_seconds).abs() < 1e-9);
    let build_total_ms = s.build_latency.mean_ms * s.build_latency.count as f64;
    assert!((build_total_ms * 1e-3 - s.build_seconds).abs() < 1e-9);
    assert!(s.query_latency.p50_ms <= s.query_latency.p99_ms);
    assert!(s.query_latency.max_ms > 0.0);
}
