//! The compiled FMM backend: flat per-level SoA arenas with precomputed
//! per-offset M2L/L2L operators executed by the dense batch kernel.
//!
//! The scalar reference ([`crate::Fmm`]) walks `HashMap` grids and
//! re-derives every translation from spherical-harmonic recurrences on the
//! hot path. This module compiles the level-synchronised pipeline instead:
//!
//! * **Operator probing.** Within a level, an M2L translation depends only
//!   on the integer cell offset `Δ = s − t` (Chebyshev norm ≥ 2, each
//!   component in `[-3, 3]` — at most 316 geometric classes). Each class is
//!   probed column-by-column through the public translation API (basis
//!   coefficient `1`, then `i`), which captures the full *real-linear*
//!   operator on the stored `m ≥ 0` triangular representation — including
//!   the implicit conjugate mirrors — as a dense real matrix over
//!   interleaved `(re, im)` spans. L2L needs only the 8 child-octant
//!   offsets per level. Probed operators are bit-consistent with the
//!   scalar math by construction.
//! * **Flat arenas.** Multipole and local coefficients live in per-level
//!   `Vec<f64>` arenas (occupied cells × `2·tri_len(p_l)`), particles in
//!   SoA spans sorted by finest-level Morton key, and cell occupancy in a
//!   dense Morton-indexed table per level — no hashing anywhere on the
//!   downward or near-field path.
//! * **CSR interaction lists.** The M2L list of every occupied cell is
//!   compiled once into `(source index, operator index)` CSR rows; the
//!   whole downward pass is then [`mbt_multipole::m2l_apply`] calls.
//!
//! External targets are served too: a target inside the root cube but in
//! an *unoccupied* finest cell gets its local expansion from an on-demand
//! L2L/M2L chain down its cell path (computed once per distinct cell and
//! shared by all targets in it); a target outside the root cube falls back
//! to a guarded direct sum over all particles.

use mbt_geometry::{Aabb, Particle, Vec3};
use mbt_multipole::tables::tri_index;
use mbt_multipole::{
    l2p_field_with, l2p_potential_with, m2l_apply, p2m_into, tri_len, Complex, ExpansionRef,
    LocalExpansion, Workspace,
};
use mbt_treecode::{EvalResult, EvalStats};
use rayon::prelude::*;

use crate::grid::{cell_center, cell_of, key_coords, FmmError, LevelGrid};
use crate::method::{build_structure, Fmm, FmmEvalMode, FmmParams, FmmStructure};

/// Deepest level the compiled backend supports: the dense Morton-indexed
/// occupancy tables hold `8^l` entries per level, so depth is capped where
/// that stays reasonable (level 8 ≈ 16.7M finest cells). Sparse deeper
/// hierarchies (e.g. huge collinear clouds) stay on the scalar reference.
pub const COMPILED_MAX_LEVELS: usize = 8;

/// Number of distinct geometric M2L offset classes (`Δ ∈ [-3,3]³` with
/// Chebyshev norm ≥ 2).
const M2L_OFFSET_CLASSES: usize = 316;

/// Build-time offset tables shared by every level: the dense offset list
/// and, per target parity class (`x&1 | y&1<<1 | z&1<<2`), the subset of
/// offsets its interaction list can reach.
struct OffsetTables {
    /// All reachable offsets, in a fixed order (= operator order).
    offsets: Vec<(i32, i32, i32)>,
    /// Per parity class: `(dx, dy, dz, operator index)`.
    by_parity: Vec<Vec<(i32, i32, i32, u16)>>,
}

fn offset_tables() -> OffsetTables {
    // lint: allow(alloc, cold path: offset tables are built once per plan)
    let mut offsets = Vec::new();
    for dz in -3i32..=3 {
        for dy in -3i32..=3 {
            for dx in -3i32..=3 {
                if dx.abs().max(dy.abs()).max(dz.abs()) >= 2 {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    debug_assert_eq!(offsets.len(), M2L_OFFSET_CLASSES);
    let index_of = |d: (i32, i32, i32)| -> u16 {
        offsets
            .iter()
            .position(|&o| o == d)
            // lint: allow(panic, the 7-cube scan above inserted every reachable offset)
            .expect("offset in table") as u16
    };
    // lint: allow(alloc, cold path: offset tables are built once per plan)
    let mut by_parity: Vec<Vec<(i32, i32, i32, u16)>> = vec![Vec::new(); 8];
    for (parity, list) in by_parity.iter_mut().enumerate() {
        let b = (
            (parity & 1) as i32,
            ((parity >> 1) & 1) as i32,
            ((parity >> 2) & 1) as i32,
        );
        // children of the target's parent's neighbours: Δ = 2d + o − b
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    for oz in 0..2i32 {
                        for oy in 0..2i32 {
                            for ox in 0..2i32 {
                                let d = (2 * dx + ox - b.0, 2 * dy + oy - b.1, 2 * dz + oz - b.2);
                                if d.0.abs().max(d.1.abs()).max(d.2.abs()) <= 1 {
                                    continue; // adjacent: near field
                                }
                                list.push((d.0, d.1, d.2, index_of(d)));
                            }
                        }
                    }
                }
            }
        }
    }
    OffsetTables { offsets, by_parity }
}

/// Compiled translation operators and interaction lists of one level.
#[derive(Debug, Default)]
struct LevelOps {
    /// Dense M2L matrices, concatenated in offset-table order; each is
    /// `2T × 2T` column-major reals over interleaved coefficient spans.
    m2l_ops: Vec<f64>,
    /// Stride between consecutive M2L operators.
    m2l_stride: usize,
    /// The 8 child-octant L2L matrices (`2T_child × 2T_parent`).
    l2l_ops: Vec<f64>,
    /// Stride between consecutive L2L operators.
    l2l_stride: usize,
    /// CSR row offsets over occupied target cells (`len + 1` entries).
    csr_off: Vec<u32>,
    /// Source cell (dense occupied index) per CSR entry.
    csr_src: Vec<u32>,
    /// Operator index (offset-table order) per CSR entry.
    csr_op: Vec<u16>,
}

/// Reusable SoA scratch holding the gathered 27-cell near field of one
/// finest cell.
#[derive(Debug, Default)]
struct NearGather {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    qs: Vec<f64>,
}

/// The FMM compiled into flat arenas, ready to evaluate at sources and at
/// arbitrary external targets.
pub struct CompiledFmm {
    bounds: Aabb,
    levels: usize,
    degrees: Vec<usize>,
    particles: Vec<Particle>,
    perm: Vec<usize>,
    grids: Vec<LevelGrid>,
    /// SoA mirror of the sorted particles for the near-field kernels.
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    qs: Vec<f64>,
    /// Per level: dense Morton-indexed occupancy (`occupied index + 1`).
    occ: Vec<Vec<u32>>,
    /// Per level: Morton code of each occupied cell (dense order).
    mortons: Vec<Vec<u64>>,
    /// Per level: interleaved multipole coefficients (occupied × `2T`).
    mult_re: Vec<Vec<f64>>,
    /// Per level: interleaved local coefficients (occupied × `2T`).
    locals_re: Vec<Vec<f64>>,
    /// Per level: compiled operators and CSR lists (levels 0/1 empty).
    ops: Vec<LevelOps>,
    /// Offset subsets per target parity class (shared by all levels).
    by_parity: Vec<Vec<(i32, i32, i32, u16)>>,
    /// P2M terms formed during the upward pass (scalar-compatible counter).
    pub translation_terms: u64,
    /// Total compiled M2L list entries across all levels.
    pub m2l_pairs: u64,
}

impl CompiledFmm {
    /// Builds the compiled FMM over a particle set.
    pub fn new(particles: &[Particle], params: FmmParams) -> Result<CompiledFmm, FmmError> {
        let FmmStructure {
            bounds,
            levels,
            degrees,
            sorted,
            perm,
            grids,
        } = build_structure(particles, &params)?;
        if levels > COMPILED_MAX_LEVELS {
            return Err(FmmError::DenseGridTooDeep {
                levels,
                max: COMPILED_MAX_LEVELS,
            });
        }
        let max_degree = degrees.iter().copied().max().unwrap_or(0);

        // SoA mirror of the sorted particles
        // lint: allow(alloc, cold path: compiled once per plan build)
        let xs: Vec<f64> = sorted.iter().map(|p| p.position.x).collect();
        // lint: allow(alloc, cold path: compiled once per plan build)
        let ys: Vec<f64> = sorted.iter().map(|p| p.position.y).collect();
        // lint: allow(alloc, cold path: compiled once per plan build)
        let zs: Vec<f64> = sorted.iter().map(|p| p.position.z).collect();
        // lint: allow(alloc, cold path: compiled once per plan build)
        let qs: Vec<f64> = sorted.iter().map(|p| p.charge).collect();

        // dense occupancy + morton codes per level
        let mut occ: Vec<Vec<u32>> = Vec::with_capacity(levels + 1);
        let mut mortons: Vec<Vec<u64>> = Vec::with_capacity(levels + 1);
        for grid in &grids {
            // lint: allow(alloc, cold path: compiled once per plan build)
            let mut table = vec![0u32; 1usize << (3 * grid.level)];
            let codes: Vec<u64> = grid
                .keys
                .iter()
                .map(|&k| {
                    let (x, y, z) = key_coords(k);
                    mbt_geometry::morton::encode(x, y, z)
                })
                // lint: allow(alloc, cold path: compiled once per plan build)
                .collect();
            for (ci, &code) in codes.iter().enumerate() {
                table[code as usize] = ci as u32 + 1;
            }
            occ.push(table);
            mortons.push(codes);
        }

        // upward: P2M straight into the interleaved arenas
        let mut translation_terms = 0u64;
        let mut mult_re: Vec<Vec<f64>> = Vec::with_capacity(levels + 1);
        for (l, grid) in grids.iter().enumerate() {
            let p = degrees[l];
            let t = tri_len(p);
            // lint: allow(alloc, cold path: compiled once per plan build)
            let mut arena = vec![0.0f64; grid.len() * 2 * t];
            arena
                .par_chunks_mut(2 * t)
                .enumerate()
                .for_each(|(ci, span)| {
                    let mut ws = Workspace::with_capacity(max_degree);
                    // lint: allow(alloc, cold path: per-cell P2M scratch at build)
                    let mut scratch = vec![Complex::ZERO; t];
                    let (s, e) = grid.ranges[ci];
                    p2m_into(
                        &mut scratch,
                        grid.centers[ci],
                        p,
                        &sorted[s as usize..e as usize],
                        &mut ws,
                    );
                    for (k, c) in scratch.iter().enumerate() {
                        span[2 * k] = c.re;
                        span[2 * k + 1] = c.im;
                    }
                });
            translation_terms += (grid.len() as u64) * ((p as u64 + 1) * (p as u64 + 1));
            mult_re.push(arena);
        }

        // compile per-level operators and CSR interaction lists
        let tables = offset_tables();
        // lint: allow(alloc, cold path: compiled once per plan build)
        let mut ops: Vec<LevelOps> = (0..=levels).map(|_| LevelOps::default()).collect();
        let mut m2l_pairs = 0u64;
        for l in 2..=levels {
            let p = degrees[l];
            let p_par = degrees[l - 1];
            let t = tri_len(p);
            let t_par = tri_len(p_par);
            let edge = grids[l].cell_edge;
            let lv = &mut ops[l];

            // M2L: probe every geometric offset class
            lv.m2l_stride = (2 * t) * (2 * t);
            // lint: allow(alloc, cold path: compiled once per plan build)
            lv.m2l_ops = vec![0.0f64; M2L_OFFSET_CLASSES * lv.m2l_stride];
            let offsets = &tables.offsets;
            lv.m2l_ops
                .par_chunks_mut(lv.m2l_stride)
                .enumerate()
                .for_each(|(oi, mat)| {
                    let (dx, dy, dz) = offsets[oi];
                    let d_vec = Vec3::new(
                        f64::from(dx) * edge,
                        f64::from(dy) * edge,
                        f64::from(dz) * edge,
                    );
                    probe_m2l(mat, d_vec, p, t);
                });

            // L2L: probe the 8 child octants
            lv.l2l_stride = (2 * t) * (2 * t_par);
            // lint: allow(alloc, cold path: compiled once per plan build)
            lv.l2l_ops = vec![0.0f64; 8 * lv.l2l_stride];
            for (octant, mat) in lv.l2l_ops.chunks_mut(lv.l2l_stride).enumerate() {
                let (bx, by, bz) = mbt_geometry::morton::decode(octant as u64);
                let delta = Vec3::new(
                    (f64::from(bx) - 0.5) * edge,
                    (f64::from(by) - 0.5) * edge,
                    (f64::from(bz) - 0.5) * edge,
                );
                probe_l2l(mat, delta, p_par, p, t_par, t);
            }

            // CSR lists over occupied target cells
            let grid = &grids[l];
            let side = 1i64 << l;
            lv.csr_off = Vec::with_capacity(grid.len() + 1);
            lv.csr_off.push(0);
            for ci in 0..grid.len() {
                let (x, y, z) = key_coords(grid.keys[ci]);
                let parity = ((x & 1) | (y & 1) << 1 | (z & 1) << 2) as usize;
                for &(dx, dy, dz, op) in &tables.by_parity[parity] {
                    let sx = i64::from(x) + i64::from(dx);
                    let sy = i64::from(y) + i64::from(dy);
                    let sz = i64::from(z) + i64::from(dz);
                    if sx < 0 || sy < 0 || sz < 0 || sx >= side || sy >= side || sz >= side {
                        continue;
                    }
                    let code = mbt_geometry::morton::encode(sx as u32, sy as u32, sz as u32);
                    let si = occ[l][code as usize];
                    if si != 0 {
                        lv.csr_src.push(si - 1);
                        lv.csr_op.push(op);
                    }
                }
                lv.csr_off.push(lv.csr_src.len() as u32);
            }
            m2l_pairs += lv.csr_src.len() as u64;
        }

        // downward: L2L from the parent, then the compiled M2L list
        let mut locals_re: Vec<Vec<f64>> = (0..=levels)
            // lint: allow(alloc, cold path: compiled once per plan build)
            .map(|l| vec![0.0f64; grids[l].len() * 2 * tri_len(degrees[l])])
            // lint: allow(alloc, cold path: compiled once per plan build)
            .collect();
        for l in 2..=levels {
            let t = tri_len(degrees[l]);
            let t_par = tri_len(degrees[l - 1]);
            let (before, after) = locals_re.split_at_mut(l);
            let parents = &before[l - 1];
            let lv = &ops[l];
            let mult = &mult_re[l];
            let level_mortons = &mortons[l];
            let parent_occ = &occ[l - 1];
            after[0]
                .par_chunks_mut(2 * t)
                .enumerate()
                .for_each(|(ci, y)| {
                    let tm = level_mortons[ci];
                    let pi = parent_occ[(tm >> 3) as usize] as usize - 1;
                    let octant = (tm & 7) as usize;
                    m2l_apply(
                        &lv.l2l_ops[octant * lv.l2l_stride..(octant + 1) * lv.l2l_stride],
                        &parents[pi * 2 * t_par..(pi + 1) * 2 * t_par],
                        y,
                    );
                    let (s, e) = (lv.csr_off[ci] as usize, lv.csr_off[ci + 1] as usize);
                    for k in s..e {
                        let si = lv.csr_src[k] as usize;
                        let oi = lv.csr_op[k] as usize;
                        m2l_apply(
                            &lv.m2l_ops[oi * lv.m2l_stride..(oi + 1) * lv.m2l_stride],
                            &mult[si * 2 * t..(si + 1) * 2 * t],
                            y,
                        );
                    }
                });
        }

        Ok(CompiledFmm {
            bounds,
            levels,
            degrees,
            particles: sorted,
            perm,
            grids,
            xs,
            ys,
            zs,
            qs,
            occ,
            mortons,
            mult_re,
            locals_re,
            ops,
            by_parity: tables.by_parity,
            translation_terms,
            m2l_pairs,
        })
    }

    /// The finest level index.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The per-level expansion degrees.
    #[must_use]
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// The root bounding cube.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Approximate owned heap footprint: arenas, operators, occupancy
    /// tables, lists, and particle mirrors (for cache accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let f64s = self.xs.len() * 4 * 8
            + self.particles.len() * std::mem::size_of::<Particle>()
            + self.perm.len() * 8;
        let arenas: usize = self
            .mult_re
            .iter()
            .zip(&self.locals_re)
            .map(|(m, l)| (m.len() + l.len()) * 8)
            .sum();
        let occ: usize = self.occ.iter().map(|t| t.len() * 4).sum();
        let mortons: usize = self.mortons.iter().map(|m| m.len() * 8).sum();
        let ops: usize = self
            .ops
            .iter()
            .map(|o| {
                (o.m2l_ops.len() + o.l2l_ops.len()) * 8
                    + o.csr_off.len() * 4
                    + o.csr_src.len() * 4
                    + o.csr_op.len() * 2
            })
            .sum();
        let grids: usize = self
            .grids
            .iter()
            .map(|g| g.len() * (8 + 24 + 8 + 8 + 48))
            .sum();
        f64s + arenas + occ + mortons + ops + grids
    }

    /// Gathers (and coalesces) the near-field particle ranges of the 27
    /// finest cells around `(x, y, z)`.
    fn near_ranges(&self, x: u32, y: u32, z: u32) -> Vec<(u32, u32)> {
        let finest = &self.grids[self.levels];
        let side = 1i64 << self.levels;
        let mut near: Vec<(u32, u32)> = Vec::with_capacity(27);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = i64::from(x) + dx;
                    let ny = i64::from(y) + dy;
                    let nz = i64::from(z) + dz;
                    if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
                        continue;
                    }
                    let code = mbt_geometry::morton::encode(nx as u32, ny as u32, nz as u32);
                    let ni = self.occ[self.levels][code as usize];
                    if ni != 0 {
                        near.push(finest.ranges[ni as usize - 1]);
                    }
                }
            }
        }
        // Morton-sorted ranges often abut; coalescing shrinks the number
        // of SIMD span calls without changing the pair set.
        near.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(near.len());
        for r in near {
            match merged.last_mut() {
                Some(last) if last.1 == r.0 => last.1 = r.1,
                _ => merged.push(r),
            }
        }
        merged
    }

    /// Copies the near-field ranges into one contiguous SoA scratch so each
    /// target makes a single guarded span call (the gather cost is amortised
    /// over every target in the cell; full-width SIMD sweeps with one tail
    /// replace per-range calls with per-range tails).
    fn gather_near(&self, ranges: &[(u32, u32)], out: &mut NearGather) {
        out.xs.clear();
        out.ys.clear();
        out.zs.clear();
        out.qs.clear();
        for &(ns, ne) in ranges {
            let (ns, ne) = (ns as usize, ne as usize);
            out.xs.extend_from_slice(&self.xs[ns..ne]);
            out.ys.extend_from_slice(&self.ys[ns..ne]);
            out.zs.extend_from_slice(&self.zs[ns..ne]);
            out.qs.extend_from_slice(&self.qs[ns..ne]);
        }
    }

    /// Lifts the interleaved local span of one finest cell into complex
    /// scratch for the L2P kernels.
    fn lift_local(span: &[f64], scratch: &mut Vec<Complex>) {
        scratch.clear();
        scratch.extend(span.chunks_exact(2).map(|c| Complex { re: c[0], im: c[1] }));
    }

    /// Potentials at all source particles, caller order.
    #[must_use]
    pub fn potentials(&self) -> EvalResult<f64> {
        let finest = &self.grids[self.levels];
        let p = self.degrees[self.levels];
        let t = tri_len(p);

        let per_cell: Vec<(Vec<f64>, EvalStats)> = (0..finest.len())
            .into_par_iter()
            .map(|ci| {
                let mut ws = Workspace::with_capacity(p);
                let ws = &mut ws;
                let mut lc_store: Vec<Complex> = Vec::with_capacity(t);
                let lc = &mut lc_store;
                let mut gather = NearGather::default();
                let mut stats = EvalStats::default();
                let (s, e) = finest.ranges[ci];
                let (x, y, z) = key_coords(finest.keys[ci]);
                let near = self.near_ranges(x, y, z);
                self.gather_near(&near, &mut gather);
                Self::lift_local(
                    &self.locals_re[self.levels][ci * 2 * t..(ci + 1) * 2 * t],
                    lc,
                );
                let center = finest.centers[ci];
                let vals: Vec<f64> = (s..e)
                    .map(|i| {
                        let xi = self.particles[i as usize].position;
                        let mut phi = l2p_potential_with(center, p, lc, xi, ws);
                        stats.record_interaction(p);
                        // one contiguous guarded span over all 27 cells;
                        // the r = 0 guard drops the self pair
                        let (v, pairs) = mbt_multipole::p2p_potential_span_guarded(
                            &gather.xs, &gather.ys, &gather.zs, &gather.qs, xi, 0.0,
                        );
                        phi += v;
                        stats.record_direct(pairs);
                        phi
                    })
                    // lint: allow(alloc, one output buffer per finest cell of the bulk sweep)
                    .collect();
                stats.targets = u64::from(e - s);
                (vals, stats)
            })
            // lint: allow(alloc, one arena per bulk sweep)
            .collect();

        // lint: allow(alloc, result buffer handed to the caller)
        let mut values = vec![0.0f64; self.particles.len()];
        let mut stats = EvalStats::default();
        for (ci, (vals, s)) in per_cell.into_iter().enumerate() {
            let (cs, _) = finest.ranges[ci];
            values[cs as usize..cs as usize + vals.len()].copy_from_slice(&vals);
            stats.merge(&s);
        }
        // lint: allow(alloc, result buffer handed to the caller)
        let mut out = vec![0.0f64; values.len()];
        for (i, &orig) in self.perm.iter().enumerate() {
            out[orig] = values[i];
        }
        EvalResult { values: out, stats }
    }

    /// Resolves the interleaved local coefficients of an arbitrary finest
    /// cell: occupied cells read the arena; empty cells get an on-demand
    /// L2L/M2L chain down their cell path.
    fn local_for_cell(&self, code: u64) -> Vec<f64> {
        let t = tri_len(self.degrees[self.levels]);
        let oc = self.occ[self.levels][code as usize];
        if oc != 0 {
            let ci = oc as usize - 1;
            // lint: allow(alloc, O(p^2) local copy per external target group)
            return self.locals_re[self.levels][ci * 2 * t..(ci + 1) * 2 * t].to_vec();
        }
        // cell path from the root
        // lint: allow(alloc, O(levels) path scratch per empty-cell chain)
        let mut path = vec![0u64; self.levels + 1];
        path[self.levels] = code;
        for l in (1..=self.levels).rev() {
            path[l - 1] = path[l] >> 3;
        }
        // deepest occupied ancestor (the root is always occupied)
        let mut la = self.levels;
        while self.occ[la][path[la] as usize] == 0 {
            la -= 1;
        }
        let mut cur: Vec<f64> = if la >= 2 {
            let tl = tri_len(self.degrees[la]);
            let ci = self.occ[la][path[la] as usize] as usize - 1;
            // lint: allow(alloc, O(p^2) local copy per external target group)
            self.locals_re[la][ci * 2 * tl..(ci + 1) * 2 * tl].to_vec()
        } else {
            // lint: allow(alloc, O(p^2) zero local at the top of the chain)
            vec![0.0f64; 2 * tri_len(self.degrees[la])]
        };
        #[allow(clippy::needless_range_loop)] // `l` indexes several level-keyed arrays
        for l in la + 1..=self.levels {
            let tl = tri_len(self.degrees[l]);
            // lint: allow(alloc, O(p^2) per level of the on-demand chain)
            let mut next = vec![0.0f64; 2 * tl];
            if l >= 2 {
                let lv = &self.ops[l];
                // L2L from the (possibly itself empty) parent chain; the
                // parent local below level 2 is identically zero.
                // lint: allow(float_cmp, exact-zero skip of an identically-zero parent local)
                if l > 2 || cur.iter().any(|&v| v != 0.0) {
                    let octant = (path[l] & 7) as usize;
                    m2l_apply(
                        &lv.l2l_ops[octant * lv.l2l_stride..(octant + 1) * lv.l2l_stride],
                        &cur,
                        &mut next,
                    );
                }
                // M2L over the interaction list of this (empty) cell
                let (x, y, z) = mbt_geometry::morton::decode(path[l]);
                let parity = ((x & 1) | (y & 1) << 1 | (z & 1) << 2) as usize;
                let side = 1i64 << l;
                let mult = &self.mult_re[l];
                for &(dx, dy, dz, op) in &self.by_parity[parity] {
                    let sx = i64::from(x) + i64::from(dx);
                    let sy = i64::from(y) + i64::from(dy);
                    let sz = i64::from(z) + i64::from(dz);
                    if sx < 0 || sy < 0 || sz < 0 || sx >= side || sy >= side || sz >= side {
                        continue;
                    }
                    let scode = mbt_geometry::morton::encode(sx as u32, sy as u32, sz as u32);
                    let si = self.occ[l][scode as usize];
                    if si != 0 {
                        let si = si as usize - 1;
                        let oi = op as usize;
                        m2l_apply(
                            &lv.m2l_ops[oi * lv.m2l_stride..(oi + 1) * lv.m2l_stride],
                            &mult[si * 2 * tl..(si + 1) * 2 * tl],
                            &mut next,
                        );
                    }
                }
            }
            cur = next;
        }
        cur
    }

    /// Potentials at arbitrary points (order preserved). Points outside the
    /// root cube are served by guarded direct sums.
    #[must_use]
    pub fn potentials_at(&self, points: &[Vec3]) -> EvalResult<f64> {
        // lint: allow(alloc, result buffer handed to the caller)
        let mut values = vec![0.0f64; points.len()];
        let stats = self.potentials_at_into(points, &mut values);
        EvalResult { values, stats }
    }

    /// [`Self::potentials_at`] into a caller-provided slice.
    pub fn potentials_at_into(&self, points: &[Vec3], out: &mut [f64]) -> EvalStats {
        assert_eq!(points.len(), out.len());
        self.eval_external(points, out, &mut [], false)
    }

    /// Potentials and gradients at arbitrary points.
    #[must_use]
    pub fn fields_at(&self, points: &[Vec3]) -> EvalResult<(f64, Vec3)> {
        // lint: allow(alloc, result buffer handed to the caller)
        let mut values = vec![(0.0f64, Vec3::ZERO); points.len()];
        let stats = self.fields_at_into(points, &mut values);
        EvalResult { values, stats }
    }

    /// [`Self::fields_at`] into a caller-provided slice.
    pub fn fields_at_into(&self, points: &[Vec3], out: &mut [(f64, Vec3)]) -> EvalStats {
        assert_eq!(points.len(), out.len());
        // lint: allow(alloc, potential scratch backing the caller's field slice)
        let mut phis = vec![0.0f64; points.len()];
        self.eval_external(points, &mut phis, out, true)
    }

    /// Shared external-target sweep. With `want_fields`, `fields` receives
    /// `(φ, ∇φ)` per point; otherwise `phis` receives `φ`.
    fn eval_external(
        &self,
        points: &[Vec3],
        phis: &mut [f64],
        fields: &mut [(f64, Vec3)],
        want_fields: bool,
    ) -> EvalStats {
        let p = self.degrees[self.levels];
        let cells = 1u32 << self.levels;

        // group in-bounds points by finest cell; out-of-bounds directly
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(points.len());
        // lint: allow(alloc, O(points) grouping scratch per external query)
        let mut outside: Vec<u32> = Vec::new();
        for (i, pt) in points.iter().enumerate() {
            if self.bounds.contains(*pt) {
                let (x, y, z) = cell_of(&self.bounds, cells, *pt);
                keyed.push((mbt_geometry::morton::encode(x, y, z), i as u32));
            } else {
                outside.push(i as u32);
            }
        }
        keyed.sort_unstable();
        // lint: allow(alloc, O(points) grouping scratch per external query)
        let mut groups: Vec<(u64, usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < keyed.len() {
            let code = keyed[start].0;
            let mut end = start;
            while end < keyed.len() && keyed[end].0 == code {
                end += 1;
            }
            groups.push((code, start, end));
            start = end;
        }

        #[allow(clippy::type_complexity)] // per-group (index, φ, ∇φ) triples + stats
        let results: Vec<(Vec<(u32, f64, Vec3)>, EvalStats)> = groups
            .par_iter()
            .map(|&(code, s, e)| {
                let mut ws = Workspace::with_capacity(p);
                let ws = &mut ws;
                let mut stats = EvalStats::default();
                let (x, y, z) = mbt_geometry::morton::decode(code);
                let local = self.local_for_cell(code);
                let mut lc = Vec::with_capacity(local.len() / 2);
                Self::lift_local(&local, &mut lc);
                let center = cell_center(&self.bounds, cells, x, y, z);
                let near = self.near_ranges(x, y, z);
                let mut gather = NearGather::default();
                self.gather_near(&near, &mut gather);
                let vals: Vec<(u32, f64, Vec3)> = keyed[s..e]
                    .iter()
                    .map(|&(_, idx)| {
                        let pt = points[idx as usize];
                        stats.record_interaction(p);
                        if want_fields {
                            let (mut phi, mut grad) = l2p_field_with(center, p, &lc, pt, ws);
                            let (v, g, pairs) = mbt_multipole::p2p_field_span_guarded(
                                &gather.xs, &gather.ys, &gather.zs, &gather.qs, pt, 0.0,
                            );
                            phi += v;
                            grad += g;
                            stats.record_direct(pairs);
                            (idx, phi, grad)
                        } else {
                            let mut phi = l2p_potential_with(center, p, &lc, pt, ws);
                            let (v, pairs) = mbt_multipole::p2p_potential_span_guarded(
                                &gather.xs, &gather.ys, &gather.zs, &gather.qs, pt, 0.0,
                            );
                            phi += v;
                            stats.record_direct(pairs);
                            (idx, phi, Vec3::ZERO)
                        }
                    })
                    // lint: allow(alloc, one output buffer per target group)
                    .collect();
                stats.targets = (e - s) as u64;
                (vals, stats)
            })
            // lint: allow(alloc, one arena per external sweep)
            .collect();

        let mut stats = EvalStats::default();
        for (vals, s) in &results {
            stats.merge(s);
            for &(idx, phi, grad) in vals {
                if want_fields {
                    fields[idx as usize] = (phi, grad);
                } else {
                    phis[idx as usize] = phi;
                }
            }
        }

        // out-of-bounds: guarded direct sums over all particles
        let direct: Vec<(u32, f64, Vec3, u64)> = outside
            .par_iter()
            .map(|&idx| {
                let pt = points[idx as usize];
                if want_fields {
                    let (phi, grad, pairs) = mbt_multipole::p2p_field_span_guarded(
                        &self.xs, &self.ys, &self.zs, &self.qs, pt, 0.0,
                    );
                    (idx, phi, grad, pairs)
                } else {
                    let (phi, pairs) = mbt_multipole::p2p_potential_span_guarded(
                        &self.xs, &self.ys, &self.zs, &self.qs, pt, 0.0,
                    );
                    (idx, phi, Vec3::ZERO, pairs)
                }
            })
            // lint: allow(alloc, out-of-bounds fallback results, one tuple per point)
            .collect();
        for (idx, phi, grad, pairs) in direct {
            stats.targets += 1;
            stats.record_direct(pairs);
            if want_fields {
                fields[idx as usize] = (phi, grad);
            } else {
                phis[idx as usize] = phi;
            }
        }
        stats
    }
}

/// Probes one M2L operator: the real-linear map from a source multipole's
/// stored `m ≥ 0` span to the target local's span, for source center
/// `d_vec` relative to the target. Column-major `2T × 2T`.
fn probe_m2l(mat: &mut [f64], d_vec: Vec3, p: usize, t: usize) {
    // lint: allow(alloc, cold path: operator probe at plan build)
    let mut probe = vec![Complex::ZERO; t];
    for k in 0..t {
        for (part, unit) in [Complex::ONE, Complex::I].into_iter().enumerate() {
            probe[k] = unit;
            let local = ExpansionRef::new(d_vec, p, &probe).to_local(Vec3::ZERO, p);
            let col = 2 * k + part;
            let mut r = 0usize;
            for j in 0..=p {
                for kk in 0..=j {
                    debug_assert_eq!(r, tri_index(j, kk));
                    let c = local.coeff(j, kk as i64);
                    mat[col * 2 * t + 2 * r] = c.re;
                    mat[col * 2 * t + 2 * r + 1] = c.im;
                    r += 1;
                }
            }
        }
        probe[k] = Complex::ZERO;
    }
}

/// Probes one L2L operator: parent local (degree `p_par`) at the origin to
/// a child local (degree `p`) centered at `delta`. Column-major
/// `2T × 2T_par`.
fn probe_l2l(mat: &mut [f64], delta: Vec3, p_par: usize, p: usize, t_par: usize, t: usize) {
    // lint: allow(alloc, cold path: operator probe at plan build)
    let mut probe = vec![Complex::ZERO; t_par];
    for k in 0..t_par {
        for (part, unit) in [Complex::ONE, Complex::I].into_iter().enumerate() {
            probe[k] = unit;
            let child = LocalExpansion::from_coeffs(Vec3::ZERO, p_par, &probe).translated(delta, p);
            let col = 2 * k + part;
            let mut r = 0usize;
            for j in 0..=p {
                for kk in 0..=j {
                    let c = child.coeff(j, kk as i64);
                    mat[col * 2 * t + 2 * r] = c.re;
                    mat[col * 2 * t + 2 * r + 1] = c.im;
                    r += 1;
                }
            }
        }
        probe[k] = Complex::ZERO;
    }
}

/// The [`FmmEvalMode`]-dispatching front door: builds whichever
/// implementation the params select and exposes the shared evaluation
/// surface. When the compiled backend cannot represent the hierarchy
/// (deeper than [`COMPILED_MAX_LEVELS`]), construction falls back to the
/// scalar reference rather than failing.
pub enum FmmEvaluator {
    /// The per-cell scalar reference pipeline.
    Scalar(Fmm),
    /// The flat-arena compiled pipeline.
    Compiled(CompiledFmm),
}

impl FmmEvaluator {
    /// Builds the implementation selected by `params.eval_mode`.
    pub fn new(particles: &[Particle], params: FmmParams) -> Result<FmmEvaluator, FmmError> {
        match params.eval_mode {
            FmmEvalMode::Scalar => Fmm::new(particles, params).map(FmmEvaluator::Scalar),
            FmmEvalMode::Compiled => match CompiledFmm::new(particles, params) {
                Ok(c) => Ok(FmmEvaluator::Compiled(c)),
                Err(FmmError::DenseGridTooDeep { .. }) => {
                    Fmm::new(particles, params).map(FmmEvaluator::Scalar)
                }
                Err(e) => Err(e),
            },
        }
    }

    /// Potentials at all source particles, caller order.
    #[must_use]
    pub fn potentials(&self) -> EvalResult<f64> {
        match self {
            FmmEvaluator::Scalar(f) => f.potentials(),
            FmmEvaluator::Compiled(c) => c.potentials(),
        }
    }

    /// The finest level index.
    #[must_use]
    pub fn levels(&self) -> usize {
        match self {
            FmmEvaluator::Scalar(f) => f.levels(),
            FmmEvaluator::Compiled(c) => c.levels(),
        }
    }

    /// The per-level expansion degrees.
    #[must_use]
    pub fn degrees(&self) -> &[usize] {
        match self {
            FmmEvaluator::Scalar(f) => f.degrees(),
            FmmEvaluator::Compiled(c) => c.degrees(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};
    use mbt_treecode::relative_error;

    fn charges() -> ChargeModel {
        ChargeModel::RandomSign { magnitude: 1.0 }
    }

    #[test]
    fn morton_parent_child_contract() {
        // the arena layout relies on `parent = code >> 3` and
        // `octant = code & 7` decoding to the per-axis low bits
        for (x, y, z) in [(5u32, 9, 14), (0, 0, 1), (31, 2, 17)] {
            let code = mbt_geometry::morton::encode(x, y, z);
            assert_eq!(
                code >> 3,
                mbt_geometry::morton::encode(x >> 1, y >> 1, z >> 1)
            );
            assert_eq!(
                mbt_geometry::morton::decode(code & 7),
                (x & 1, y & 1, z & 1)
            );
        }
    }

    #[test]
    fn compiled_matches_scalar_values_and_bit_stats() {
        let ps = uniform_cube(3000, 1.0, charges(), 3);
        for params in [
            FmmParams::fixed(5).with_levels(3),
            FmmParams::adaptive(3, 0.7).with_levels(3),
        ] {
            let scalar = Fmm::new(&ps, params.with_eval_mode(FmmEvalMode::Scalar)).unwrap();
            let compiled = CompiledFmm::new(&ps, params).unwrap();
            assert_eq!(scalar.degrees(), compiled.degrees());
            let rs = scalar.potentials();
            let rc = compiled.potentials();
            // identical instrumentation, bit for bit
            assert_eq!(rs.stats, rc.stats);
            assert_eq!(scalar.translation_terms, compiled.translation_terms);
            // identical math up to summation order
            assert!(relative_error(&rc.values, &rs.values) < 1e-11);
        }
    }

    #[test]
    fn compiled_matches_direct_uniform() {
        let ps = uniform_cube(3000, 1.0, charges(), 3);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        let mut prev = f64::INFINITY;
        for p in [3usize, 6, 8] {
            let fmm = CompiledFmm::new(&ps, FmmParams::fixed(p).with_levels(3)).unwrap();
            let err = relative_error(&fmm.potentials().values, &exact);
            assert!(err < prev, "error must fall with degree: p={p}, err={err}");
            prev = err;
        }
        assert!(prev < 1e-4, "p=8 error {prev}");
    }

    #[test]
    fn external_targets_match_direct_in_and_out_of_bounds() {
        let ps = gaussian(2000, Vec3::ZERO, 0.4, charges(), 21);
        let fmm = CompiledFmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
        // a spread of targets: inside occupied space, in the sparse shell
        // (empty finest cells), and outside the root cube entirely
        let targets: Vec<Vec3> = (0..60)
            .map(|i| {
                let a = f64::from(i) * 0.61;
                let r = 0.1 + 0.06 * f64::from(i); // walks out past the hull
                Vec3::new(r * a.cos(), r * a.sin(), 0.02 * f64::from(i) - 0.6)
            })
            .collect();
        let got = fmm.potentials_at(&targets);
        assert_eq!(got.stats.targets, targets.len() as u64);
        for (k, &pt) in targets.iter().enumerate() {
            let exact: f64 = ps.iter().map(|p| p.charge / p.position.distance(pt)).sum();
            // p = 8 truncation leaves ~1e-4 relative error for deep
            // targets (matching the scalar gaussian acceptance); targets
            // outside the hull must be exact up to roundoff
            assert!(
                (got.values[k] - exact).abs() <= 1e-3 * exact.abs().max(1.0),
                "target {k} at {pt:?}: {} vs {exact}",
                got.values[k]
            );
        }
    }

    #[test]
    fn fields_at_match_direct() {
        let ps = uniform_cube(1500, 1.0, charges(), 29);
        let fmm = CompiledFmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
        let targets = [
            Vec3::new(0.21, -0.34, 0.4),
            Vec3::new(-0.48, 0.05, -0.11),
            Vec3::new(1.4, 1.2, -1.3), // out of bounds
        ];
        let got = fmm.fields_at(&targets);
        for (k, &pt) in targets.iter().enumerate() {
            let mut phi = 0.0;
            let mut grad = Vec3::ZERO;
            for p in &ps {
                let d = pt - p.position;
                let r2 = d.norm_sq();
                let r = r2.sqrt();
                phi += p.charge / r;
                grad += d * (-p.charge / (r2 * r));
            }
            let (gphi, ggrad) = got.values[k];
            assert!((gphi - phi).abs() <= 2e-4 * phi.abs().max(1.0), "phi {k}");
            assert!(
                ggrad.distance(grad) <= 1e-3 * grad.norm().max(1.0),
                "grad {k}: {ggrad:?} vs {grad:?}"
            );
        }
    }

    #[test]
    fn shallow_levels_are_exact_direct_sums() {
        let ps = uniform_cube(300, 1.0, charges(), 23);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        for levels in [0usize, 1] {
            let fmm = CompiledFmm::new(&ps, FmmParams::fixed(3).with_levels(levels)).unwrap();
            let r = fmm.potentials();
            assert!(relative_error(&r.values, &exact) < 1e-13, "levels={levels}");
        }
    }

    #[test]
    fn evaluator_dispatches_and_falls_back() {
        let ps = uniform_cube(500, 1.0, charges(), 31);
        let scalar =
            FmmEvaluator::new(&ps, FmmParams::fixed(4).with_eval_mode(FmmEvalMode::Scalar))
                .unwrap();
        assert!(matches!(scalar, FmmEvaluator::Scalar(_)));
        let compiled = FmmEvaluator::new(&ps, FmmParams::fixed(4)).unwrap();
        assert!(matches!(compiled, FmmEvaluator::Compiled(_)));
        let es = scalar.potentials();
        let ec = compiled.potentials();
        assert_eq!(es.stats, ec.stats);
        // deeper than the dense tables allow: evaluator falls back to the
        // scalar reference instead of failing
        let deep = FmmEvaluator::new(&ps, FmmParams::fixed(3).with_levels(9)).unwrap();
        assert!(matches!(deep, FmmEvaluator::Scalar(_)));
        // ...while the compiled constructor itself reports a typed error
        assert!(matches!(
            CompiledFmm::new(&ps, FmmParams::fixed(3).with_levels(9)),
            Err(FmmError::DenseGridTooDeep { levels: 9, max: 8 })
        ));
    }

    #[test]
    fn heap_bytes_reports_plausible_footprint() {
        let ps = uniform_cube(2000, 1.0, charges(), 37);
        let fmm = CompiledFmm::new(&ps, FmmParams::fixed(4).with_levels(3)).unwrap();
        let bytes = fmm.heap_bytes();
        // at minimum the particle mirrors; well under a gigabyte here
        assert!(bytes > 2000 * 4 * 8, "bytes = {bytes}");
        assert!(bytes < 1 << 30, "bytes = {bytes}");
        assert!(fmm.m2l_pairs > 0);
    }
}
