//! Level-synchronised cell grids for the FMM.
//!
//! Level `l` divides the root cube into `2^l` cells per axis. Only occupied
//! cells are stored; each knows its integer coordinates, geometric center,
//! contiguous particle range (particles are sorted by finest-level Morton
//! key, and coarse cells cover contiguous unions of their children's
//! ranges), and total absolute charge.

use std::collections::HashMap;

use mbt_geometry::{Aabb, Vec3};

/// FMM construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmmError {
    /// No particles supplied.
    Empty,
    /// A particle position or charge was NaN/∞.
    NonFinite {
        /// Caller-order index of the offending particle.
        index: usize,
    },
    /// More levels than the key resolution supports.
    TooManyLevels {
        /// Requested level count.
        levels: usize,
    },
    /// The degree policy can emit a degree beyond the table limit.
    DegreeTooLarge {
        /// Largest degree the selector can emit.
        degree: usize,
        /// The supported maximum ([`mbt_multipole::MAX_DEGREE`]).
        max: usize,
    },
    /// The hierarchy is deeper than the compiled backend's dense
    /// Morton-indexed tables support (the scalar reference has no such
    /// limit; [`crate::FmmEvaluator`] falls back to it).
    DenseGridTooDeep {
        /// Requested level count.
        levels: usize,
        /// The compiled maximum ([`crate::compiled::COMPILED_MAX_LEVELS`]).
        max: usize,
    },
}

impl std::fmt::Display for FmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmmError::Empty => write!(f, "cannot run the FMM over zero particles"),
            FmmError::NonFinite { index } => {
                write!(f, "particle {index} has a non-finite position or charge")
            }
            FmmError::TooManyLevels { levels } => {
                write!(f, "{levels} levels exceed the supported maximum of 20")
            }
            FmmError::DegreeTooLarge { degree, max } => {
                write!(
                    f,
                    "expansion degree {degree} exceeds the supported maximum of {max}"
                )
            }
            FmmError::DenseGridTooDeep { levels, max } => {
                write!(
                    f,
                    "{levels} levels exceed the compiled backend's dense-table maximum of {max}"
                )
            }
        }
    }
}

impl std::error::Error for FmmError {}

// The packed cell-coordinate key lives in the shared geometry key module;
// re-exported here under the names the FMM grids have always used.
pub use mbt_geometry::morton::{pack_cell as cell_key, unpack_cell as key_coords};

/// The occupied cells of one level.
#[derive(Debug, Clone)]
pub struct LevelGrid {
    /// Level index (root cube = level 0).
    pub level: usize,
    /// Cell lookup: packed coordinates → dense index.
    pub index: HashMap<u64, usize>,
    /// Packed coordinates per cell (dense order).
    pub keys: Vec<u64>,
    /// Geometric centers.
    pub centers: Vec<Vec3>,
    /// Contiguous particle ranges `[start, end)` in the sorted array.
    pub ranges: Vec<(u32, u32)>,
    /// Total absolute charge per cell.
    pub abs_charge: Vec<f64>,
    /// Cell edge length at this level.
    pub cell_edge: f64,
}

impl LevelGrid {
    /// Number of occupied cells.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the level has no occupied cells (never for a built FMM).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Dense index of the cell with the given coordinates, if occupied.
    #[inline]
    #[must_use]
    pub fn find(&self, x: u32, y: u32, z: u32) -> Option<usize> {
        self.index.get(&cell_key(x, y, z)).copied()
    }

    /// Median positive cell `|charge|` — the reference weight for the
    /// per-level adaptive degree rule.
    pub fn median_abs_charge(&self) -> f64 {
        let mut ws: Vec<f64> = self
            .abs_charge
            .iter()
            .copied()
            .filter(|&w| w > 0.0)
            // lint: allow(alloc, cold path: weight medians are taken once per build)
            .collect();
        if ws.is_empty() {
            return 0.0;
        }
        let mid = ws.len() / 2;
        *ws.select_nth_unstable_by(mid, f64::total_cmp).1
    }
}

/// The geometric center of cell `(x, y, z)` at a level with `cells` cells
/// per axis inside `bounds`.
#[must_use]
pub fn cell_center(bounds: &Aabb, cells: u32, x: u32, y: u32, z: u32) -> Vec3 {
    let edge = bounds.edge() / f64::from(cells);
    bounds.min
        + Vec3::new(
            (f64::from(x) + 0.5) * edge,
            (f64::from(y) + 0.5) * edge,
            (f64::from(z) + 0.5) * edge,
        )
}

/// The cell coordinates of a point at a level with `cells` per axis
/// (clamped to the grid).
#[must_use]
pub fn cell_of(bounds: &Aabb, cells: u32, p: Vec3) -> (u32, u32, u32) {
    let edge = bounds.edge() / f64::from(cells);
    let f = |v: f64, lo: f64| -> u32 { (((v - lo) / edge).floor().max(0.0) as u32).min(cells - 1) };
    (
        f(p.x, bounds.min.x),
        f(p.y, bounds.min.y),
        f(p.z, bounds.min.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for (x, y, z) in [(0, 0, 0), (1, 2, 3), (1 << 20, 5, (1 << 21) - 1)] {
            assert_eq!(key_coords(cell_key(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn cell_of_and_center_consistent() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let cells = 4u32;
        let p = Vec3::new(0.3, -0.9, 0.9);
        let (x, y, z) = cell_of(&b, cells, p);
        let c = cell_center(&b, cells, x, y, z);
        // the point lies within half a cell edge of its cell center
        let half = b.edge() / f64::from(cells) / 2.0;
        assert!((p - c).abs().max_component() <= half + 1e-12);
    }

    #[test]
    fn boundary_points_clamp() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let (x, y, z) = cell_of(&b, 4, Vec3::new(1.0, 1.0, 1.0)); // upper corner
        assert_eq!((x, y, z), (3, 3, 3));
        let (x, y, z) = cell_of(&b, 4, Vec3::new(-1.0, -1.0, -1.0));
        assert_eq!((x, y, z), (0, 0, 0));
        let (x, y, z) = cell_of(&b, 4, Vec3::new(5.0, -5.0, 0.0)); // outside
        assert_eq!((x, y, z), (3, 0, 2));
    }
}
