//! Fast Multipole Method with fixed or adaptive expansion degrees.
//!
//! The paper closes by noting that "the results presented in this paper can
//! easily be extended to the Fast Multipole Method as well. We are
//! currently exploring this." This crate carries that extension out: a
//! level-synchronised FMM over the same cubical decomposition, where the
//! expansion degree can be chosen **per level** by the same Theorem-3 rule
//! that the adaptive treecode applies per cluster (cluster weight grows
//! geometrically toward the root, so equalising per-translation error
//! prescribes a degree ramp along the levels).
//!
//! Pipeline: P2M (per level, from the particles, so every level's expansion
//! is accurate at its own degree) → M2L over the standard interaction lists
//! (children of the parent's neighbours that are not adjacent) → L2L down →
//! L2P plus direct near field over the 27 neighbouring finest cells.
//!
//! ```
//! use mbt_geometry::distribution::{uniform_cube, ChargeModel};
//! use mbt_fmm::{Fmm, FmmParams};
//!
//! let ps = uniform_cube(2000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7);
//! let fmm = Fmm::new(&ps, FmmParams::fixed(6).with_levels(3)).unwrap();
//! let result = fmm.potentials();
//! assert_eq!(result.values.len(), ps.len());
//! ```

#![forbid(unsafe_code)]

pub mod compiled;
pub mod grid;
pub mod method;

pub use compiled::{CompiledFmm, FmmEvaluator, COMPILED_MAX_LEVELS};
pub use grid::{cell_key, FmmError, LevelGrid};
pub use method::{Fmm, FmmEvalMode, FmmParams, MAX_LEVELS};
