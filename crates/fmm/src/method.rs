//! The FMM proper: construction, upward/downward passes, evaluation.

use std::collections::HashMap;

use mbt_geometry::{Aabb, Particle, Vec3};
use mbt_multipole::{DegreeSelector, LocalExpansion, MultipoleExpansion, MAX_DEGREE};
use mbt_treecode::EvalStats;
use rayon::prelude::*;

use crate::grid::{cell_center, cell_key, cell_of, key_coords, FmmError, LevelGrid};

/// Deepest supported level: finest-level cell coordinates must fit the
/// 21-bit-per-axis key resolution with headroom.
pub const MAX_LEVELS: usize = 20;

/// Which FMM implementation evaluates a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FmmEvalMode {
    /// The original per-cell scalar pipeline — the bit-exact reference.
    Scalar,
    /// Flat SoA arenas with precomputed per-offset M2L/L2L operators and
    /// batch kernels (see [`crate::compiled`]). Default.
    #[default]
    Compiled,
}

/// FMM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmmParams {
    /// Finest level `L` (the root is level 0). `None` picks
    /// `⌈log₈(n / 32)⌉` automatically (degenerate particle clouds —
    /// tiny `n`, coincident or collinear positions — resolve to level 0
    /// or 1, where the near field covers everything).
    pub levels: Option<usize>,
    /// Degree policy. `Fixed(p)` is the classical FMM; `Adaptive {..}`
    /// ramps the degree per level by cluster weight (Theorem 3 applied to
    /// the level-synchronised hierarchy).
    pub degree: DegreeSelector,
    /// Implementation switch (scalar reference vs compiled arenas).
    pub eval_mode: FmmEvalMode,
}

impl FmmParams {
    /// Classical fixed-degree FMM.
    #[must_use]
    pub fn fixed(p: usize) -> Self {
        FmmParams {
            levels: None,
            degree: DegreeSelector::Fixed(p),
            eval_mode: FmmEvalMode::default(),
        }
    }

    /// Adaptive per-level degrees with the same selector as the treecode.
    /// `alpha` only parameterises the decay ratio κ of the rule; the FMM's
    /// admissibility is the standard non-adjacency criterion.
    #[must_use]
    pub fn adaptive(p_min: usize, alpha: f64) -> Self {
        FmmParams {
            levels: None,
            degree: DegreeSelector::adaptive(p_min, alpha),
            eval_mode: FmmEvalMode::default(),
        }
    }

    /// Tolerance-driven per-level degrees: each level stores the smallest
    /// degree whose Theorem-1 bound — at the level's worst-case M2L
    /// geometry (cluster radius `d·√3/2`, center separation `2d`, i.e.
    /// the nearest non-adjacent cell) over the level's largest cell
    /// charge — meets `tol`.
    #[must_use]
    pub fn tolerance(tol: f64) -> Self {
        FmmParams {
            levels: None,
            degree: DegreeSelector::tolerance(tol),
            eval_mode: FmmEvalMode::default(),
        }
    }

    /// Overrides the automatic level count.
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Selects the implementation.
    #[must_use]
    pub fn with_eval_mode(mut self, mode: FmmEvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Checks the parameters against the structural limits, mirroring
    /// `TreecodeParams::validate`: every rejection is a typed
    /// [`FmmError`], never a downstream panic.
    pub fn validate(&self) -> Result<(), FmmError> {
        let degree = self.degree.max_degree();
        if degree > MAX_DEGREE {
            return Err(FmmError::DegreeTooLarge {
                degree,
                max: MAX_DEGREE,
            });
        }
        if let Some(levels) = self.levels {
            if levels > MAX_LEVELS {
                return Err(FmmError::TooManyLevels { levels });
            }
        }
        Ok(())
    }
}

/// Validates the inputs and resolves the finest level and root cube shared
/// by both FMM implementations.
///
/// The automatic level pick targets ~32 particles per finest cell under
/// the occupancy the particle cloud can actually sustain: `8^l` cells for
/// a volumetric cloud, only `~2^l` for a collinear one, and a single cell
/// for a coincident one — so degenerate inputs resolve to level 0 or 1
/// instead of building empty deep grids.
pub(crate) fn resolve_build(
    particles: &[Particle],
    params: &FmmParams,
) -> Result<(usize, Aabb), FmmError> {
    params.validate()?;
    if particles.is_empty() {
        return Err(FmmError::Empty);
    }
    for (i, p) in particles.iter().enumerate() {
        if !p.position.is_finite() || !p.charge.is_finite() {
            return Err(FmmError::NonFinite { index: i });
        }
    }
    let positions: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
    let bounds = Aabb::cubical_hull(&positions, 1e-9);
    let levels = match params.levels {
        Some(l) => l,
        None => auto_levels(particles),
    };
    debug_assert!(levels <= MAX_LEVELS, "validate() caps explicit levels");
    Ok((levels, bounds))
}

/// The automatic finest-level choice (see [`resolve_build`]).
fn auto_levels(particles: &[Particle]) -> usize {
    let n = particles.len();
    if n <= 32 {
        return 0;
    }
    let log2_cells = match spread_rank(particles) {
        SpreadRank::Coincident => return 0,
        SpreadRank::Collinear => 1.0, // occupancy grows ~2^l per level
        SpreadRank::Spatial => 3.0,   // full 8^l occupancy
    };
    let l = ((n as f64 / 32.0).log2() / log2_cells).ceil();
    l.clamp(0.0, MAX_LEVELS as f64) as usize
}

enum SpreadRank {
    Coincident,
    Collinear,
    Spatial,
}

/// Classifies the geometric spread of the cloud: a point, a line, or a
/// genuinely 2/3-dimensional set. One pass to find the farthest point from
/// the first, one pass to bound the perpendicular spread from that axis.
fn spread_rank(particles: &[Particle]) -> SpreadRank {
    let p0 = particles[0].position;
    let mut axis = Vec3::ZERO;
    let mut max_d2 = 0.0f64;
    for p in particles {
        let d = p.position - p0;
        let d2 = d.norm_sq();
        if d2 > max_d2 {
            max_d2 = d2;
            axis = d;
        }
    }
    let scale2 = max_d2.max(p0.norm_sq() * 1e-24);
    // lint: allow(float_cmp, exact-zero: a coincident cloud has literally zero spread)
    if max_d2 <= scale2 * 1e-24 || max_d2 == 0.0 {
        return SpreadRank::Coincident;
    }
    let perp_tol2 = max_d2 * 1e-18; // 1e-9 of the cloud diameter
    for p in particles {
        let d = p.position - p0;
        // squared perpendicular distance from the (p0, axis) line
        let cross = d.cross(axis);
        if cross.norm_sq() / max_d2 > perp_tol2 {
            return SpreadRank::Spatial;
        }
    }
    SpreadRank::Collinear
}

/// The structure every FMM implementation shares: Morton-sorted particles,
/// per-level occupied-cell grids, and per-level expansion degrees.
pub(crate) struct FmmStructure {
    pub bounds: Aabb,
    pub levels: usize,
    pub degrees: Vec<usize>,
    pub sorted: Vec<Particle>,
    pub perm: Vec<usize>,
    pub grids: Vec<LevelGrid>,
}

/// Validates, sorts, grids, and picks degrees — the build prefix common to
/// the scalar reference and the compiled arenas.
pub(crate) fn build_structure(
    particles: &[Particle],
    params: &FmmParams,
) -> Result<FmmStructure, FmmError> {
    let (levels, bounds) = resolve_build(particles, params)?;
    let cells_finest = 1u32 << levels;

    // sort particles by finest-level Morton-ordered cell key
    let mut keyed: Vec<(u64, u32)> = particles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (x, y, z) = cell_of(&bounds, cells_finest, p.position);
            (mbt_geometry::morton::encode(x, y, z), i as u32)
        })
        .collect();
    keyed.par_sort_unstable();
    let perm: Vec<usize> = keyed.iter().map(|&(_, i)| i as usize).collect();
    let sorted: Vec<Particle> = perm.iter().map(|&i| particles[i]).collect();

    // build the finest grid from sorted runs
    let mut grids: Vec<LevelGrid> = Vec::with_capacity(levels + 1);
    for level in 0..=levels {
        grids.push(LevelGrid {
            level,
            index: HashMap::new(),
            keys: Vec::new(),
            centers: Vec::new(),
            ranges: Vec::new(),
            abs_charge: Vec::new(),
            cell_edge: bounds.edge() / f64::from(1u32 << level),
        });
    }
    {
        let g = &mut grids[levels];
        let mut start = 0usize;
        while start < keyed.len() {
            let code = keyed[start].0;
            let mut end = start;
            while end < keyed.len() && keyed[end].0 == code {
                end += 1;
            }
            let (x, y, z) = mbt_geometry::morton::decode(code);
            let key = cell_key(x, y, z);
            g.index.insert(key, g.keys.len());
            g.keys.push(key);
            g.centers.push(cell_center(&bounds, cells_finest, x, y, z));
            g.ranges.push((start as u32, end as u32));
            g.abs_charge
                .push(sorted[start..end].iter().map(|p| p.charge.abs()).sum());
            start = end;
        }
    }
    // coarser levels by aggregating children
    for level in (0..levels).rev() {
        let (coarse, fine) = {
            let (a, b) = grids.split_at_mut(level + 1);
            (&mut a[level], &b[0])
        };
        let cells = 1u32 << level;
        for ci in 0..fine.len() {
            let (x, y, z) = key_coords(fine.keys[ci]);
            let pk = cell_key(x >> 1, y >> 1, z >> 1);
            if let Some(&pi) = coarse.index.get(&pk) {
                coarse.ranges[pi].1 = coarse.ranges[pi].1.max(fine.ranges[ci].1);
                coarse.ranges[pi].0 = coarse.ranges[pi].0.min(fine.ranges[ci].0);
                coarse.abs_charge[pi] += fine.abs_charge[ci];
            } else {
                let (px, py, pz) = (x >> 1, y >> 1, z >> 1);
                coarse.index.insert(pk, coarse.keys.len());
                coarse.keys.push(pk);
                coarse.centers.push(cell_center(&bounds, cells, px, py, pz));
                coarse.ranges.push(fine.ranges[ci]);
                coarse.abs_charge.push(fine.abs_charge[ci]);
            }
        }
    }

    // per-level degrees. Fixed/Adaptive equalise against the finest
    // level's median weight as reference (weights grow toward the root);
    // Tolerance picks, per level, the smallest degree whose Theorem-1
    // bound at the level's worst M2L geometry (cluster radius d·√3/2,
    // center separation 2d — the nearest non-adjacent cell) over the
    // level's **largest** cell charge meets the budget, so every compiled
    // translation honours `tol`.
    let ref_weight = grids[levels].median_abs_charge().max(1e-300);
    let degrees: Vec<usize> = (0..=levels)
        .map(|l| {
            if let DegreeSelector::Tolerance { tol, p_min, p_max } = params.degree {
                let edge = grids[l].cell_edge;
                let a = edge * mbt_multipole::bounds::CUBE_CIRCUMRADIUS_RATIO;
                let q_max = grids[l].abs_charge.iter().copied().fold(0.0f64, f64::max);
                return mbt_multipole::degree_for_tolerance_at(q_max, a, 2.0 * edge, tol, p_max)
                    .max(p_min);
            }
            let w = params
                .degree
                .weight(grids[l].median_abs_charge(), grids[l].cell_edge);
            let wr = params.degree.weight(ref_weight, grids[levels].cell_edge);
            params.degree.degree_for(w, wr)
        })
        .collect();

    Ok(FmmStructure {
        bounds,
        levels,
        degrees,
        sorted,
        perm,
        grids,
    })
}

/// A fully built FMM, ready to evaluate.
pub struct Fmm {
    bounds: Aabb,
    levels: usize,
    degrees: Vec<usize>, // per level
    particles: Vec<Particle>,
    perm: Vec<usize>,
    grids: Vec<LevelGrid>,
    multipoles: Vec<Vec<MultipoleExpansion>>, // [level][cell]
    locals: Vec<Vec<LocalExpansion>>,         // [level][cell]
    /// Counters from the build's translation work (M2L/L2L/L2P are counted
    /// during evaluation; P2M/M2L totals here).
    pub translation_terms: u64,
}

impl Fmm {
    /// Builds the FMM over a particle set.
    pub fn new(particles: &[Particle], params: FmmParams) -> Result<Fmm, FmmError> {
        let FmmStructure {
            bounds,
            levels,
            degrees,
            sorted,
            perm,
            grids,
        } = build_structure(particles, &params)?;

        // upward: P2M per level directly from the particles (each level's
        // expansion is then exact at its own degree — see the crate docs)
        let mut translation_terms = 0u64;
        let mut multipoles: Vec<Vec<MultipoleExpansion>> = Vec::with_capacity(levels + 1);
        for (l, grid) in grids.iter().enumerate() {
            let p = degrees[l];
            let exps: Vec<MultipoleExpansion> = (0..grid.len())
                .into_par_iter()
                .map(|ci| {
                    let (s, e) = grid.ranges[ci];
                    MultipoleExpansion::from_particles(
                        grid.centers[ci],
                        p,
                        &sorted[s as usize..e as usize],
                    )
                })
                .collect();
            translation_terms += (grid.len() as u64) * ((p as u64 + 1) * (p as u64 + 1));
            multipoles.push(exps);
        }

        // downward: locals per level; levels 0 and 1 have no
        // well-separated cells
        let mut locals: Vec<Vec<LocalExpansion>> = (0..=levels)
            .map(|l| {
                let p = degrees[l];
                grids[l]
                    .centers
                    .iter()
                    .map(|&c| LocalExpansion::zero(c, p))
                    .collect()
            })
            .collect();
        for l in 2..=levels {
            let p = degrees[l];
            let parent_grid = &grids[l - 1];
            let grid = &grids[l];
            let mults = &multipoles[l];
            let parent_locals: Vec<LocalExpansion> = std::mem::take(&mut locals[l - 1]);
            let new_locals: Vec<LocalExpansion> = (0..grid.len())
                .into_par_iter()
                .map(|ci| {
                    let (x, y, z) = key_coords(grid.keys[ci]);
                    let center = grid.centers[ci];
                    // L2L from the parent
                    let (px, py, pz) = (x >> 1, y >> 1, z >> 1);
                    let pi = parent_grid
                        .find(px, py, pz)
                        // lint: allow(panic, grid levels are built by halving occupied keys, so the parent cell exists)
                        .expect("every cell has an occupied parent");
                    let mut local = parent_locals[pi].translated(center, p);
                    // M2L from the interaction list: children of the
                    // parent's neighbours that are not adjacent to us
                    for dx in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dz in -1i64..=1 {
                                let nx = i64::from(px) + dx;
                                let ny = i64::from(py) + dy;
                                let nz = i64::from(pz) + dz;
                                let max = (1i64 << (l - 1)) - 1;
                                if nx < 0 || ny < 0 || nz < 0 || nx > max || ny > max || nz > max {
                                    continue;
                                }
                                for ox in 0..2i64 {
                                    for oy in 0..2i64 {
                                        for oz in 0..2i64 {
                                            let cx = (nx << 1) + ox;
                                            let cy = (ny << 1) + oy;
                                            let cz = (nz << 1) + oz;
                                            if (cx - i64::from(x)).abs() <= 1
                                                && (cy - i64::from(y)).abs() <= 1
                                                && (cz - i64::from(z)).abs() <= 1
                                            {
                                                continue; // adjacent: near field
                                            }
                                            if let Some(si) =
                                                grid.find(cx as u32, cy as u32, cz as u32)
                                            {
                                                local.accumulate(&mults[si].to_local(center, p));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    local
                })
                .collect();
            locals[l - 1] = parent_locals;
            locals[l] = new_locals;
        }

        Ok(Fmm {
            bounds,
            levels,
            degrees,
            particles: sorted,
            perm,
            grids,
            multipoles,
            locals,
            translation_terms,
        })
    }

    /// The finest level index.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The per-level expansion degrees.
    #[must_use]
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// The root bounding cube.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The level grids (index 0 = root).
    #[must_use]
    pub fn grids(&self) -> &[LevelGrid] {
        &self.grids
    }

    /// The multipole expansions of one level (diagnostics / testing).
    #[must_use]
    pub fn multipoles(&self, level: usize) -> &[MultipoleExpansion] {
        &self.multipoles[level]
    }

    /// The local expansions of one level (diagnostics / testing).
    #[must_use]
    pub fn locals(&self, level: usize) -> &[LocalExpansion] {
        &self.locals[level]
    }

    /// Potentials at all source particles, caller order.
    #[must_use]
    pub fn potentials(&self) -> mbt_treecode::EvalResult<f64> {
        let finest = &self.grids[self.levels];
        let locals = &self.locals[self.levels];
        let p = self.degrees[self.levels];
        let cells_finest = 1u32 << self.levels;

        let per_cell: Vec<(Vec<f64>, EvalStats)> = (0..finest.len())
            .into_par_iter()
            .map(|ci| {
                let mut stats = EvalStats::default();
                let (s, e) = finest.ranges[ci];
                let (x, y, z) = key_coords(finest.keys[ci]);
                // gather near-field cell ranges once per cell
                let mut near: Vec<(u32, u32)> = Vec::with_capacity(27);
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let nx = i64::from(x) + dx;
                            let ny = i64::from(y) + dy;
                            let nz = i64::from(z) + dz;
                            if nx < 0
                                || ny < 0
                                || nz < 0
                                || nx >= i64::from(cells_finest)
                                || ny >= i64::from(cells_finest)
                                || nz >= i64::from(cells_finest)
                            {
                                continue;
                            }
                            if let Some(ni) = finest.find(nx as u32, ny as u32, nz as u32) {
                                near.push(finest.ranges[ni]);
                            }
                        }
                    }
                }
                let vals: Vec<f64> = (s..e)
                    .map(|i| {
                        let xi = self.particles[i as usize].position;
                        let mut phi = locals[ci].potential_at(xi);
                        stats.record_interaction(p); // the L2P evaluation
                        let mut pairs = 0u64;
                        for &(ns, ne) in &near {
                            for j in ns..ne {
                                if j != i {
                                    let pj = &self.particles[j as usize];
                                    phi += pj.charge / pj.position.distance(xi);
                                    pairs += 1;
                                }
                            }
                        }
                        stats.record_direct(pairs);
                        phi
                    })
                    .collect();
                stats.targets = u64::from(e - s);
                (vals, stats)
            })
            .collect();

        let mut values = vec![0.0f64; self.particles.len()];
        let mut stats = EvalStats::default();
        for (ci, (vals, s)) in per_cell.into_iter().enumerate() {
            let (cs, _) = finest.ranges[ci];
            for (k, v) in vals.into_iter().enumerate() {
                values[cs as usize + k] = v;
            }
            stats.merge(&s);
        }
        // scatter to caller order
        let mut out = vec![0.0f64; values.len()];
        for (i, &orig) in self.perm.iter().enumerate() {
            out[orig] = values[i];
        }
        mbt_treecode::EvalResult { values: out, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};
    use mbt_treecode::relative_error;

    fn charges() -> ChargeModel {
        ChargeModel::RandomSign { magnitude: 1.0 }
    }

    #[test]
    fn fmm_matches_direct_uniform() {
        let ps = uniform_cube(3000, 1.0, charges(), 3);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        let mut prev = f64::INFINITY;
        for p in [3usize, 6, 10] {
            let fmm = Fmm::new(&ps, FmmParams::fixed(p).with_levels(3)).unwrap();
            let r = fmm.potentials();
            let err = relative_error(&r.values, &exact);
            assert!(err < prev, "error must fall with degree: p={p}, err={err}");
            prev = err;
        }
        assert!(prev < 5e-6, "p=10 error {prev}");
    }

    #[test]
    fn fmm_matches_direct_gaussian() {
        let ps = gaussian(2000, Vec3::ZERO, 0.5, charges(), 11);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        let fmm = Fmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
        let r = fmm.potentials();
        assert!(relative_error(&r.values, &exact) < 1e-4);
    }

    #[test]
    fn adaptive_degrees_ramp_toward_root() {
        let ps = uniform_cube(8000, 1.0, charges(), 5);
        let fmm = Fmm::new(&ps, FmmParams::adaptive(3, 0.7).with_levels(4)).unwrap();
        let d = fmm.degrees();
        assert_eq!(d.len(), 5);
        assert!(d[4] == 3, "finest level at p_min");
        assert!(
            d[0] >= d[4],
            "root degree must not be below the leaf degree"
        );
        // monotone non-increasing toward finer levels
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn adaptive_fmm_beats_fixed_at_p_min() {
        let ps = uniform_cube(6000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 7);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        let fixed = Fmm::new(&ps, FmmParams::fixed(3).with_levels(4)).unwrap();
        let adaptive = Fmm::new(&ps, FmmParams::adaptive(3, 0.7).with_levels(4)).unwrap();
        let e_fixed = relative_error(&fixed.potentials().values, &exact);
        let e_adaptive = relative_error(&adaptive.potentials().values, &exact);
        assert!(
            e_adaptive < e_fixed,
            "adaptive FMM ({e_adaptive}) must beat fixed ({e_fixed})"
        );
    }

    #[test]
    fn auto_levels_reasonable() {
        let ps = uniform_cube(4000, 1.0, charges(), 9);
        let fmm = Fmm::new(&ps, FmmParams::fixed(4)).unwrap();
        assert!(
            fmm.levels() >= 2 && fmm.levels() <= 6,
            "levels = {}",
            fmm.levels()
        );
    }

    #[test]
    fn stats_accumulate() {
        let ps = uniform_cube(2000, 1.0, charges(), 13);
        let fmm = Fmm::new(&ps, FmmParams::fixed(5).with_levels(3)).unwrap();
        let r = fmm.potentials();
        assert_eq!(r.stats.targets, 2000);
        assert_eq!(r.stats.pc_interactions, 2000); // one L2P per particle
        assert!(r.stats.direct_pairs > 0);
        assert!(fmm.translation_terms > 0);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            Fmm::new(&[], FmmParams::fixed(4)).err().unwrap(),
            FmmError::Empty
        );
        let bad = [Particle::new(Vec3::new(0.0, f64::NAN, 0.0), 1.0)];
        assert_eq!(
            Fmm::new(&bad, FmmParams::fixed(4)).err().unwrap(),
            FmmError::NonFinite { index: 0 }
        );
        let ok = [Particle::new(Vec3::ZERO, 1.0), Particle::new(Vec3::X, 1.0)];
        assert_eq!(
            Fmm::new(&ok, FmmParams::fixed(4).with_levels(25))
                .err()
                .unwrap(),
            FmmError::TooManyLevels { levels: 25 }
        );
    }

    #[test]
    fn degree_validation_is_typed() {
        let ps = uniform_cube(100, 1.0, charges(), 3);
        let err = Fmm::new(&ps, FmmParams::fixed(100)).err().unwrap();
        assert!(matches!(err, FmmError::DegreeTooLarge { degree: 100, .. }));
        // validate() alone rejects without touching particles
        assert!(FmmParams::fixed(100).validate().is_err());
        assert!(FmmParams::fixed(8).validate().is_ok());
    }

    #[test]
    fn tiny_n_resolves_to_shallow_levels() {
        for n in [1usize, 2, 8, 32] {
            let ps = uniform_cube(n, 1.0, charges(), 17);
            let fmm = Fmm::new(&ps, FmmParams::fixed(4)).unwrap();
            assert_eq!(fmm.levels(), 0, "n={n} must resolve to level 0");
            // level 0 = a single cell: everything is near field (direct sum)
            let exact = mbt_treecode::direct::direct_potentials(&ps);
            let r = fmm.potentials();
            if n > 1 {
                assert!(relative_error(&r.values, &exact) < 1e-13);
            }
        }
        let ps = uniform_cube(64, 1.0, charges(), 19);
        let fmm = Fmm::new(&ps, FmmParams::fixed(4)).unwrap();
        assert!(fmm.levels() <= 1, "n=64 must resolve to level 0 or 1");
    }

    #[test]
    fn coincident_particles_resolve_to_level_zero() {
        let ps: Vec<Particle> = (0..500)
            .map(|i| Particle::new(Vec3::new(0.25, -0.5, 1.0), 1.0 - 2.0 * f64::from(i % 2)))
            .collect();
        let fmm = Fmm::new(&ps, FmmParams::fixed(4)).unwrap();
        assert_eq!(fmm.levels(), 0);
        let _ = fmm.potentials(); // must not panic (pairs at distance 0 aside)
    }

    #[test]
    fn collinear_particles_resolve_shallow_and_match_direct() {
        let ps: Vec<Particle> = (0..600)
            .map(|i| {
                let t = f64::from(i) / 599.0;
                Particle::new(Vec3::new(t, 2.0 * t, -t), 1.0 - 2.0 * f64::from(i % 2))
            })
            .collect();
        let fmm = Fmm::new(&ps, FmmParams::fixed(8)).unwrap();
        // 2^l-style occupancy: ceil(log2(600/32)) = 5 levels, not 8^l-deep
        assert!(
            fmm.levels() <= 6,
            "collinear cloud over-refined: {}",
            fmm.levels()
        );
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        let r = fmm.potentials();
        assert!(relative_error(&r.values, &exact) < 1e-3);
    }

    #[test]
    fn explicit_shallow_levels_are_exact_direct_sums() {
        let ps = uniform_cube(300, 1.0, charges(), 23);
        let exact = mbt_treecode::direct::direct_potentials(&ps);
        for levels in [0usize, 1] {
            let fmm = Fmm::new(&ps, FmmParams::fixed(3).with_levels(levels)).unwrap();
            assert_eq!(fmm.levels(), levels);
            let r = fmm.potentials();
            assert!(
                relative_error(&r.values, &exact) < 1e-13,
                "levels={levels}: shallow grids have no far field, results must be exact"
            );
        }
    }

    #[test]
    fn two_particles_far_apart() {
        let ps = [
            Particle::new(Vec3::ZERO, 1.0),
            Particle::new(Vec3::new(1.0, 1.0, 1.0), -2.0),
        ];
        let fmm = Fmm::new(&ps, FmmParams::fixed(20).with_levels(2)).unwrap();
        let r = fmm.potentials();
        let d = 3.0f64.sqrt();
        assert!((r.values[0] - -2.0 / d).abs() < 1e-8);
        assert!((r.values[1] - 1.0 / d).abs() < 1e-8);
    }
}
