//! FMM consistency tests: level-count invariance, near/far decomposition,
//! agreement with the treecode, and scaling behaviour.

use mbt_fmm::{Fmm, FmmParams};
use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_treecode::direct::direct_potentials;
use mbt_treecode::relative_error;

fn charges() -> ChargeModel {
    ChargeModel::RandomSign { magnitude: 1.0 }
}

#[test]
fn level_count_does_not_change_the_answer_much() {
    // different level counts redistribute work between near and far field;
    // at high degree all must agree with the direct sum
    let ps = uniform_cube(2500, 1.0, charges(), 3);
    let exact = direct_potentials(&ps);
    for levels in [2usize, 3, 4] {
        let fmm = Fmm::new(&ps, FmmParams::fixed(12).with_levels(levels)).unwrap();
        let err = relative_error(&fmm.potentials().values, &exact);
        assert!(err < 1e-6, "levels = {levels}: error {err}");
    }
}

#[test]
fn deeper_trees_shift_work_from_direct_to_expansions() {
    let ps = uniform_cube(4000, 1.0, charges(), 5);
    let shallow = Fmm::new(&ps, FmmParams::fixed(4).with_levels(2)).unwrap();
    let deep = Fmm::new(&ps, FmmParams::fixed(4).with_levels(4)).unwrap();
    let rs = shallow.potentials();
    let rd = deep.potentials();
    assert!(
        rd.stats.direct_pairs < rs.stats.direct_pairs,
        "deeper tree must reduce near-field work: {} vs {}",
        rd.stats.direct_pairs,
        rs.stats.direct_pairs
    );
}

#[test]
fn agrees_with_treecode_on_unstructured_instance() {
    let ps = overlapped_gaussians(3000, 3, 2.0, 0.5, charges(), 7);
    let exact = direct_potentials(&ps);
    let fmm = Fmm::new(&ps, FmmParams::fixed(10).with_levels(3)).unwrap();
    let e = relative_error(&fmm.potentials().values, &exact);
    assert!(e < 1e-5, "unstructured FMM error {e}");
}

#[test]
fn charges_scale_linearly() {
    let ps = uniform_cube(1500, 1.0, charges(), 11);
    let scaled: Vec<Particle> = ps
        .iter()
        .map(|p| Particle::new(p.position, p.charge * 5.0))
        .collect();
    let a = Fmm::new(&ps, FmmParams::fixed(6).with_levels(3))
        .unwrap()
        .potentials()
        .values;
    let b = Fmm::new(&scaled, FmmParams::fixed(6).with_levels(3))
        .unwrap()
        .potentials()
        .values;
    for (x, y) in a.iter().zip(&b) {
        assert!((5.0 * x - y).abs() < 1e-9 * (1.0 + y.abs()));
    }
}

#[test]
fn results_in_caller_order() {
    // reversing the input ordering must reverse the output
    let ps = uniform_cube(800, 1.0, charges(), 13);
    let mut rev = ps.clone();
    rev.reverse();
    let a = Fmm::new(&ps, FmmParams::fixed(8).with_levels(3))
        .unwrap()
        .potentials()
        .values;
    let b = Fmm::new(&rev, FmmParams::fixed(8).with_levels(3))
        .unwrap()
        .potentials()
        .values;
    for i in 0..ps.len() {
        assert!(
            (a[i] - b[ps.len() - 1 - i]).abs() < 1e-12 * (1.0 + a[i].abs()),
            "order not preserved at {i}"
        );
    }
}

#[test]
fn empty_cells_are_skipped_gracefully() {
    // a very clustered instance leaves most finest-level cells empty
    let tight = overlapped_gaussians(1000, 2, 3.0, 0.05, charges(), 17);
    let exact = direct_potentials(&tight);
    let fmm = Fmm::new(&tight, FmmParams::fixed(10).with_levels(4)).unwrap();
    let e = relative_error(&fmm.potentials().values, &exact);
    assert!(e < 1e-4, "clustered instance error {e}");
    // most cells empty: finest grid holds far fewer cells than 8^4
    assert!(fmm.grids()[4].len() < 4096 / 4);
}

#[test]
fn near_coincident_particles_handled() {
    // a tight clump (spacings ~1e-6) plus one distant particle: the clump
    // lands in a single finest cell, all clump pairs resolve directly
    let mut ps: Vec<Particle> = (0..20)
        .map(|k| {
            Particle::new(
                Vec3::new(0.25, 0.25, 0.25)
                    + Vec3::new(f64::from(k), 2.0 * f64::from(k), 0.5 * f64::from(k)) * 1e-6,
                1.0,
            )
        })
        .collect();
    ps.push(Particle::new(Vec3::new(-0.5, -0.5, -0.5), -2.0));
    let fmm = Fmm::new(&ps, FmmParams::fixed(6).with_levels(3)).unwrap();
    let r = fmm.potentials();
    assert!(r.values.iter().all(|v| v.is_finite()));
    let exact = direct_potentials(&ps);
    let e = relative_error(&r.values, &exact);
    assert!(e < 1e-6, "near-coincident error {e}");
}
