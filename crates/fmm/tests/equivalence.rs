//! Cross-backend equivalence: compiled FMM vs scalar FMM (values and
//! bit-identical instrumentation), and FMM vs treecode vs direct sum
//! within the resolved Theorem 1/2 budget — on uniform and clustered
//! distributions, for potentials and fields.
//!
//! The budget formulation mirrors the engine's sharded suite: under a
//! `Tolerance` degree policy every admitted interaction carries a
//! per-interaction Theorem-2 bound of at most `tol`, a target sees
//! `interactions_per_target` of them, and partial cancellation keeps the
//! real error well under the sum — the 4× factor is the same safety
//! margin the rest of the workspace pins.

use mbt_fmm::{CompiledFmm, Fmm, FmmEvalMode, FmmParams};
use mbt_geometry::distribution::{overlapped_gaussians, uniform_cube, ChargeModel};
use mbt_geometry::{Particle, Vec3};
use mbt_treecode::direct::direct_potentials_at;
use mbt_treecode::{relative_error, Treecode, TreecodeParams};

fn charges() -> ChargeModel {
    ChargeModel::RandomSign { magnitude: 1.0 }
}

fn uniform(n: usize, seed: u64) -> Vec<Particle> {
    uniform_cube(n, 1.0, charges(), seed)
}

fn clustered(n: usize, seed: u64) -> Vec<Particle> {
    overlapped_gaussians(n, 4, 2.0, 0.3, charges(), seed)
}

/// Targets inside the hull, in the sparse shell, and outside the bounds.
fn probe_points() -> Vec<Vec3> {
    (0..48)
        .map(|i| {
            let a = f64::from(i) * 0.61;
            let r = 0.15 + 0.05 * f64::from(i);
            Vec3::new(r * a.cos(), r * a.sin(), 0.03 * f64::from(i) - 0.7)
        })
        .collect()
}

#[test]
fn compiled_matches_scalar_on_both_distributions() {
    for (ps, label) in [
        (uniform(2500, 3), "uniform"),
        (clustered(2500, 5), "clustered"),
    ] {
        for params in [
            FmmParams::fixed(5).with_levels(3),
            FmmParams::adaptive(3, 0.7).with_levels(3),
        ] {
            let scalar = Fmm::new(&ps, params.with_eval_mode(FmmEvalMode::Scalar)).unwrap();
            let compiled = CompiledFmm::new(&ps, params).unwrap();
            assert_eq!(scalar.degrees(), compiled.degrees(), "{label}");
            let rs = scalar.potentials();
            let rc = compiled.potentials();
            // bit-identical instrumentation: same interactions, same
            // degrees, same near-field pair count
            assert_eq!(rs.stats, rc.stats, "{label}: instrumentation drifted");
            // identical math up to summation order
            let e = relative_error(&rc.values, &rs.values);
            assert!(e < 1e-11, "{label}: compiled vs scalar error {e}");
        }
    }
}

#[test]
fn backends_agree_within_the_tolerance_budget_on_potentials() {
    // tolerances much below 1e-3 resolve degrees past p ≈ 12, and the
    // compiled backend's operator compilation scales as p⁶ per level —
    // fine in release, minutes in the unoptimized test profile. 1e-3
    // keeps the resolved degrees single-digit while still exercising the
    // full Tolerance policy end to end.
    let tol = 1e-3;
    let pts = probe_points();
    for (ps, label) in [
        (uniform(2000, 7), "uniform"),
        (clustered(2000, 11), "clustered"),
    ] {
        let exact = direct_potentials_at(&ps, &pts);
        let fmm = CompiledFmm::new(&ps, FmmParams::tolerance(tol)).unwrap();
        let rf = fmm.potentials_at(&pts);
        let tc = Treecode::new(&ps, TreecodeParams::tolerance(tol, 0.6)).unwrap();
        let rt = tc.potentials_at(&pts);
        let mut budgets = [0.0f64; 2];
        for (which, (got, backend)) in [(&rf, "fmm"), (&rt, "treecode")].into_iter().enumerate() {
            let budget = tol * got.stats.interactions_per_target().max(1.0) * 4.0;
            budgets[which] = budget;
            let worst = got
                .values
                .iter()
                .zip(&exact)
                .map(|(g, e)| (g - e).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= budget,
                "{label}/{backend}: max error {worst} exceeds budget {budget}"
            );
        }
        // and against each other: each inside its own budget, so their
        // difference stays within the summed budgets
        let cross = rf
            .values
            .iter()
            .zip(&rt.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            cross <= budgets[0] + budgets[1],
            "{label}: fmm vs treecode drift {cross} exceeds {}",
            budgets[0] + budgets[1]
        );
    }
}

#[test]
fn backends_agree_on_fields() {
    // Theorem-budget bookkeeping covers potentials; for gradients the
    // workspace pins the empirical κ^(p+1) decay at p = 8 that the
    // compiled-FMM unit suite also asserts.
    let pts = probe_points();
    for (ps, label) in [
        (uniform(2000, 13), "uniform"),
        (clustered(2000, 17), "clustered"),
    ] {
        let fmm = CompiledFmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
        let rf = fmm.fields_at(&pts);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.6)).unwrap();
        let rt = tc.fields_at(&pts);
        for (k, &pt) in pts.iter().enumerate() {
            let mut phi = 0.0;
            let mut grad = Vec3::ZERO;
            for p in &ps {
                let d = pt - p.position;
                let r2 = d.norm_sq();
                let r = r2.sqrt();
                phi += p.charge / r;
                grad += d * (-p.charge / (r2 * r));
            }
            for (got, backend) in [(&rf, "fmm"), (&rt, "treecode")] {
                let (gphi, ggrad) = got.values[k];
                assert!(
                    (gphi - phi).abs() <= 1e-3 * phi.abs().max(1.0),
                    "{label}/{backend}: phi at {k}: {gphi} vs {phi}"
                );
                assert!(
                    ggrad.distance(grad) <= 2e-3 * grad.norm().max(1.0),
                    "{label}/{backend}: grad at {k}: {ggrad:?} vs {grad:?}"
                );
            }
        }
    }
}

#[test]
fn degree_policies_resolve_identically_across_fmm_modes() {
    // the Tolerance policy resolves per level against the FMM's own
    // worst-case geometry — the compiled and scalar pipelines must agree
    // on the resolved degrees or their budgets diverge silently. (The
    // tolerances stay ≥ 1e-3: tighter ones resolve degrees whose p⁶
    // operator compilation dominates the unoptimized test profile.)
    let ps = uniform(2000, 19);
    for tol in [1e-2, 1e-3] {
        let params = FmmParams::tolerance(tol);
        let scalar = Fmm::new(&ps, params.with_eval_mode(FmmEvalMode::Scalar)).unwrap();
        let compiled = CompiledFmm::new(&ps, params).unwrap();
        assert_eq!(scalar.degrees(), compiled.degrees(), "tol = {tol}");
    }
}
