//! Axis-aligned bounding boxes.
//!
//! The octree of the treecode works on *cubical* cells, so besides the usual
//! AABB operations this module provides [`Aabb::cubical_hull`], which pads a
//! tight bounding box of a point set into the smallest enclosing cube — the
//! root cell of the decomposition.

use crate::vec3::Vec3;

/// An axis-aligned box `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower corner.
    pub min: Vec3,
    /// Upper corner.
    pub max: Vec3,
}

impl Aabb {
    /// A box from explicit corners. `min` must be component-wise `<= max`.
    #[inline]
    #[must_use]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z);
        Aabb { min, max }
    }

    /// The empty box (inverted infinities), identity for [`Aabb::union`] /
    /// [`Aabb::grow`].
    #[inline]
    #[must_use]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// A cube centred at `center` with edge length `edge`.
    #[inline]
    #[must_use]
    pub fn cube(center: Vec3, edge: f64) -> Self {
        let h = Vec3::splat(edge * 0.5);
        Aabb {
            min: center - h,
            max: center + h,
        }
    }

    /// Tight bounding box of a point set. Returns [`Aabb::empty`] for an
    /// empty slice.
    #[must_use]
    pub fn of_points(points: &[Vec3]) -> Self {
        let mut b = Aabb::empty();
        for &p in points {
            b.grow(p);
        }
        b
    }

    /// Smallest enclosing *cube* of a point set, inflated by `pad_rel`
    /// (relative to the edge) so boundary points land strictly inside.
    ///
    /// Used to build the root cell of the octree: cubical cells keep the
    /// "box dimension" of the multipole acceptance criterion unambiguous.
    #[must_use]
    pub fn cubical_hull(points: &[Vec3], pad_rel: f64) -> Self {
        let tight = Aabb::of_points(points);
        if !tight.is_valid() {
            return Aabb::cube(Vec3::ZERO, 1.0);
        }
        let center = tight.center();
        let mut edge = tight.extent().max_component();
        if edge <= 0.0 {
            edge = 1.0; // all points coincide
        }
        Aabb::cube(center, edge * (1.0 + pad_rel))
    }

    /// True when `min <= max` on all axes (i.e. not [`Aabb::empty`]).
    #[inline]
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.min.x <= self.max.x && self.min.y <= self.max.y && self.min.z <= self.max.z
    }

    /// Box center.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (`max - min`).
    #[inline]
    #[must_use]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// The largest edge — the "dimension of the box enclosing the cluster"
    /// in the paper's α-criterion.
    #[inline]
    #[must_use]
    pub fn edge(&self) -> f64 {
        self.extent().max_component()
    }

    /// Half of the space diagonal: the radius of the circumscribed sphere,
    /// i.e. the `a` of Theorem 1 for a cluster filling this box.
    #[inline]
    #[must_use]
    pub fn circumradius(&self) -> f64 {
        self.extent().norm() * 0.5
    }

    /// Extends the box to contain `p`.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both operands.
    #[inline]
    #[must_use]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The child cube of an octree cell. `octant` bits select the upper half
    /// along x (bit 0), y (bit 1), z (bit 2). The parent is assumed cubical.
    #[inline]
    #[must_use]
    pub fn octant(&self, octant: usize) -> Aabb {
        debug_assert!(octant < 8);
        let c = self.center();
        let pick = |bit: usize, lo: f64, mid: f64, hi: f64| -> (f64, f64) {
            if octant >> bit & 1 == 1 {
                (mid, hi)
            } else {
                (lo, mid)
            }
        };
        let (x0, x1) = pick(0, self.min.x, c.x, self.max.x);
        let (y0, y1) = pick(1, self.min.y, c.y, self.max.y);
        let (z0, z1) = pick(2, self.min.z, c.z, self.max.z);
        Aabb::new(Vec3::new(x0, y0, z0), Vec3::new(x1, y1, z1))
    }

    /// Index of the octant of this box containing `p` (points on a split
    /// plane go to the upper octant).
    #[inline]
    #[must_use]
    pub fn octant_of(&self, p: Vec3) -> usize {
        let c = self.center();
        usize::from(p.x >= c.x) | usize::from(p.y >= c.y) << 1 | usize::from(p.z >= c.z) << 2
    }

    /// Minimum distance from `p` to the box (0 inside).
    #[must_use]
    pub fn distance_to(&self, p: Vec3) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        Vec3::new(dx, dy, dz).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_union_identity() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(Aabb::empty().union(&b), b);
        assert!(!Aabb::empty().is_valid());
    }

    #[test]
    fn of_points_is_tight() {
        let pts = [
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::new(3.0, -4.0, 0.5),
            Vec3::new(0.0, 1.0, -2.0),
        ];
        let b = Aabb::of_points(&pts);
        assert_eq!(b.min, Vec3::new(-1.0, -4.0, -2.0));
        assert_eq!(b.max, Vec3::new(3.0, 1.0, 2.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn cubical_hull_is_cube_and_contains() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 2.0, 0.5)];
        let b = Aabb::cubical_hull(&pts, 1e-6);
        let e = b.extent();
        assert!((e.x - e.y).abs() < 1e-12 && (e.y - e.z).abs() < 1e-12);
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn cubical_hull_degenerate_inputs() {
        // empty set and a single point both yield a valid unit-scale cube
        let b = Aabb::cubical_hull(&[], 0.0);
        assert!(b.is_valid() && b.edge() > 0.0);
        let b = Aabb::cubical_hull(&[Vec3::new(5.0, 5.0, 5.0)], 0.0);
        assert!(b.is_valid() && b.edge() > 0.0);
        assert!(b.contains(Vec3::new(5.0, 5.0, 5.0)));
    }

    #[test]
    fn octants_partition_cube() {
        let b = Aabb::cube(Vec3::new(1.0, -2.0, 0.0), 4.0);
        let mut vol = 0.0;
        for o in 0..8 {
            let c = b.octant(o);
            let e = c.extent();
            vol += e.x * e.y * e.z;
            // child center must map back to the same octant index
            assert_eq!(b.octant_of(c.center()), o);
        }
        let e = b.extent();
        assert!((vol - e.x * e.y * e.z).abs() < 1e-9);
    }

    #[test]
    fn octant_of_split_plane_goes_up() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        assert_eq!(b.octant_of(Vec3::ZERO), 7);
        assert_eq!(b.octant_of(Vec3::new(-0.5, -0.5, -0.5)), 0);
        assert_eq!(b.octant_of(Vec3::new(0.5, -0.5, 0.5)), 5);
    }

    #[test]
    fn distance_to_point() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        assert_eq!(b.distance_to(Vec3::ZERO), 0.0);
        assert_eq!(b.distance_to(Vec3::new(2.0, 0.0, 0.0)), 1.0);
        let d = b.distance_to(Vec3::new(2.0, 2.0, 2.0));
        assert!((d - (3.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn edge_and_circumradius() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        assert_eq!(b.edge(), 2.0);
        assert!((b.circumradius() - 3.0f64.sqrt()).abs() < 1e-12);
    }
}
