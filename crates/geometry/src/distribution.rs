//! Particle distributions used in the paper's evaluation.
//!
//! * **Uniform** — "a random distribution of points distributed equally
//!   across the domain" (the structured instances of Table 1),
//! * **Gaussian** — single Gaussian density,
//! * **Overlapped Gaussians** — "multiple Gaussians superimposed" (the
//!   unstructured instances),
//! * **Plummer** — the standard astrophysical cluster model, used by the
//!   galaxy example.
//!
//! Charges default to the protein-like regime the paper motivates: uniform
//! magnitude with random sign, so charge density is "largely uniform across
//! the domain" and cluster net absolute charge grows with cluster volume.
//! All generators are seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::particle::Particle;
use crate::vec3::Vec3;

/// How particle charges are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargeModel {
    /// Every particle carries charge `+magnitude`.
    UnitPositive {
        /// Common charge magnitude.
        magnitude: f64,
    },
    /// `+magnitude` or `-magnitude` with equal probability.
    RandomSign {
        /// Common charge magnitude.
        magnitude: f64,
    },
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl ChargeModel {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ChargeModel::UnitPositive { magnitude } => magnitude,
            ChargeModel::RandomSign { magnitude } => {
                if rng.gen::<bool>() {
                    magnitude
                } else {
                    -magnitude
                }
            }
            ChargeModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        }
    }
}

/// A standard normal sample via the Box–Muller transform (kept in-tree to
/// stay within the approved dependency set).
fn standard_normal(rng: &mut StdRng) -> f64 {
    // u1 in (0,1] so the log is finite
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` particles uniform in the cube `[-half_edge, half_edge]^3`.
#[must_use]
pub fn uniform_cube(n: usize, half_edge: f64, charges: ChargeModel, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p = Vec3::new(
                rng.gen_range(-half_edge..=half_edge),
                rng.gen_range(-half_edge..=half_edge),
                rng.gen_range(-half_edge..=half_edge),
            );
            Particle::new(p, charges.sample(&mut rng))
        })
        .collect()
}

/// `n` particles uniform in the ball of radius `radius` (rejection-free:
/// direction from normals, radius from the cube-root law).
#[must_use]
pub fn uniform_ball(n: usize, radius: f64, charges: ChargeModel, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let dir = Vec3::new(
                standard_normal(&mut rng),
                standard_normal(&mut rng),
                standard_normal(&mut rng),
            )
            .normalized();
            let r = radius * rng.gen::<f64>().cbrt();
            Particle::new(dir * r, charges.sample(&mut rng))
        })
        .collect()
}

/// `n` particles from an isotropic Gaussian with the given center and
/// standard deviation.
#[must_use]
pub fn gaussian(
    n: usize,
    center: Vec3,
    sigma: f64,
    charges: ChargeModel,
    seed: u64,
) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p = center
                + Vec3::new(
                    standard_normal(&mut rng),
                    standard_normal(&mut rng),
                    standard_normal(&mut rng),
                ) * sigma;
            Particle::new(p, charges.sample(&mut rng))
        })
        .collect()
}

/// `n` particles from `k` superimposed Gaussians whose centers are placed
/// uniformly at random in `[-spread, spread]^3` — the paper's "overlapped
/// Gaussian distributions".
#[must_use]
pub fn overlapped_gaussians(
    n: usize,
    k: usize,
    spread: f64,
    sigma: f64,
    charges: ChargeModel,
    seed: u64,
) -> Vec<Particle> {
    assert!(k > 0, "need at least one Gaussian component");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec3> = (0..k)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-spread..=spread),
                rng.gen_range(-spread..=spread),
                rng.gen_range(-spread..=spread),
            )
        })
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..k)];
            let p = c + Vec3::new(
                standard_normal(&mut rng),
                standard_normal(&mut rng),
                standard_normal(&mut rng),
            ) * sigma;
            Particle::new(p, charges.sample(&mut rng))
        })
        .collect()
}

/// `n` equal-mass particles from a Plummer sphere of scale radius `a` and
/// total mass `total_mass` (Aarseth–Hénon–Wielen sampling), truncated at
/// ten scale radii so the box hull stays bounded.
#[must_use]
pub fn plummer(n: usize, a: f64, total_mass: f64, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = total_mass / n as f64;
    (0..n)
        .map(|_| {
            // radius from the cumulative mass profile M(r) ∝ r³/(r²+a²)^(3/2)
            let r = loop {
                let x: f64 = rng.gen_range(1e-10..1.0);
                let r = a / (x.powf(-2.0 / 3.0) - 1.0).sqrt();
                if r <= 10.0 * a {
                    break r;
                }
            };
            // isotropic direction
            let z: f64 = rng.gen_range(-1.0..=1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let s = (1.0 - z * z).max(0.0).sqrt();
            let dir = Vec3::new(s * phi.cos(), s * phi.sin(), z);
            Particle::new(dir * r, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aabb::Aabb;
    use crate::particle::total_abs_charge;

    #[test]
    fn uniform_cube_stays_in_bounds_and_is_deterministic() {
        let a = uniform_cube(500, 2.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7);
        let b = uniform_cube(500, 2.0, ChargeModel::RandomSign { magnitude: 1.0 }, 7);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.position.abs().max_component() <= 2.0);
            assert_eq!(p.abs_charge(), 1.0);
        }
        // with random signs the net charge should be far below n
        let net: f64 = a.iter().map(|p| p.charge).sum();
        assert!(net.abs() < 500.0 * 0.5);
        assert_eq!(total_abs_charge(&a), 500.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_cube(100, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 1);
        let b = uniform_cube(100, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_ball_radius_law() {
        let ps = uniform_ball(4000, 3.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 11);
        let mut inside_half = 0usize;
        for p in &ps {
            let r = p.position.norm();
            assert!(r <= 3.0 + 1e-12);
            if r <= 1.5 {
                inside_half += 1;
            }
        }
        // uniform density: P(r <= R/2) = 1/8
        let frac = inside_half as f64 / ps.len() as f64;
        assert!((frac - 0.125).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn gaussian_moments() {
        let ps = gaussian(
            8000,
            Vec3::new(1.0, -2.0, 0.5),
            0.7,
            ChargeModel::UnitPositive { magnitude: 1.0 },
            3,
        );
        let mean: Vec3 = ps.iter().map(|p| p.position).sum::<Vec3>() / ps.len() as f64;
        assert!(mean.distance(Vec3::new(1.0, -2.0, 0.5)) < 0.05);
        let var_x: f64 = ps
            .iter()
            .map(|p| (p.position.x - mean.x).powi(2))
            .sum::<f64>()
            / ps.len() as f64;
        assert!((var_x.sqrt() - 0.7).abs() < 0.05);
    }

    #[test]
    fn overlapped_gaussians_are_clumpy() {
        // Compare the fraction of the cubical hull's octants that are
        // "crowded": an overlapped-Gaussian set concentrates mass far more
        // than a uniform set of the same size.
        let ps = overlapped_gaussians(
            4000,
            4,
            4.0,
            0.3,
            ChargeModel::RandomSign { magnitude: 1.0 },
            5,
        );
        let hull = Aabb::cubical_hull(&ps.iter().map(|p| p.position).collect::<Vec<_>>(), 1e-3);
        let mut counts = [0usize; 64];
        for p in &ps {
            let rel = (p.position - hull.min) / hull.edge();
            let ix = (rel.x * 4.0).min(3.0) as usize;
            let iy = (rel.y * 4.0).min(3.0) as usize;
            let iz = (rel.z * 4.0).min(3.0) as usize;
            counts[(iz * 4 + iy) * 4 + ix] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = ps.len() as f64 / 64.0;
        assert!(
            max > 4.0 * mean,
            "distribution not clumpy: max {max}, mean {mean}"
        );
    }

    #[test]
    fn plummer_mass_and_truncation() {
        let ps = plummer(2000, 1.0, 100.0, 9);
        let total: f64 = ps.iter().map(|p| p.charge).sum();
        assert!((total - 100.0).abs() < 1e-9);
        for p in &ps {
            assert!(p.position.norm() <= 10.0 + 1e-9);
        }
        // half-mass radius of a Plummer sphere is ~1.3 a; the truncation at
        // 10a removes ~1.5% of mass so allow slack
        let mut radii: Vec<f64> = ps.iter().map(|p| p.position.norm()).collect();
        radii.sort_by(f64::total_cmp);
        let half = radii[ps.len() / 2];
        assert!((half - 1.3).abs() < 0.25, "half-mass radius = {half}");
    }

    #[test]
    #[should_panic(expected = "need at least one Gaussian component")]
    fn overlapped_gaussians_zero_components_panics() {
        let _ = overlapped_gaussians(
            10,
            0,
            1.0,
            1.0,
            ChargeModel::UnitPositive { magnitude: 1.0 },
            0,
        );
    }
}
