//! 3-D Peano–Hilbert keys (Skilling's transpose algorithm).
//!
//! The paper sorts particles in a "proximity-preserving order (a
//! Peano–Hilbert ordering)" before aggregating them into fixed-width work
//! units for the threaded force evaluation. The Hilbert curve visits every
//! cell of a `2^b × 2^b × 2^b` grid exactly once and consecutive keys are
//! always face-adjacent cells, which gives the strongest locality of the
//! common space-filling curves.
//!
//! The implementation follows J. Skilling, *Programming the Hilbert curve*
//! (AIP Conf. Proc. 707, 2004): coordinates are converted to/from the
//! "transposed" Hilbert representation in place, then bit-interleaved into a
//! single 63-bit key.

use crate::aabb::Aabb;
use crate::morton;
use crate::vec3::Vec3;

/// Bits of resolution per axis (shared with the Morton grid).
pub const BITS: u32 = morton::BITS;

/// Converts grid coordinates to the transposed Hilbert representation.
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let m = 1u32 << (bits - 1);
    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Inverse of [`axes_to_transpose`].
fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let m = 1u32 << (bits - 1);
    // Gray decode by h ^= h >> 1
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q = 2u32;
    while q != m << 1 {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Interleaves a transposed representation into a single key.
///
/// Bit `bits-1-j` of each transposed coordinate contributes, in axis order
/// x, y, z, three consecutive key bits per depth `j`, most significant
/// depth first.
fn interleave_transpose(x: &[u32; 3], bits: u32) -> u64 {
    let mut key = 0u64;
    for j in (0..bits).rev() {
        for xi in x {
            key = key << 1 | u64::from(xi >> j & 1);
        }
    }
    key
}

/// Inverse of [`interleave_transpose`].
fn deinterleave_transpose(key: u64, bits: u32) -> [u32; 3] {
    let mut x = [0u32; 3];
    let total = bits * 3;
    for b in 0..total {
        let bit = key >> (total - 1 - b) & 1;
        let axis = (b % 3) as usize;
        let depth = b / 3;
        x[axis] |= (bit as u32) << (bits - 1 - depth);
    }
    x
}

/// Hilbert key of integer grid coordinates (each `< 2^BITS`).
#[must_use]
pub fn encode(x: u32, y: u32, z: u32) -> u64 {
    let mut t = [x, y, z];
    axes_to_transpose(&mut t, BITS);
    interleave_transpose(&t, BITS)
}

/// Grid coordinates of a Hilbert key.
#[must_use]
pub fn decode(key: u64) -> (u32, u32, u32) {
    let mut t = deinterleave_transpose(key, BITS);
    transpose_to_axes(&mut t, BITS);
    (t[0], t[1], t[2])
}

/// Hilbert key of a point inside `bounds` (outside points are clamped).
#[must_use]
pub fn key(p: Vec3, bounds: &Aabb) -> u64 {
    let (x, y, z) = morton::quantize(p, bounds);
    encode(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (0, 0, 1),
            (morton::MAX_COORD, morton::MAX_COORD, morton::MAX_COORD),
            (123_456, 789_012, 345_678),
            (1, 2, 3),
        ];
        for (x, y, z) in cases {
            assert_eq!(decode(encode(x, y, z)), (x, y, z), "({x},{y},{z})");
        }
    }

    #[test]
    fn curve_is_a_bijection_on_small_grid() {
        // restrict to the top 2 levels by stepping the grid coarsely: check
        // that 4^3 distinct corners give distinct keys
        let step = morton::MAX_COORD / 3;
        let mut keys = std::collections::HashSet::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                for k in 0..4u32 {
                    assert!(keys.insert(encode(i * step, j * step, k * step)));
                }
            }
        }
        assert_eq!(keys.len(), 64);
    }

    #[test]
    fn consecutive_keys_are_adjacent_cells() {
        // Walk a stretch of the curve on the full-resolution grid: every
        // consecutive pair of keys must decode to face-adjacent cells
        // (Manhattan distance exactly 1). This is the defining property of
        // the Hilbert curve.
        let start = encode(12_345, 54_321, 99_999);
        let mut prev = decode(start);
        for k in 1..200u64 {
            let cur = decode(start + k);
            let d = (i64::from(prev.0) - i64::from(cur.0)).abs()
                + (i64::from(prev.1) - i64::from(cur.1)).abs()
                + (i64::from(prev.2) - i64::from(cur.2)).abs();
            assert_eq!(
                d,
                1,
                "keys {} and {} not adjacent",
                start + k - 1,
                start + k
            );
            prev = cur;
        }
    }

    #[test]
    fn locality_beats_morton_on_average() {
        // Average Euclidean jump between consecutive curve positions should
        // be 1.0 for Hilbert (always adjacent); Morton makes long jumps.
        let n = 4096u64;
        let base = 1u64 << 40;
        let mut hilbert_total = 0.0;
        let mut morton_total = 0.0;
        let dist = |a: (u32, u32, u32), b: (u32, u32, u32)| -> f64 {
            let dx = f64::from(a.0) - f64::from(b.0);
            let dy = f64::from(a.1) - f64::from(b.1);
            let dz = f64::from(a.2) - f64::from(b.2);
            (dx * dx + dy * dy + dz * dz).sqrt()
        };
        for k in 0..n {
            hilbert_total += dist(decode(base + k), decode(base + k + 1));
            morton_total += dist(morton::decode(base + k), morton::decode(base + k + 1));
        }
        assert!(hilbert_total < morton_total);
        assert!((hilbert_total / n as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn key_respects_bounds_clamping() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let inside = key(Vec3::new(0.5, 0.5, 0.5), &b);
        let clamped = key(Vec3::new(-10.0, -10.0, -10.0), &b);
        assert_ne!(inside, clamped);
        assert_eq!(clamped, encode(0, 0, 0));
    }
}
