//! Geometric primitives and utilities shared by the multipole-treecode stack.
//!
//! This crate provides:
//!
//! * [`Vec3`] — a plain-old-data 3-D vector of `f64` with the usual algebra,
//! * [`Aabb`] — axis-aligned bounding boxes and cubical hulls,
//! * [`Spherical`] — conversion between Cartesian and spherical coordinates
//!   using the physics convention (`theta` = polar angle from +z,
//!   `phi` = azimuth from +x),
//! * [`morton`] and [`hilbert`] — 3-D space-filling-curve keys used for the
//!   proximity-preserving particle orderings of the paper (the parallel
//!   evaluation aggregates Peano–Hilbert-sorted particles into work units),
//! * [`sort`] — (parallel) reordering of particles by curve key,
//! * [`distribution`] — the particle distributions used in the paper's
//!   evaluation (uniform, Gaussian, overlapped Gaussians) plus a Plummer
//!   model for the astrophysics examples,
//! * [`Particle`] — the `position + charge` record every other crate
//!   operates on,
//! * [`ParticleSoa`] — a structure-of-arrays mirror of a particle slice
//!   for the batched (auto-vectorized) evaluation kernels.

#![forbid(unsafe_code)]

pub mod aabb;
pub mod distribution;
pub mod hilbert;
pub mod morton;
pub mod particle;
pub mod soa;
pub mod sort;
pub mod spherical;
pub mod vec3;

pub use aabb::Aabb;
pub use particle::Particle;
pub use soa::{ParticleSoa, ParticleSoaF32};
pub use spherical::Spherical;
pub use vec3::Vec3;
