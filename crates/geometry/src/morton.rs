//! 3-D Morton (Z-order) keys.
//!
//! Positions are quantised on a `2^BITS`-per-axis grid inside a bounding box
//! and their bits interleaved into a 63-bit key. Morton order is the cheaper
//! of the two proximity-preserving orders provided (see [`crate::hilbert`]
//! for the Peano–Hilbert order the paper uses); it is also the canonical
//! octree cell order: the top 3 bits of the key select the root octant, and
//! so on down the levels.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Bits of resolution per axis (3 × 21 = 63 key bits).
pub const BITS: u32 = 21;

/// Largest grid coordinate per axis.
pub const MAX_COORD: u32 = (1 << BITS) - 1;

/// Spreads the low 21 bits of `x` so they occupy every third bit.
#[inline]
#[must_use]
pub fn spread(x: u32) -> u64 {
    let mut v = u64::from(x) & 0x1f_ffff;
    v = (v | v << 32) & 0x001f_0000_0000_ffff;
    v = (v | v << 16) & 0x001f_0000_ff00_00ff;
    v = (v | v << 8) & 0x100f_00f0_0f00_f00f;
    v = (v | v << 4) & 0x10c3_0c30_c30c_30c3;
    v = (v | v << 2) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`spread`]: collects every third bit into the low 21 bits.
#[inline]
#[must_use]
pub fn compact(v: u64) -> u32 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v ^ (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v ^ (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v ^ (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v ^ (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v ^ (v >> 32)) & 0x1f_ffff;
    v as u32
}

/// Interleaves three 21-bit grid coordinates into a Morton key
/// (x contributes the least significant bit of each triple).
#[inline]
#[must_use]
pub fn encode(x: u32, y: u32, z: u32) -> u64 {
    spread(x) | spread(y) << 1 | spread(z) << 2
}

/// Splits a Morton key back into grid coordinates.
#[inline]
#[must_use]
pub fn decode(key: u64) -> (u32, u32, u32) {
    (compact(key), compact(key >> 1), compact(key >> 2))
}

/// Packs three 21-bit grid coordinates axis-major (x in bits 0..21, y in
/// 21..42, z in 42..63) — the cheap, non-interleaved companion of
/// [`encode`] for callers that need a hashable cell identity without
/// proximity order (e.g. the FMM level grids).
#[inline]
#[must_use]
pub fn pack_cell(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x <= MAX_COORD && y <= MAX_COORD && z <= MAX_COORD);
    u64::from(x) | u64::from(y) << BITS | u64::from(z) << (2 * BITS)
}

/// Inverse of [`pack_cell`].
#[inline]
#[must_use]
pub fn unpack_cell(key: u64) -> (u32, u32, u32) {
    let mask = u64::from(MAX_COORD);
    (
        (key & mask) as u32,
        (key >> BITS & mask) as u32,
        (key >> (2 * BITS) & mask) as u32,
    )
}

/// Quantises a point inside `bounds` onto the grid. Points outside are
/// clamped, so callers may pass a slightly loose box.
#[inline]
#[must_use]
pub fn quantize(p: Vec3, bounds: &Aabb) -> (u32, u32, u32) {
    let ext = bounds.extent();
    let scale = |v: f64, lo: f64, e: f64| -> u32 {
        if e <= 0.0 {
            return 0;
        }
        let t = ((v - lo) / e * f64::from(MAX_COORD)).round();
        t.clamp(0.0, f64::from(MAX_COORD)) as u32
    };
    (
        scale(p.x, bounds.min.x, ext.x),
        scale(p.y, bounds.min.y, ext.y),
        scale(p.z, bounds.min.z, ext.z),
    )
}

/// Morton key of a point inside `bounds`.
#[inline]
#[must_use]
pub fn key(p: Vec3, bounds: &Aabb) -> u64 {
    let (x, y, z) = quantize(p, bounds);
    encode(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_compact_roundtrip() {
        for x in [0u32, 1, 2, 0x15_5555, MAX_COORD, 123_456, 0x10_0001] {
            assert_eq!(compact(spread(x)), x);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            (0, 0, 0),
            (MAX_COORD, MAX_COORD, MAX_COORD),
            (1, 2, 3),
            (0x12_3456, 0x0f_edcb, 0x1f_ffff),
        ];
        for (x, y, z) in cases {
            assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let cases = [
            (0, 0, 0),
            (MAX_COORD, MAX_COORD, MAX_COORD),
            (1, 2, 3),
            (0x12_3456, 0x0f_edcb, 0x1f_ffff),
        ];
        for (x, y, z) in cases {
            assert_eq!(unpack_cell(pack_cell(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn first_octant_bits_match_octant_index() {
        // the MSB triple of the key is (z,y,x) of the top-level split
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let p = Vec3::new(0.5, -0.5, 0.5); // upper x, lower y, upper z -> octant 0b101
        let k = key(p, &b);
        let top = (k >> 60) & 0x7;
        assert_eq!(top, 0b101);
    }

    #[test]
    fn ordering_is_monotone_along_x() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let k1 = key(Vec3::new(0.1, 0.0, 0.0), &b);
        let k2 = key(Vec3::new(0.2, 0.0, 0.0), &b);
        let k3 = key(Vec3::new(0.9, 0.0, 0.0), &b);
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn clamps_outside_points() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let (x, y, z) = quantize(Vec3::new(-5.0, 2.0, 0.5), &b);
        assert_eq!(x, 0);
        assert_eq!(y, MAX_COORD);
        assert!(z > 0 && z < MAX_COORD);
    }

    #[test]
    fn degenerate_box_quantizes_to_zero() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 1.0));
        let (x, _, _) = quantize(Vec3::new(0.0, 0.5, 0.5), &b);
        assert_eq!(x, 0);
    }
}
