//! The particle record shared by every crate in the workspace.

use crate::vec3::Vec3;

/// A point charge (or point mass): position plus signed strength.
///
/// The paper's analysis is in terms of electrostatics (`q` = charge); for
/// gravitational problems `q` is the mass and the potential picks up the
/// conventional sign at the application layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position.
    pub position: Vec3,
    /// Signed charge / mass.
    pub charge: f64,
}

impl Particle {
    /// Creates a particle.
    #[inline]
    #[must_use]
    pub const fn new(position: Vec3, charge: f64) -> Self {
        Particle { position, charge }
    }

    /// `|q|` — the quantity the paper's error bounds aggregate per cluster.
    #[inline]
    #[must_use]
    pub fn abs_charge(&self) -> f64 {
        self.charge.abs()
    }
}

/// Total absolute charge `A = Σ|qᵢ|` of a set of particles (Theorem 1).
pub fn total_abs_charge(particles: &[Particle]) -> f64 {
    particles.iter().map(Particle::abs_charge).sum()
}

/// Center of absolute charge `Σ|qᵢ| xᵢ / Σ|qᵢ|` — the expansion center used
/// for clusters (falls back to the centroid when all charges are zero).
#[must_use]
pub fn center_of_charge(particles: &[Particle]) -> Vec3 {
    let a = total_abs_charge(particles);
    if a > 0.0 {
        particles
            .iter()
            .map(|p| p.position * p.abs_charge())
            .sum::<Vec3>()
            / a
    } else if particles.is_empty() {
        Vec3::ZERO
    } else {
        particles.iter().map(|p| p.position).sum::<Vec3>() / particles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_charge_and_total() {
        let ps = [Particle::new(Vec3::ZERO, -2.0), Particle::new(Vec3::X, 3.0)];
        assert_eq!(ps[0].abs_charge(), 2.0);
        assert_eq!(total_abs_charge(&ps), 5.0);
    }

    #[test]
    fn center_of_charge_weighted() {
        let ps = [
            Particle::new(Vec3::new(0.0, 0.0, 0.0), 1.0),
            Particle::new(Vec3::new(4.0, 0.0, 0.0), -3.0),
        ];
        let c = center_of_charge(&ps);
        assert!((c.x - 3.0).abs() < 1e-14);
    }

    #[test]
    fn center_of_charge_zero_charges_falls_back_to_centroid() {
        let ps = [
            Particle::new(Vec3::new(0.0, 0.0, 0.0), 0.0),
            Particle::new(Vec3::new(2.0, 2.0, 2.0), 0.0),
        ];
        assert_eq!(center_of_charge(&ps), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(center_of_charge(&[]), Vec3::ZERO);
    }
}
