//! Structure-of-arrays particle mirror for batched kernels.
//!
//! The evaluation hot loops in `mbt-multipole` stream over source
//! coordinates one component at a time (`x[j] - t.x`, …). With the
//! array-of-structs [`Particle`] layout each lane of such a loop loads a
//! 32-byte record to use 8 bytes of it, which defeats vectorization; the
//! [`ParticleSoa`] mirror stores each component contiguously so the
//! compiler can issue packed loads. The mirror is built once per tree
//! (in sorted particle order) and is redundant with the `Particle` slice
//! by construction — the octree owns both and keeps the charges in sync.

use crate::particle::Particle;

/// Particle coordinates and charges split into one contiguous array per
/// component, in the same order as the slice it mirrors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleSoa {
    /// `x` coordinates.
    pub x: Vec<f64>,
    /// `y` coordinates.
    pub y: Vec<f64>,
    /// `z` coordinates.
    pub z: Vec<f64>,
    /// Signed charges.
    pub q: Vec<f64>,
}

impl ParticleSoa {
    /// Builds the mirror of `particles`, preserving order.
    #[must_use]
    pub fn from_particles(particles: &[Particle]) -> ParticleSoa {
        ParticleSoa {
            x: particles.iter().map(|p| p.position.x).collect(),
            y: particles.iter().map(|p| p.position.y).collect(),
            z: particles.iter().map(|p| p.position.z).collect(),
            q: particles.iter().map(|p| p.charge).collect(),
        }
    }

    /// Number of mirrored particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the mirror is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Re-copies the charges from `particles` (positions are assumed
    /// unchanged — the use case is charge-only dataset updates that keep
    /// the tree geometry).
    pub fn sync_charges(&mut self, particles: &[Particle]) {
        debug_assert_eq!(self.len(), particles.len());
        for (q, p) in self.q.iter_mut().zip(particles) {
            *q = p.charge;
        }
    }

    /// Resident heap bytes of the four component arrays.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (self.x.capacity() + self.y.capacity() + self.z.capacity() + self.q.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Single-precision mirror of [`ParticleSoa`] for the error-budgeted f32
/// near-field tier: every component rounded to nearest f32, in the same
/// order. Built alongside the f64 mirror at tree construction (the
/// input-quantization error it introduces is part of the roundoff budget
/// the f32 tier is admitted under) and kept charge-synced with it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleSoaF32 {
    /// `x` coordinates.
    pub x: Vec<f32>,
    /// `y` coordinates.
    pub y: Vec<f32>,
    /// `z` coordinates.
    pub z: Vec<f32>,
    /// Signed charges.
    pub q: Vec<f32>,
}

impl ParticleSoaF32 {
    /// Builds the rounded mirror of `particles`, preserving order.
    #[must_use]
    pub fn from_particles(particles: &[Particle]) -> ParticleSoaF32 {
        ParticleSoaF32 {
            x: particles.iter().map(|p| p.position.x as f32).collect(),
            y: particles.iter().map(|p| p.position.y as f32).collect(),
            z: particles.iter().map(|p| p.position.z as f32).collect(),
            q: particles.iter().map(|p| p.charge as f32).collect(),
        }
    }

    /// Number of mirrored particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the mirror is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Re-rounds the charges from `particles` (positions are assumed
    /// unchanged, matching [`ParticleSoa::sync_charges`]).
    pub fn sync_charges(&mut self, particles: &[Particle]) {
        debug_assert_eq!(self.len(), particles.len());
        for (q, p) in self.q.iter_mut().zip(particles) {
            *q = p.charge as f32;
        }
    }

    /// Resident heap bytes of the four component arrays.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (self.x.capacity() + self.y.capacity() + self.z.capacity() + self.q.capacity())
            * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn particles() -> Vec<Particle> {
        (0..17)
            .map(|i| {
                let t = f64::from(i);
                Particle::new(
                    Vec3::new(t.sin(), (0.5 * t).cos(), 0.1 * t),
                    1.0 - 2.0 * f64::from(i % 2),
                )
            })
            .collect()
    }

    #[test]
    fn mirror_matches_source_order() {
        let ps = particles();
        let soa = ParticleSoa::from_particles(&ps);
        assert_eq!(soa.len(), ps.len());
        assert!(!soa.is_empty());
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(soa.x[i].to_bits(), p.position.x.to_bits());
            assert_eq!(soa.y[i].to_bits(), p.position.y.to_bits());
            assert_eq!(soa.z[i].to_bits(), p.position.z.to_bits());
            assert_eq!(soa.q[i].to_bits(), p.charge.to_bits());
        }
    }

    #[test]
    fn sync_charges_updates_only_q() {
        let mut ps = particles();
        let mut soa = ParticleSoa::from_particles(&ps);
        let xs = soa.x.clone();
        for (i, p) in ps.iter_mut().enumerate() {
            p.charge = 0.25 * i as f64;
        }
        soa.sync_charges(&ps);
        assert_eq!(soa.x, xs);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(soa.q[i].to_bits(), p.charge.to_bits());
        }
    }

    #[test]
    fn heap_bytes_counts_all_components() {
        let soa = ParticleSoa::from_particles(&particles());
        assert!(soa.heap_bytes() >= 4 * soa.len() * std::mem::size_of::<f64>());
        assert_eq!(ParticleSoa::default().len(), 0);
    }

    #[test]
    fn f32_mirror_rounds_to_nearest() {
        let mut ps = particles();
        let mut soa = ParticleSoaF32::from_particles(&ps);
        assert_eq!(soa.len(), ps.len());
        assert!(!soa.is_empty());
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(soa.x[i].to_bits(), (p.position.x as f32).to_bits());
            assert_eq!(soa.y[i].to_bits(), (p.position.y as f32).to_bits());
            assert_eq!(soa.z[i].to_bits(), (p.position.z as f32).to_bits());
            assert_eq!(soa.q[i].to_bits(), (p.charge as f32).to_bits());
        }
        let xs = soa.x.clone();
        for (i, p) in ps.iter_mut().enumerate() {
            p.charge = 0.125 * i as f64;
        }
        soa.sync_charges(&ps);
        assert_eq!(soa.x, xs);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(soa.q[i].to_bits(), (p.charge as f32).to_bits());
        }
        assert!(soa.heap_bytes() >= 4 * soa.len() * std::mem::size_of::<f32>());
        assert_eq!(ParticleSoaF32::default().len(), 0);
    }
}
