//! Proximity-preserving particle ordering.
//!
//! The paper sorts particles by a Peano–Hilbert key so that (a) the octree
//! can be built over contiguous index ranges, and (b) the parallel force
//! evaluation can aggregate `w` consecutive particles into one work unit
//! with good data locality. The sort is parallel (rayon) and returns the
//! permutation so callers can scatter results back to the original order.

use rayon::prelude::*;

use crate::aabb::Aabb;
use crate::particle::Particle;
use crate::vec3::Vec3;
use crate::{hilbert, morton};

/// Which space-filling curve to sort by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveOrder {
    /// Peano–Hilbert order (the paper's choice — strongest locality).
    #[default]
    Hilbert,
    /// Morton / Z-order (cheaper keys, weaker locality).
    Morton,
}

/// Result of ordering a particle set.
#[derive(Debug, Clone)]
pub struct Ordered {
    /// Particles, permuted into curve order.
    pub particles: Vec<Particle>,
    /// `perm[i]` = original index of the particle now at position `i`.
    pub perm: Vec<usize>,
    /// The cubical hull used for key quantisation (also the octree root).
    pub bounds: Aabb,
}

impl Ordered {
    /// Scatters values computed in sorted order back to original order:
    /// `out[perm[i]] = values[i]`.
    pub fn unsort<T: Copy + Default + Send + Sync>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.perm.len());
        let mut out = vec![T::default(); values.len()];
        for (i, &orig) in self.perm.iter().enumerate() {
            out[orig] = values[i];
        }
        out
    }
}

/// Sorts particles by space-filling-curve key inside their cubical hull.
#[must_use]
pub fn order_particles(particles: &[Particle], curve: CurveOrder) -> Ordered {
    let positions: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
    let bounds = Aabb::cubical_hull(&positions, 1e-9);
    order_particles_in(particles, curve, bounds)
}

/// Like [`order_particles`] but with a caller-provided bounding cube (useful
/// when several sets must share one decomposition).
#[must_use]
pub fn order_particles_in(particles: &[Particle], curve: CurveOrder, bounds: Aabb) -> Ordered {
    let mut keyed: Vec<(u64, usize)> = particles
        .par_iter()
        .enumerate()
        .map(|(i, p)| {
            let k = match curve {
                CurveOrder::Hilbert => hilbert::key(p.position, &bounds),
                CurveOrder::Morton => morton::key(p.position, &bounds),
            };
            (k, i)
        })
        .collect();
    keyed.par_sort_unstable_by_key(|&(k, i)| (k, i));
    let perm: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
    let particles = perm.iter().map(|&i| particles[i]).collect();
    Ordered {
        particles,
        perm,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{uniform_cube, ChargeModel};

    #[test]
    fn permutation_is_valid_and_matches_particles() {
        let ps = uniform_cube(777, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
        let ord = order_particles(&ps, CurveOrder::Hilbert);
        assert_eq!(ord.particles.len(), ps.len());
        let mut seen = vec![false; ps.len()];
        for (i, &orig) in ord.perm.iter().enumerate() {
            assert!(!seen[orig], "index {orig} repeated");
            seen[orig] = true;
            assert_eq!(ord.particles[i], ps[orig]);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsort_restores_original_order() {
        let ps = uniform_cube(256, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 1);
        let ord = order_particles(&ps, CurveOrder::Morton);
        // values in sorted order = sorted x coordinates
        let xs_sorted: Vec<f64> = ord.particles.iter().map(|p| p.position.x).collect();
        let xs_back = ord.unsort(&xs_sorted);
        let xs_orig: Vec<f64> = ps.iter().map(|p| p.position.x).collect();
        assert_eq!(xs_back, xs_orig);
    }

    #[test]
    fn hilbert_order_improves_neighbor_distance() {
        let ps = uniform_cube(4096, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 3);
        let shuffled_dist: f64 = ps
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum();
        let ord = order_particles(&ps, CurveOrder::Hilbert);
        let sorted_dist: f64 = ord
            .particles
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum();
        assert!(
            sorted_dist < 0.25 * shuffled_dist,
            "sorted {sorted_dist} vs raw {shuffled_dist}"
        );
    }

    #[test]
    fn deterministic_under_duplicate_keys() {
        // duplicate positions get identical keys; the (key, index) tiebreak
        // must keep the ordering deterministic
        let p = Particle::new(Vec3::new(0.1, 0.2, 0.3), 1.0);
        let ps = vec![p; 10];
        let a = order_particles(&ps, CurveOrder::Hilbert);
        let b = order_particles(&ps, CurveOrder::Hilbert);
        assert_eq!(a.perm, b.perm);
        assert_eq!(a.perm, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let ord = order_particles(&[], CurveOrder::Hilbert);
        assert!(ord.particles.is_empty());
        assert!(ord.perm.is_empty());
        assert!(ord.bounds.is_valid());
    }
}
