//! Spherical coordinates in the physics convention.
//!
//! The multipole machinery expresses positions relative to an expansion
//! center as `(rho, theta, phi)` where `theta ∈ [0, π]` is the polar angle
//! measured from the +z axis and `phi ∈ (-π, π]` the azimuth from +x.

use crate::vec3::Vec3;

/// A point in spherical coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spherical {
    /// Radial distance (≥ 0).
    pub rho: f64,
    /// Polar angle from +z, in `[0, π]`.
    pub theta: f64,
    /// Azimuthal angle from +x, in `(-π, π]`.
    pub phi: f64,
}

impl Spherical {
    /// Converts a Cartesian offset to spherical coordinates.
    ///
    /// The origin maps to `rho = 0, theta = 0, phi = 0`; points on the z-axis
    /// get `phi = 0`. Both choices make the spherical-harmonic kernels well
    /// defined without caller-side special cases.
    #[must_use]
    pub fn from_cartesian(v: Vec3) -> Self {
        let rho = v.norm();
        // lint: allow(float_cmp, exact origin has no defined angles)
        if rho == 0.0 {
            return Spherical {
                rho: 0.0,
                theta: 0.0,
                phi: 0.0,
            };
        }
        let theta = (v.z / rho).clamp(-1.0, 1.0).acos();
        // lint: allow(float_cmp, exact z-axis: atan2(0, 0) convention pinned to 0)
        let phi = if v.x == 0.0 && v.y == 0.0 {
            0.0
        } else {
            v.y.atan2(v.x)
        };
        Spherical { rho, theta, phi }
    }

    /// Converts back to a Cartesian offset.
    #[must_use]
    pub fn to_cartesian(self) -> Vec3 {
        let (st, ct) = self.theta.sin_cos();
        let (sp, cp) = self.phi.sin_cos();
        Vec3::new(self.rho * st * cp, self.rho * st * sp, self.rho * ct)
    }

    /// `cos(theta)` without recomputing the angle.
    #[inline]
    #[must_use]
    pub fn cos_theta(&self) -> f64 {
        self.theta.cos()
    }
}

impl From<Vec3> for Spherical {
    fn from(v: Vec3) -> Self {
        Spherical::from_cartesian(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Vec3) {
        let s = Spherical::from_cartesian(v);
        let back = s.to_cartesian();
        assert!(
            v.distance(back) <= 1e-12 * (1.0 + v.norm()),
            "roundtrip failed: {v:?} -> {s:?} -> {back:?}"
        );
    }

    #[test]
    fn axes_map_to_canonical_angles() {
        let s = Spherical::from_cartesian(Vec3::Z);
        assert!((s.theta - 0.0).abs() < 1e-15 && s.rho == 1.0);
        let s = Spherical::from_cartesian(-Vec3::Z);
        assert!((s.theta - std::f64::consts::PI).abs() < 1e-15);
        let s = Spherical::from_cartesian(Vec3::X);
        assert!((s.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!(s.phi.abs() < 1e-15);
        let s = Spherical::from_cartesian(Vec3::Y);
        assert!((s.phi - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn origin_is_well_defined() {
        let s = Spherical::from_cartesian(Vec3::ZERO);
        assert_eq!(
            s,
            Spherical {
                rho: 0.0,
                theta: 0.0,
                phi: 0.0
            }
        );
        assert_eq!(s.to_cartesian(), Vec3::ZERO);
    }

    #[test]
    fn roundtrips() {
        roundtrip(Vec3::new(1.0, 2.0, 3.0));
        roundtrip(Vec3::new(-0.3, 0.001, -17.0));
        roundtrip(Vec3::new(1e-9, -1e-9, 1e-9));
        roundtrip(Vec3::new(0.0, 0.0, 5.0));
        roundtrip(Vec3::new(0.0, -2.0, 0.0));
    }

    #[test]
    fn ranges() {
        for v in [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-1.0, -1.0, -1.0),
            Vec3::new(0.5, -0.5, 0.0),
        ] {
            let s = Spherical::from_cartesian(v);
            assert!(s.rho >= 0.0);
            assert!((0.0..=std::f64::consts::PI).contains(&s.theta));
            assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&s.phi));
        }
    }
}
