//! A minimal, dependency-free 3-D vector of `f64`.
//!
//! The treecode hot loops stream over `[Vec3]` slices, so the type is
//! `#[repr(C)]`, `Copy`, and 24 bytes with no padding — three `Vec3`s fit in
//! a cache line pair and auto-vectorization is not obstructed.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline(always)]
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline(always)]
    #[must_use]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline(always)]
    #[must_use]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline(always)]
    #[must_use]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `other`.
    #[inline(always)]
    #[must_use]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline(always)]
    #[must_use]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns `Vec3::ZERO` for the zero vector rather than NaN, so callers
    /// never have to special-case degenerate geometry.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline(always)]
    #[must_use]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline(always)]
    #[must_use]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline(always)]
    #[must_use]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// The largest component.
    #[inline(always)]
    #[must_use]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// The smallest component.
    #[inline(always)]
    #[must_use]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// True when every component is finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self + t * (rhs - self)`.
    #[inline]
    #[must_use]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Components as an array.
    #[inline(always)]
    #[must_use]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // lint: allow(panic, Index contract — mirrors slice out-of-bounds behaviour)
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline(always)]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(a + Vec3::ZERO, a);
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        let a = Vec3::new(2.0, 3.0, 4.0);
        // cross product is perpendicular to both operands
        let c = a.cross(Vec3::new(-1.0, 5.0, 0.25));
        assert!(c.dot(a).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm_sq(), 169.0);
        assert_eq!(v.norm(), 13.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, -1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -1.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], -3.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn sum_over_iterator() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z, Vec3::ONE];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "Vec3 index out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
