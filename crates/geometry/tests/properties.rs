//! Property-based tests of the geometry substrate.

use mbt_geometry::{hilbert, morton, Aabb, Spherical, Vec3};
use proptest::prelude::*;

fn arb_vec3(r: f64) -> impl Strategy<Value = Vec3> {
    (-r..r, -r..r, -r..r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spherical ↔ Cartesian roundtrip within floating-point tolerance.
    #[test]
    fn spherical_roundtrip(v in arb_vec3(100.0)) {
        let s = Spherical::from_cartesian(v);
        let back = s.to_cartesian();
        prop_assert!(v.distance(back) <= 1e-10 * (1.0 + v.norm()));
        prop_assert!(s.rho >= 0.0);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&s.theta));
    }

    /// Morton keys roundtrip on the full grid.
    #[test]
    fn morton_roundtrip(
        x in 0u32..(1 << 21),
        y in 0u32..(1 << 21),
        z in 0u32..(1 << 21),
    ) {
        prop_assert_eq!(morton::decode(morton::encode(x, y, z)), (x, y, z));
    }

    /// Axis-major cell keys roundtrip on the full grid, and agree with the
    /// interleaved keys on the coordinates they carry.
    #[test]
    fn pack_cell_roundtrip(
        x in 0u32..(1 << 21),
        y in 0u32..(1 << 21),
        z in 0u32..(1 << 21),
    ) {
        let k = morton::pack_cell(x, y, z);
        prop_assert_eq!(morton::unpack_cell(k), (x, y, z));
        prop_assert_eq!(morton::decode(morton::encode(x, y, z)), morton::unpack_cell(k));
    }

    /// Hilbert keys roundtrip and are a bijection sample-wise.
    #[test]
    fn hilbert_roundtrip(
        x in 0u32..(1 << 21),
        y in 0u32..(1 << 21),
        z in 0u32..(1 << 21),
    ) {
        let k = hilbert::encode(x, y, z);
        prop_assert_eq!(hilbert::decode(k), (x, y, z));
    }

    /// Consecutive Hilbert keys decode to face-adjacent grid cells.
    #[test]
    fn hilbert_adjacency(seed in 0u64..(1u64 << 60)) {
        let a = hilbert::decode(seed);
        let b = hilbert::decode(seed + 1);
        let d = (i64::from(a.0) - i64::from(b.0)).abs()
            + (i64::from(a.1) - i64::from(b.1)).abs()
            + (i64::from(a.2) - i64::from(b.2)).abs();
        prop_assert_eq!(d, 1);
    }

    /// Hölder-1/3 locality: cells `d` apart along the curve lie within
    /// Chebyshev distance `O(d^(1/3))` of each other — the property that
    /// makes contiguous key ranges spatially compact shards. The constant
    /// 6 is loose for the 3D Hilbert curve (whose segments of length `d`
    /// fit in a box of edge ~`2·d^(1/3)`); the assertion pins the
    /// exponent, not the sharpest constant.
    #[test]
    fn hilbert_locality(seed in 0u64..(1u64 << 60), delta in 1u64..65536) {
        let a = hilbert::decode(seed);
        let b = hilbert::decode(seed + delta);
        let chebyshev = i64::from(a.0).abs_diff(i64::from(b.0))
            .max(i64::from(a.1).abs_diff(i64::from(b.1)))
            .max(i64::from(a.2).abs_diff(i64::from(b.2)));
        let bound = 6.0 * (delta as f64).cbrt();
        prop_assert!(
            (chebyshev as f64) <= bound,
            "cells {delta} apart on the curve are {chebyshev} apart in space (bound {bound})"
        );
    }

    /// Cubical hulls contain all their points and are cubes.
    #[test]
    fn cubical_hull_properties(pts in prop::collection::vec(arb_vec3(50.0), 1..64)) {
        let hull = Aabb::cubical_hull(&pts, 1e-9);
        let e = hull.extent();
        prop_assert!((e.x - e.y).abs() <= 1e-9 * e.x.max(1.0));
        prop_assert!((e.y - e.z).abs() <= 1e-9 * e.y.max(1.0));
        for p in pts {
            prop_assert!(hull.contains(p));
        }
    }

    /// The octant decomposition partitions: each point is in the octant
    /// its index claims.
    #[test]
    fn octants_partition(p in arb_vec3(1.0)) {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let o = b.octant_of(p);
        prop_assert!(b.octant(o).contains(p));
    }

    /// Distance to a box is zero iff inside.
    #[test]
    fn aabb_distance_sign(p in arb_vec3(3.0)) {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let d = b.distance_to(p);
        if b.contains(p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    /// Vector algebra: norms obey the triangle inequality and scaling.
    #[test]
    fn vector_norms(a in arb_vec3(10.0), b in arb_vec3(10.0), s in -5.0f64..5.0) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-12);
        prop_assert!(((a * s).norm() - s.abs() * a.norm()).abs() <= 1e-9 * (1.0 + a.norm()));
        // Cauchy–Schwarz
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-12);
        // cross product orthogonality
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() <= 1e-9 * (1.0 + c.norm() * a.norm()));
    }
}
