//! Batched SoA evaluation kernels: M2P lane groups and P2P source spans.
//!
//! The scalar kernels in [`expansion`](crate::expansion) evaluate one
//! (target, node) interaction at a time, interleaved with tree traversal.
//! This module provides the dense "execute" half of a two-phase evaluator:
//! a list compiler (in `mbt-treecode`) turns traversals into flat task
//! lists, and these kernels burn through the lists in groups of
//! [`M2P_LANES`] targets with explicit lane arrays, so the inner loops are
//! straight-line arithmetic the compiler can auto-vectorize.
//!
//! # Determinism contract
//!
//! Per lane, the group kernels run the **same Legendre recurrences and
//! multiply/accumulate association** as their scalar counterparts
//! ([`ExpansionRef::potential_at_degree_with`](crate::ExpansionRef::potential_at_degree_with)
//! etc.), but convert the observation offset to spherical form
//! *algebraically* — `cos θ = dz/r`, `sin θ = r_xy/r`, `e^{iφ} =
//! (dx + i·dy)/r_xy` — instead of round-tripping through
//! `acos`/`atan2`/`sin_cos`. The quantities are mathematically identical
//! and agree to ULP precision (the kernel tests pin ≤ 1e-13 relative per
//! lane), but the serial libm calls that dominate small-degree setup are
//! replaced by straight-line `sqrt`/`div` the vectorizer packs across
//! lanes. Together with the compiled mode's documented reassociation
//! (per-interaction partials are summed in degree-bucket order), the
//! compiled/scalar divergence stays well below 1e-12 relative for the
//! workloads the treecode serves.
//!
//! # Layout
//!
//! Lane-major triangular tables: entry `(n, m)` of lane `l` lives at
//! `tri_index(n, m) * M2P_LANES + l`, so each recurrence step is a short
//! contiguous loop over lanes — the shape LLVM turns into packed `mulpd`
//! /`addpd` (see DESIGN.md §10 for the inspection notes).

use mbt_geometry::Vec3;

use crate::complex::Complex;
use crate::tables::{tri_index, tri_len, Tables};

/// Targets per M2P group. Four `f64` lanes fill one AVX register (or two
/// SSE2 registers); the lane loops below are written so the width is a
/// compile-time constant the vectorizer can unroll exactly.
pub const M2P_LANES: usize = 4;

/// Accumulator lanes for P2P span kernels. Independent per-lane partial
/// sums are what permit packed adds: LLVM will not reassociate a single
/// serial `f64` reduction on its own.
pub const P2P_LANES: usize = 4;

/// One group of up to [`M2P_LANES`] same-degree M2P tasks: per lane an
/// expansion (center + triangular `m ≥ 0` coefficient span) and an
/// observation point. Callers pad short groups by repeating a valid lane
/// and ignore the padded outputs — lanes are arithmetically independent.
#[derive(Debug, Clone, Copy)]
pub struct M2pGroup<'a> {
    /// Expansion centers, one per lane.
    pub centers: [Vec3; M2P_LANES],
    /// Observation points, one per lane.
    pub points: [Vec3; M2P_LANES],
    /// Coefficient spans; each must hold at least `tri_len(degree)`
    /// entries for the degree the workspace is prepared to.
    pub coeffs: [&'a [Complex]; M2P_LANES],
}

/// Reusable lane-major scratch for the batched M2P kernels: the shared
/// normalization table for the current degree bucket plus per-lane
/// Legendre and accumulator arrays. One `BatchWorkspace` lives per
/// evaluation chunk; [`BatchWorkspace::prepare_degree`] is called once per
/// degree bucket, which is what amortizes table setup across every task
/// in the bucket.
#[derive(Debug)]
pub struct BatchWorkspace {
    degree: usize,
    /// `norm(n, m)` for the prepared degree, indexed by `tri_index` —
    /// shared across lanes (it depends only on `(n, m)`).
    norm: Vec<f64>,
    /// Lane-major `P_n^m(cos θ)`.
    leg_p: Vec<f64>,
    /// Lane-major `P_n^m / sin θ` (`m ≥ 1`; `m = 0` entries unused).
    leg_q: Vec<f64>,
    /// Lane-major `dP_n^m/dθ`.
    leg_d: Vec<f64>,
    /// Lane-major per-degree partial sums (potential).
    acc_pot: Vec<f64>,
    /// Lane-major per-degree partial sums (θ-derivative).
    acc_dth: Vec<f64>,
    /// Lane-major per-degree partial sums (φ-derivative).
    acc_dph: Vec<f64>,
}

impl Default for BatchWorkspace {
    fn default() -> Self {
        BatchWorkspace::new()
    }
}

impl BatchWorkspace {
    /// An empty workspace; call [`BatchWorkspace::prepare_degree`] before
    /// running a group kernel.
    #[must_use]
    pub fn new() -> BatchWorkspace {
        BatchWorkspace {
            degree: 0,
            norm: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_p: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_q: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_d: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_pot: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_dth: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_dph: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
        }
    }

    /// Sizes the lane buffers for `degree` and fills the normalization
    /// table — once per degree bucket, not per task. Buffers grow
    /// monotonically, so a workspace cycled through ascending buckets
    /// allocates only on the first visit to each high-water mark.
    pub fn prepare_degree(&mut self, degree: usize) {
        let len = tri_len(degree);
        if self.leg_p.len() < len * M2P_LANES {
            self.leg_p.resize(len * M2P_LANES, 0.0);
            self.leg_q.resize(len * M2P_LANES, 0.0);
            self.leg_d.resize(len * M2P_LANES, 0.0);
        }
        if self.norm.len() < len {
            self.norm.resize(len, 0.0);
        }
        if self.acc_pot.len() < (degree + 1) * M2P_LANES {
            self.acc_pot.resize((degree + 1) * M2P_LANES, 0.0);
            self.acc_dth.resize((degree + 1) * M2P_LANES, 0.0);
            self.acc_dph.resize((degree + 1) * M2P_LANES, 0.0);
        }
        let t = Tables::get();
        for n in 0..=degree {
            for m in 0..=n {
                self.norm[tri_index(n, m)] = t.norm(n, m as i64);
            }
        }
        self.degree = degree;
    }

    /// The degree the workspace is currently prepared for.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }
}

/// Lane-major `P_n^m` via the same recurrences as
/// [`Legendre::recompute`](crate::Legendre) — identical operation order
/// per lane, so each lane's values match the scalar table bit for bit.
fn legendre_p_lanes(degree: usize, x: &[f64; M2P_LANES], s: &[f64; M2P_LANES], p: &mut [f64]) {
    for l in 0..M2P_LANES {
        p[tri_index(0, 0) * M2P_LANES + l] = 1.0;
    }
    let mut pmm = [1.0f64; M2P_LANES];
    for m in 1..=degree {
        let df = (2 * m - 1) as f64;
        let row = tri_index(m, m) * M2P_LANES;
        for l in 0..M2P_LANES {
            pmm[l] *= df * s[l];
        }
        p[row..row + M2P_LANES].copy_from_slice(&pmm);
    }
    for m in 0..degree {
        let c = (2 * m + 1) as f64;
        let dst = tri_index(m + 1, m) * M2P_LANES;
        let src = tri_index(m, m) * M2P_LANES;
        for l in 0..M2P_LANES {
            let f = x[l] * c;
            p[dst + l] = f * p[src + l];
        }
    }
    for n in 2..=degree {
        let a_c = (2 * n - 1) as f64;
        for m in 0..=(n - 2) {
            let b = (n + m - 1) as f64;
            let c = (n - m) as f64;
            let i0 = tri_index(n, m) * M2P_LANES;
            let i1 = tri_index(n - 1, m) * M2P_LANES;
            let i2 = tri_index(n - 2, m) * M2P_LANES;
            for l in 0..M2P_LANES {
                let a = x[l] * a_c;
                p[i0 + l] = (a * p[i1 + l] - b * p[i2 + l]) / c;
            }
        }
    }
}

/// Lane-major evaluation of all three Legendre families (`P`, `P/sin θ`,
/// `dP/dθ`), mirroring the scalar recurrences operation for operation.
fn legendre_pqd_lanes(
    degree: usize,
    x: &[f64; M2P_LANES],
    s: &[f64; M2P_LANES],
    p: &mut [f64],
    q: &mut [f64],
    d: &mut [f64],
) {
    legendre_p_lanes(degree, x, s, p);
    // diagonal seeds for S_m^m = (2m-1)!! sinθ^{m-1}
    let mut smm = [1.0f64; M2P_LANES];
    for m in 1..=degree {
        let df = (2 * m - 1) as f64;
        let row = tri_index(m, m) * M2P_LANES;
        for l in 0..M2P_LANES {
            smm[l] = if m == 1 { df } else { smm[l] * df * s[l] };
            q[row + l] = smm[l];
        }
    }
    for m in 1..degree {
        let c = (2 * m + 1) as f64;
        let dst = tri_index(m + 1, m) * M2P_LANES;
        let src = tri_index(m, m) * M2P_LANES;
        for l in 0..M2P_LANES {
            let f = x[l] * c;
            q[dst + l] = f * q[src + l];
        }
    }
    for n in 2..=degree {
        let a_c = (2 * n - 1) as f64;
        for m in 1..=(n - 2) {
            let b = (n + m - 1) as f64;
            let c = (n - m) as f64;
            let i0 = tri_index(n, m) * M2P_LANES;
            let i1 = tri_index(n - 1, m) * M2P_LANES;
            let i2 = tri_index(n - 2, m) * M2P_LANES;
            for l in 0..M2P_LANES {
                let a = x[l] * a_c;
                q[i0 + l] = (a * q[i1 + l] - b * q[i2 + l]) / c;
            }
        }
    }
    // θ-derivatives
    for n in 0..=degree {
        let row0 = tri_index(n, 0) * M2P_LANES;
        if n >= 1 {
            let p1 = tri_index(n, 1) * M2P_LANES;
            for l in 0..M2P_LANES {
                d[row0 + l] = -p[p1 + l];
            }
        } else {
            for l in 0..M2P_LANES {
                d[row0 + l] = 0.0;
            }
        }
        for m in 1..=n {
            let i0 = tri_index(n, m) * M2P_LANES;
            let prev = if n >= 1 && m < n {
                Some(tri_index(n - 1, m) * M2P_LANES)
            } else {
                None
            };
            for l in 0..M2P_LANES {
                let pv = prev.map_or(0.0, |i| q[i + l]);
                d[i0 + l] = n as f64 * x[l] * q[i0 + l] - (n + m) as f64 * pv;
            }
        }
    }
}

/// Evaluates one group of same-degree M2P tasks (the degree the workspace
/// was last [`prepare_degree`](BatchWorkspace::prepare_degree)'d for).
/// Lane `l` of the result matches
/// [`ExpansionRef::potential_at_degree_with`](crate::ExpansionRef::potential_at_degree_with)
/// for that lane's (expansion, point, degree) to ULP precision (see the
/// module-level determinism contract).
#[must_use]
pub fn m2p_potential_group(g: &M2pGroup<'_>, ws: &mut BatchWorkspace) -> [f64; M2P_LANES] {
    let degree = ws.degree;
    let mut cos_t = [0.0f64; M2P_LANES];
    let mut sin_t = [0.0f64; M2P_LANES];
    let mut inv_r = [0.0f64; M2P_LANES];
    let mut e1_re = [0.0f64; M2P_LANES];
    let mut e1_im = [0.0f64; M2P_LANES];
    for l in 0..M2P_LANES {
        // Algebraic spherical setup — no acos/atan2/sin_cos; lowers to
        // packed sqrt/div across lanes. `r_xy = 0` (z-axis) pins
        // `e^{iφ} = 1`, matching `Spherical::from_cartesian`'s `φ = 0`.
        let d = g.points[l] - g.centers[l];
        let rxy2 = d.x * d.x + d.y * d.y;
        let r = (rxy2 + d.z * d.z).sqrt();
        debug_assert!(r > 0.0, "evaluation at the expansion center");
        let rxy = rxy2.sqrt();
        inv_r[l] = 1.0 / r;
        cos_t[l] = d.z / r;
        sin_t[l] = rxy / r;
        // lint: allow(float_cmp, exact z-axis: φ convention pinned to 0)
        let on_axis = rxy == 0.0;
        e1_re[l] = if on_axis { 1.0 } else { d.x / rxy };
        e1_im[l] = if on_axis { 0.0 } else { d.y / rxy };
    }
    legendre_p_lanes(degree, &cos_t, &sin_t, &mut ws.leg_p);

    let acc = &mut ws.acc_pot[..(degree + 1) * M2P_LANES];
    acc.fill(0.0);
    let norm = &ws.norm;
    let leg = &ws.leg_p;
    let mut eim_re = [1.0f64; M2P_LANES];
    let mut eim_im = [0.0f64; M2P_LANES];
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let ti = tri_index(n, m);
            let nr = norm[ti];
            let row = n * M2P_LANES;
            let lrow = ti * M2P_LANES;
            for l in 0..M2P_LANES {
                let c = g.coeffs[l][ti];
                let c_re = c.re * eim_re[l] - c.im * eim_im[l];
                acc[row + l] += w * c_re * nr * leg[lrow + l];
            }
        }
        for l in 0..M2P_LANES {
            let re = eim_re[l] * e1_re[l] - eim_im[l] * e1_im[l];
            let im = eim_re[l] * e1_im[l] + eim_im[l] * e1_re[l];
            eim_re[l] = re;
            eim_im[l] = im;
        }
    }
    let mut out = [0.0f64; M2P_LANES];
    for l in 0..M2P_LANES {
        let mut phi = 0.0;
        let mut rpow = inv_r[l];
        for n in 0..=degree {
            phi += acc[n * M2P_LANES + l] * rpow;
            rpow *= inv_r[l];
        }
        out[l] = phi;
    }
    out
}

/// Potential-and-gradient analogue of [`m2p_potential_group`]; lane `l`
/// matches
/// [`ExpansionRef::field_at_degree_with`](crate::ExpansionRef::field_at_degree_with)
/// to ULP precision (see the module-level determinism contract).
#[must_use]
pub fn m2p_field_group(
    g: &M2pGroup<'_>,
    ws: &mut BatchWorkspace,
) -> ([f64; M2P_LANES], [Vec3; M2P_LANES]) {
    let degree = ws.degree;
    let mut cos_t = [0.0f64; M2P_LANES];
    let mut sin_t = [0.0f64; M2P_LANES];
    let mut cos_p = [0.0f64; M2P_LANES];
    let mut sin_p = [0.0f64; M2P_LANES];
    let mut inv_r = [0.0f64; M2P_LANES];
    for l in 0..M2P_LANES {
        // Same algebraic setup as `m2p_potential_group`.
        let d = g.points[l] - g.centers[l];
        let rxy2 = d.x * d.x + d.y * d.y;
        let r = (rxy2 + d.z * d.z).sqrt();
        debug_assert!(r > 0.0, "evaluation at the expansion center");
        let rxy = rxy2.sqrt();
        inv_r[l] = 1.0 / r;
        cos_t[l] = d.z / r;
        sin_t[l] = rxy / r;
        // lint: allow(float_cmp, exact z-axis: φ convention pinned to 0)
        let on_axis = rxy == 0.0;
        cos_p[l] = if on_axis { 1.0 } else { d.x / rxy };
        sin_p[l] = if on_axis { 0.0 } else { d.y / rxy };
    }
    {
        let BatchWorkspace {
            leg_p,
            leg_q,
            leg_d,
            ..
        } = ws;
        legendre_pqd_lanes(degree, &cos_t, &sin_t, leg_p, leg_q, leg_d);
    }

    let rows = (degree + 1) * M2P_LANES;
    let BatchWorkspace {
        norm,
        leg_p,
        leg_q,
        leg_d,
        acc_pot,
        acc_dth,
        acc_dph,
        ..
    } = ws;
    let pot = &mut acc_pot[..rows];
    let dth = &mut acc_dth[..rows];
    let dph = &mut acc_dph[..rows];
    pot.fill(0.0);
    dth.fill(0.0);
    dph.fill(0.0);
    // e1 = cos φ + i sin φ, as in the scalar field kernel
    let mut eim_re = [1.0f64; M2P_LANES];
    let mut eim_im = [0.0f64; M2P_LANES];
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let ti = tri_index(n, m);
            let nr = norm[ti];
            let row = n * M2P_LANES;
            let lrow = ti * M2P_LANES;
            for l in 0..M2P_LANES {
                let c = g.coeffs[l][ti];
                let c_re = c.re * eim_re[l] - c.im * eim_im[l];
                pot[row + l] += w * c_re * nr * leg_p[lrow + l];
                dth[row + l] += w * c_re * nr * leg_d[lrow + l];
            }
            if m >= 1 {
                for l in 0..M2P_LANES {
                    let c = g.coeffs[l][ti];
                    let c_im = c.re * eim_im[l] + c.im * eim_re[l];
                    dph[row + l] += -2.0 * m as f64 * c_im * nr * leg_q[lrow + l];
                }
            }
        }
        for l in 0..M2P_LANES {
            let re = eim_re[l] * cos_p[l] - eim_im[l] * sin_p[l];
            let im = eim_re[l] * sin_p[l] + eim_im[l] * cos_p[l];
            eim_re[l] = re;
            eim_im[l] = im;
        }
    }
    let mut phi_out = [0.0f64; M2P_LANES];
    let mut grad_out = [Vec3::ZERO; M2P_LANES];
    for l in 0..M2P_LANES {
        let mut phi = 0.0;
        let mut g_r = 0.0;
        let mut g_t = 0.0;
        let mut g_p = 0.0;
        let mut rpow1 = inv_r[l];
        for n in 0..=degree {
            let rpow2 = rpow1 * inv_r[l];
            phi += pot[n * M2P_LANES + l] * rpow1;
            g_r += -((n + 1) as f64) * pot[n * M2P_LANES + l] * rpow2;
            g_t += dth[n * M2P_LANES + l] * rpow2;
            g_p += dph[n * M2P_LANES + l] * rpow2;
            rpow1 = rpow2;
        }
        let e_r = Vec3::new(sin_t[l] * cos_p[l], sin_t[l] * sin_p[l], cos_t[l]);
        let e_t = Vec3::new(cos_t[l] * cos_p[l], cos_t[l] * sin_p[l], -sin_t[l]);
        let e_p = Vec3::new(-sin_p[l], cos_p[l], 0.0);
        phi_out[l] = phi;
        grad_out[l] = e_r * g_r + e_t * g_t + e_p * g_p;
    }
    (phi_out, grad_out)
}

/// Near-field potential over one SoA source span, **without** a
/// zero-distance guard: the caller must have excluded the self particle
/// (the list compiler splits spans around it). Each pair performs the
/// same arithmetic as the scalar near-field loop; only the summation
/// order differs ([`P2P_LANES`] independent accumulators, then the
/// remainder in order).
#[must_use]
pub fn p2p_potential_span(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> f64 {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // Hoisted into scalar locals: `t` is passed indirectly (three f64s),
    // and field loads inside the loop defeat the SLP vectorizer at
    // opt-level 3 — with locals the body lowers to packed vdivpd/vsqrtpd.
    let (tx, ty, tz) = (t.x, t.y, t.z);
    let main = xs.len() - xs.len() % P2P_LANES;
    let mut acc = [0.0f64; P2P_LANES];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(P2P_LANES)
        .zip(ys[..main].chunks_exact(P2P_LANES))
        .zip(zs[..main].chunks_exact(P2P_LANES))
        .zip(qs[..main].chunks_exact(P2P_LANES))
    {
        for l in 0..P2P_LANES {
            let dx = xc[l] - tx;
            let dy = yc[l] - ty;
            let dz = zc[l] - tz;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            acc[l] += qc[l] / r2.sqrt();
        }
    }
    let mut phi = 0.0;
    for &a in &acc {
        phi += a;
    }
    for j in main..xs.len() {
        let dx = xs[j] - tx;
        let dy = ys[j] - ty;
        let dz = zs[j] - tz;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        phi += qs[j] / r2.sqrt();
    }
    phi
}

/// Near-field potential over one SoA span with the external-target guard:
/// pairs at exactly zero (softened) distance contribute nothing and are
/// not counted, matching the scalar external-point loop. Returns the
/// potential and the number of counted pairs.
#[must_use]
pub fn p2p_potential_span_guarded(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // See `p2p_potential_span` for why `t` is hoisted into locals.
    let (tx, ty, tz) = (t.x, t.y, t.z);
    let main = xs.len() - xs.len() % P2P_LANES;
    let mut acc = [0.0f64; P2P_LANES];
    let mut cnt = [0u64; P2P_LANES];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(P2P_LANES)
        .zip(ys[..main].chunks_exact(P2P_LANES))
        .zip(zs[..main].chunks_exact(P2P_LANES))
        .zip(qs[..main].chunks_exact(P2P_LANES))
    {
        for l in 0..P2P_LANES {
            let dx = xc[l] - tx;
            let dy = yc[l] - ty;
            let dz = zc[l] - tz;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            if r2 > 0.0 {
                acc[l] += qc[l] / r2.sqrt();
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0;
    let mut pairs = 0u64;
    for l in 0..P2P_LANES {
        phi += acc[l];
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = xs[j] - tx;
        let dy = ys[j] - ty;
        let dz = zs[j] - tz;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        if r2 > 0.0 {
            phi += qs[j] / r2.sqrt();
            pairs += 1;
        }
    }
    (phi, pairs)
}

/// Near-field potential and gradient over one SoA span with the
/// zero-distance guard (the scalar field loop guards both source and
/// external targets). The self particle, when in range, must already be
/// excluded by span splitting. Returns `(Φ, ∇Φ, counted pairs)`.
#[must_use]
pub fn p2p_field_span_guarded(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, Vec3, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // See `p2p_potential_span` for why `t` is hoisted into locals.
    let (tx, ty, tz) = (t.x, t.y, t.z);
    let main = xs.len() - xs.len() % P2P_LANES;
    let mut acc_phi = [0.0f64; P2P_LANES];
    let mut acc_gx = [0.0f64; P2P_LANES];
    let mut acc_gy = [0.0f64; P2P_LANES];
    let mut acc_gz = [0.0f64; P2P_LANES];
    let mut cnt = [0u64; P2P_LANES];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(P2P_LANES)
        .zip(ys[..main].chunks_exact(P2P_LANES))
        .zip(zs[..main].chunks_exact(P2P_LANES))
        .zip(qs[..main].chunks_exact(P2P_LANES))
    {
        for l in 0..P2P_LANES {
            // d = target − source, as in the scalar field loop (the
            // gradient uses the signed components)
            let dx = tx - xc[l];
            let dy = ty - yc[l];
            let dz = tz - zc[l];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            if r2 > 0.0 {
                let r = r2.sqrt();
                let f = -qc[l] / (r2 * r);
                acc_phi[l] += qc[l] / r;
                acc_gx[l] += dx * f;
                acc_gy[l] += dy * f;
                acc_gz[l] += dz * f;
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0;
    let mut grad = Vec3::ZERO;
    let mut pairs = 0u64;
    for l in 0..P2P_LANES {
        phi += acc_phi[l];
        grad += Vec3::new(acc_gx[l], acc_gy[l], acc_gz[l]);
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        if r2 > 0.0 {
            let r = r2.sqrt();
            let f = -qs[j] / (r2 * r);
            phi += qs[j] / r;
            grad += Vec3::new(dx * f, dy * f, dz * f);
            pairs += 1;
        }
    }
    (phi, grad, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::MultipoleExpansion;
    use crate::workspace::Workspace;
    use mbt_geometry::Particle;

    fn cluster(center: Vec3, radius: f64, n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let v = Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0);
                Particle::new(center + v * radius, next() * 2.0 - 1.0)
            })
            .collect()
    }

    /// Four distinct expansions, four distinct points, degrees 0..=12:
    /// every lane of the group kernels must reproduce the scalar kernels
    /// to ULP precision (the algebraic spherical setup differs from the
    /// scalar `acos`/`atan2` path only in final-digit rounding).
    #[test]
    fn group_kernels_match_scalar_per_lane() {
        let centers = [
            Vec3::new(0.2, -0.1, 0.3),
            Vec3::new(-0.4, 0.5, 0.0),
            Vec3::new(0.0, 0.0, -0.6),
            Vec3::new(0.7, 0.7, 0.7),
        ];
        let exps: Vec<MultipoleExpansion> = centers
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                MultipoleExpansion::from_particles(c, 12, &cluster(c, 0.3, 30, i as u64 + 1))
            })
            .collect();
        let points = [
            Vec3::new(2.0, 1.0, -1.0),
            Vec3::new(-1.5, 2.0, 0.5),
            Vec3::new(0.3, -0.2, 3.0),
            Vec3::new(-2.0, -2.0, 1.0),
        ];
        let refs: Vec<_> = exps.iter().map(MultipoleExpansion::as_ref).collect();
        let g = M2pGroup {
            centers,
            points,
            coeffs: [
                refs[0].coeffs,
                refs[1].coeffs,
                refs[2].coeffs,
                refs[3].coeffs,
            ],
        };
        let mut bws = BatchWorkspace::new();
        let mut ws = Workspace::new();
        for degree in [0usize, 1, 2, 5, 12] {
            bws.prepare_degree(degree);
            let pot = m2p_potential_group(&g, &mut bws);
            let (fphi, fgrad) = m2p_field_group(&g, &mut bws);
            for l in 0..M2P_LANES {
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-13 * b.abs().max(1e-300);
                let want = refs[l].potential_at_degree_with(points[l], degree, &mut ws);
                assert!(
                    close(pot[l], want),
                    "potential lane {l} degree {degree}: {} vs {want}",
                    pot[l]
                );
                let (wphi, wgrad) = refs[l].field_at_degree_with(points[l], degree, &mut ws);
                assert!(
                    close(fphi[l], wphi),
                    "field potential lane {l} degree {degree}: {} vs {wphi}",
                    fphi[l]
                );
                assert!(
                    fgrad[l].distance(wgrad) <= 1e-13 * wgrad.norm().max(1e-300),
                    "gradient lane {l} degree {degree}: {:?} vs {wgrad:?}",
                    fgrad[l]
                );
            }
        }
    }

    /// Padded groups (one task replicated into every lane) are the
    /// remainder-handling pattern; each lane must still be exact.
    #[test]
    fn replicated_lanes_are_independent() {
        let c = Vec3::new(0.1, 0.2, 0.3);
        let e = MultipoleExpansion::from_particles(c, 6, &cluster(c, 0.2, 20, 9));
        let r = e.as_ref();
        let pt = Vec3::new(1.5, -2.0, 0.7);
        let g = M2pGroup {
            centers: [c; M2P_LANES],
            points: [pt; M2P_LANES],
            coeffs: [r.coeffs; M2P_LANES],
        };
        let mut bws = BatchWorkspace::new();
        bws.prepare_degree(6);
        let pot = m2p_potential_group(&g, &mut bws);
        let mut ws = Workspace::new();
        let want = r.potential_at_degree_with(pt, 6, &mut ws);
        for l in 0..M2P_LANES {
            // replicated lanes are identical to each other bit for bit,
            // and ULP-close to the scalar kernel
            assert_eq!(pot[l], pot[0], "replicated lane {l} diverged");
            assert!(
                (pot[l] - want).abs() <= 1e-13 * want.abs().max(1e-300),
                "replicated lane {l}: {} vs {want}",
                pot[l]
            );
        }
    }

    fn soa_of(ps: &[Particle]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            ps.iter().map(|p| p.position.x).collect(),
            ps.iter().map(|p| p.position.y).collect(),
            ps.iter().map(|p| p.position.z).collect(),
            ps.iter().map(|p| p.charge).collect(),
        )
    }

    #[test]
    fn p2p_span_matches_scalar_loop() {
        // span lengths straddling the lane width, with and without guard
        for n in [0usize, 1, 3, 4, 5, 8, 13] {
            let ps = cluster(Vec3::ZERO, 1.0, n, 7 + n as u64);
            let (xs, ys, zs, qs) = soa_of(&ps);
            let t = Vec3::new(0.3, -0.8, 0.2);
            for eps2 in [0.0, 1e-4] {
                let want: f64 = ps
                    .iter()
                    .map(|p| p.charge / (p.position.distance_sq(t) + eps2).sqrt())
                    .sum();
                let got = p2p_potential_span(&xs, &ys, &zs, &qs, t, eps2);
                assert!(
                    (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                    "n={n} eps2={eps2}: {got} vs {want}"
                );
                let (gphi, gpairs) = p2p_potential_span_guarded(&xs, &ys, &zs, &qs, t, eps2);
                assert!((gphi - want).abs() <= 1e-14 * want.abs().max(1.0));
                assert_eq!(gpairs, n as u64);
            }
        }
    }

    #[test]
    fn p2p_guard_skips_coincident_source() {
        let ps = [
            Particle::new(Vec3::ZERO, 2.0),
            Particle::new(Vec3::X, 1.0),
            Particle::new(Vec3::new(0.0, 2.0, 0.0), -1.0),
        ];
        let (xs, ys, zs, qs) = soa_of(&ps);
        let (phi, pairs) = p2p_potential_span_guarded(&xs, &ys, &zs, &qs, Vec3::ZERO, 0.0);
        assert_eq!(pairs, 2);
        assert!((phi - (1.0 - 0.5)).abs() < 1e-15);
        let (fphi, fgrad, fpairs) = p2p_field_span_guarded(&xs, &ys, &zs, &qs, Vec3::ZERO, 0.0);
        assert_eq!(fpairs, 2);
        assert!((fphi - 0.5).abs() < 1e-15);
        assert!(fgrad.is_finite());
    }

    #[test]
    fn p2p_field_matches_scalar_loop() {
        for n in [1usize, 4, 6, 11] {
            let ps = cluster(Vec3::new(0.2, 0.1, -0.3), 0.8, n, 100 + n as u64);
            let (xs, ys, zs, qs) = soa_of(&ps);
            let t = Vec3::new(-0.4, 0.9, 0.1);
            let eps2 = 1e-6;
            let mut wphi = 0.0;
            let mut wgrad = Vec3::ZERO;
            for p in &ps {
                let d = t - p.position;
                let r2 = d.norm_sq() + eps2;
                let r = r2.sqrt();
                wphi += p.charge / r;
                wgrad += d * (-p.charge / (r2 * r));
            }
            let (phi, grad, pairs) = p2p_field_span_guarded(&xs, &ys, &zs, &qs, t, eps2);
            assert_eq!(pairs, n as u64);
            assert!((phi - wphi).abs() <= 1e-13 * wphi.abs().max(1.0));
            assert!(grad.distance(wgrad) <= 1e-13 * wgrad.norm().max(1.0));
        }
    }
}
